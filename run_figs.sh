#!/bin/bash
# Runs the full figure suite through the run_all_figs driver, which
# schedules figures and their load grids across cores (HC_JOBS, default
# all cores; HC_JOBS=1 forces exact serial execution). Extra arguments are
# forwarded, e.g.:
#
#   ./run_figs.sh --compare-serial --gate --bench-out BENCH_sim.json
#
# Unlike the old serial loop, a failing figure fails the whole run: the
# driver prints ALL-FIGURES-DONE only when every figure succeeded and
# exits with the first non-zero status otherwise — and so does this
# wrapper.
cd /root/repo || exit 1
./target/release/run_all_figs --results results "$@"
rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FIGURES-FAILED rc=$rc" >&2
fi
exit "$rc"
