#!/bin/bash
cd /root/repo
for fig in fig7_latency_throughput fig8_request_size fig9_cluster_size fig10_reply_lb fig11_readonly_lb fig12_failover fig13_ycsbe table1_msg_counts; do
  echo "=== running $fig ==="
  ./target/release/$fig > results/$fig.txt 2>&1
  echo "=== done $fig (rc=$?) ==="
done
echo ALL-FIGURES-DONE
