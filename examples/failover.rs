//! Leader failure under load (§7.4 in miniature).
//!
//! A 3-node HovercRaft++ cluster serves a steady load; halfway through we
//! fail-stop the leader. A follower wins the election, the in-network
//! aggregator is probed and re-adopted, bounded queues keep new work away
//! from the corpse, and the flow-control middlebox sheds the load the
//! shrunken cluster can no longer carry — service degrades gracefully
//! instead of collapsing.
//!
//! Run with: `cargo run --release --example failover`

use hovercraft::PolicyKind;
use simnet::{SimDur, SimTime};
use testbed::{ClientAgent, Cluster, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

fn main() {
    let mut o = ClusterOpts::new(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 150_000.0);
    o.workload = WorkloadKind::Synth(SynthSpec {
        dist: ServiceDist::Bimodal {
            mean_ns: 10_000,
            frac_long: 0.1,
            mult: 10,
        },
        req_size: 24,
        reply_size: 8,
        ro_fraction: 0.75,
    });
    o.bound = 32;
    o.flow_cap = Some(1_000);
    o.warmup = SimDur::millis(0);
    o.measure = SimDur::secs(6);

    let mut cluster = Cluster::build(o);
    cluster.settle();
    let old_leader = cluster.leader().expect("leader elected");
    println!("cluster up; node {old_leader} leads. Offering 150 kRPS...");

    let kill_at = SimTime::ZERO + SimDur::secs(3);
    cluster.sim.kill_at(old_leader, kill_at);
    cluster
        .sim
        .run_until(SimTime::ZERO + SimDur::secs(6) + SimDur::millis(200));

    let new_leader = cluster.leader().expect("new leader elected");
    println!("leader killed at t=3s; node {new_leader} took over.");
    assert_ne!(new_leader, old_leader);
    assert!(!cluster.sim.is_alive(old_leader));

    // Per-second timeline merged across clients.
    let clients = cluster.clients.clone();
    let mut per_sec: Vec<(usize, u64)> = Vec::new();
    for &c in &clients {
        let agent = cluster.sim.agent_mut::<ClientAgent>(c);
        for w in agent.series.summarize() {
            let i = (w.start_ns / 1_000_000_000) as usize;
            if per_sec.len() <= i {
                per_sec.resize(i + 1, (0, 0));
            }
            per_sec[i].0 += w.count;
            per_sec[i].1 = per_sec[i].1.max(w.p99_ns);
        }
    }
    println!();
    println!("{:>4} {:>10} {:>12}", "t(s)", "kRPS", "p99");
    for (i, (count, p99)) in per_sec.iter().enumerate() {
        println!(
            "{:>4} {:>10.1} {:>10.2}ms{}",
            i,
            *count as f64 / 1e3,
            *p99 as f64 / 1e6,
            if i == 3 { "   <- leader killed" } else { "" }
        );
    }
    let before = per_sec[2].0;
    let after = per_sec[5].0;
    println!();
    println!(
        "throughput through the failure: {:.0}k -> {:.0}k requests/s; the\n\
         cluster re-elected, recovered, and kept serving with 2 of 3 nodes.",
        before as f64 / 1e3,
        after as f64 / 1e3
    );
    assert!(after as f64 > 0.5 * before as f64, "no collapse");
}
