//! Quickstart: make an ordinary RPC service fault-tolerant with HovercRaft.
//!
//! Builds a 3-node HovercRaft++ cluster on the simulated fabric, drives a
//! short open-loop load against it, and prints what happened — including
//! which nodes answered clients, demonstrating reply load balancing.
//!
//! Run with: `cargo run --release --example quickstart`

use hovercraft::PolicyKind;
use simnet::SimDur;
use testbed::{run_experiment, ClusterOpts, Setup};

fn main() {
    // One line of configuration: 3 replicas, 50k requests/second of the
    // synthetic 1µs echo workload (defaults), JBSQ replier selection.
    let mut opts = ClusterOpts::new(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 50_000.0);
    opts.measure = SimDur::millis(300);

    println!("building a 3-node HovercRaft++ cluster + 2 client generators...");
    let result = run_experiment(opts);

    println!();
    println!(
        "offered load       : {:>9.0} requests/s",
        result.offered_rps
    );
    println!(
        "goodput            : {:>9.0} responses/s",
        result.achieved_rps
    );
    println!(
        "median latency     : {:>9.1} µs",
        result.p50_ns as f64 / 1e3
    );
    println!(
        "99th pct latency   : {:>9.1} µs",
        result.p99_ns as f64 / 1e3
    );
    println!(
        "leader             : node {}",
        result.leader.expect("elected")
    );
    println!();
    println!("per-server traffic over the measured window:");
    for (i, c) in result.server_counters.iter().enumerate() {
        println!(
            "  node {i}: rx {:>7} msgs ({:>9} B)   tx {:>7} msgs ({:>9} B)",
            c.rx_msgs, c.rx_bytes, c.tx_msgs, c.tx_bytes
        );
    }
    println!();
    println!(
        "every node transmits (replies are load-balanced), yet the service is\n\
         strongly consistent: all {} responses came from a totally-ordered,\n\
         majority-replicated log. Kill any single node and the cluster keeps\n\
         serving — see examples/failover.rs.",
        result.responses
    );
    assert!(result.p99_ns < 500_000, "within the paper's 500µs SLO");
}
