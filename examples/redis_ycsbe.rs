//! YCSB-E on the Redis-like store, replicated without code changes (§7.5).
//!
//! The same `KvService` object runs unreplicated or under HovercRaft++ —
//! the application-agnostic fault tolerance the paper promises. This
//! example runs both, prints the throughput/latency comparison, and then
//! pokes the store directly to show the module operations at work.
//!
//! Run with: `cargo run --release --example redis_ycsbe`

use bytes::Bytes;
use hovercraft::PolicyKind;
use minikv::{Command, Reply, Store};
use simnet::SimDur;
use testbed::{run_experiment, ClusterOpts, ServiceKind, Setup, WorkloadKind};
use workload::YcsbWorkload;

fn opts(setup: Setup, n: u32, rate: f64) -> ClusterOpts {
    let mut o = ClusterOpts::new(setup, n, rate);
    o.service = ServiceKind::Kv;
    o.workload = WorkloadKind::Ycsb {
        workload: YcsbWorkload::E,
        records: 5_000,
    };
    o.measure = SimDur::millis(300);
    o
}

fn main() {
    // First, the store itself: the YCSB-E "module" commands execute as
    // single atomic operations, like the paper's Redis module.
    let mut store = Store::new();
    for i in 0..5u32 {
        let key = format!("user{i:012}");
        store.execute(&Command::Insert(
            Bytes::from_static(b"usertable"),
            Bytes::from(key),
            Bytes::from(vec![b'x'; 100]),
        ));
    }
    let (scan, metrics) = store.execute(&Command::Scan(
        Bytes::from_static(b"usertable"),
        Bytes::from_static(b"user000000000001"),
        3,
    ));
    match scan {
        Reply::Array(items) => println!(
            "SCAN(3) returned {} key/record pairs, touching {} records",
            items.len() / 2,
            metrics.records
        ),
        other => panic!("unexpected reply {other:?}"),
    }
    println!();

    // Now the headline comparison: the same service, unreplicated vs a
    // 5-node HovercRaft++ cluster that load-balances the 95% of operations
    // that are read-only SCANs.
    println!("running YCSB-E (95% SCAN / 5% INSERT, 1kB records)...");
    let unrep = run_experiment(opts(Setup::Unrep, 1, 30_000.0));
    let hc = run_experiment(opts(Setup::HovercraftPp(PolicyKind::Jbsq), 5, 105_000.0));

    println!();
    println!("{:24} {:>12} {:>12} {:>12}", "", "goodput", "p50", "p99");
    for (label, r) in [("UnRep (1 node)", &unrep), ("HovercRaft++ (5 nodes)", &hc)] {
        println!(
            "{label:24} {:>9.0}/s {:>10.1}µs {:>10.1}µs",
            r.achieved_rps,
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3
        );
    }
    println!();
    println!(
        "replication made the store {:.1}x faster *and* able to survive two\n\
         node failures — the paper's core claim.",
        hc.achieved_rps / unrep.achieved_rps
    );
    assert!(hc.achieved_rps > 2.0 * unrep.achieved_rps);
}
