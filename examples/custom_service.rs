//! Bring your own application: replicating a custom deterministic service.
//!
//! The paper's SMR-aware RPC layer (§3.1) promises that *any* deterministic
//! request/response application becomes fault-tolerant with no code
//! changes. This example implements a small bank-ledger service against the
//! plain `hovercraft::Service` trait — it knows nothing about Raft,
//! multicast, or repliers — and runs it replicated, then audits that every
//! replica holds the identical ledger.
//!
//! Run with: `cargo run --release --example custom_service`

use bytes::{ByteArena, Bytes};
use hovercraft::{Executed, OpKind, PolicyKind, Service, WireMsg};
use r2p2::ReqIdAlloc;
use simnet::SimDur;
use testbed::{addrs, Cluster, ClusterOpts, ServerAgent, Setup};

/// A tiny bank: accounts start at 1000; transfer and inspect operations.
///
/// Wire format: `b"T <from> <to> <amount>"` transfers; `b"B <acct>"` reads
/// a balance. Deterministic by construction.
#[derive(Default)]
struct Bank {
    balances: std::collections::BTreeMap<String, i64>,
    transfers: u64,
}

impl Service for Bank {
    fn execute(&mut self, body: &[u8], read_only: bool, _arena: &mut ByteArena) -> Executed {
        let text = std::str::from_utf8(body).unwrap_or("");
        let parts: Vec<&str> = text.split_whitespace().collect();
        let reply = match parts.as_slice() {
            ["T", from, to, amount] if !read_only => {
                let amount: i64 = amount.parse().unwrap_or(0);
                *self.balances.entry((*from).to_owned()).or_insert(1_000) -= amount;
                *self.balances.entry((*to).to_owned()).or_insert(1_000) += amount;
                self.transfers += 1;
                Bytes::from_static(b"OK")
            }
            ["B", acct] => {
                let bal = self.balances.get(*acct).copied().unwrap_or(1_000);
                Bytes::from(bal.to_string())
            }
            _ => Bytes::from_static(b"ERR"),
        };
        Executed {
            reply,
            cost_ns: 800, // sub-µs operation
        }
    }
}

/// A bare-hands client that just collects responses; requests are injected
/// through the simulator so the example stays small.
struct HandClient {
    replies: Vec<Bytes>,
}
impl simnet::Agent<WireMsg> for HandClient {
    fn on_packet(&mut self, pkt: simnet::Packet<WireMsg>, _ctx: &mut simnet::Ctx<'_, WireMsg>) {
        if let WireMsg::Response { body, .. } = pkt.payload {
            self.replies.push(body);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn main() {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, 1_000.0);
    // No generated load: we drive requests by hand.
    o.clients = 0;
    o.measure = SimDur::millis(100);
    let mut cluster = Cluster::build(o);

    // Install the Bank on every replica — this is ALL the integration the
    // application needs.
    for &s in &cluster.servers.clone() {
        let agent = cluster.sim.agent_mut::<ServerAgent>(s);
        *agent.node_mut().service_mut() = Box::new(Bank::default());
    }
    cluster.settle();
    println!("3-node cluster up, Bank service installed on every replica.");

    let me = cluster.sim.add_node(Box::new(HandClient {
        replies: Vec::new(),
    }));
    let mut alloc = ReqIdAlloc::new(me, 5_000);
    let mut send = |cluster: &mut Cluster, body: &str, ro: bool| {
        let msg = WireMsg::Request {
            id: alloc.allocate(),
            kind: if ro {
                OpKind::ReadOnly
            } else {
                OpKind::ReadWrite
            },
            body: Bytes::copy_from_slice(body.as_bytes()),
        };
        let size = msg.wire_size();
        // Multicast to the fault-tolerance group via the flow-control VIP,
        // exactly like a production client. The reply will come back to
        // `me` because R2P2 addresses replies by the request's 3-tuple,
        // not by who the request was sent to.
        cluster.sim.inject(me, addrs::VIP, size, msg);
        cluster.sim.run_for(SimDur::millis(5));
    };

    send(&mut cluster, "T alice bob 100", false);
    send(&mut cluster, "T bob carol 250", false);
    send(&mut cluster, "T carol alice 50", false);
    send(&mut cluster, "B alice", true); // linearizable read
    cluster.sim.run_for(SimDur::millis(10));

    let replies = cluster.sim.agent::<HandClient>(me).replies.clone();
    println!(
        "client got {} replies; alice's balance: {}",
        replies.len(),
        std::str::from_utf8(replies.last().expect("read answered")).unwrap()
    );
    assert_eq!(replies.len(), 4);
    assert_eq!(&replies[3][..], b"950"); // 1000 - 100 + 50

    // Audit every replica's ledger through the service interface.
    let mut states = Vec::new();
    for &s in &cluster.servers.clone() {
        let agent = cluster.sim.agent_mut::<ServerAgent>(s);
        let mut view = Vec::new();
        for acct in ["alice", "bob", "carol"] {
            let q = format!("B {acct}");
            let r =
                agent
                    .node_mut()
                    .service_mut()
                    .execute(q.as_bytes(), true, &mut ByteArena::new());
            view.push(String::from_utf8_lossy(&r.reply).into_owned());
        }
        states.push(view);
    }
    println!("replica ledgers (alice, bob, carol): {states:?}");
    assert!(states.windows(2).all(|w| w[0] == w[1]), "replicas agree");
    assert_eq!(states[0], vec!["950", "850", "1200"]);
    println!("all replicas hold the identical ledger — zero lines of SMR code in Bank.");
}
