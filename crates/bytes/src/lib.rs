//! Vendored stand-in for the `bytes` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the tiny subset of `bytes` it actually uses: a
//! cheaply-clonable immutable byte container ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the big-endian `put_*` writers of [`BufMut`].
//! Semantics follow the real crate (network byte order, `freeze`, static
//! slices) so swapping the real dependency back in is a one-line change.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

mod arena;
pub use arena::ByteArena;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage (zero-copy `from_static`).
    Static(&'static [u8]),
    /// Shared heap allocation; clones bump a refcount.
    Shared(Arc<[u8]>),
    /// A sub-range of a shared allocation (zero-copy `slice`).
    Sliced(Arc<[u8]>, usize, usize),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(bytes))
    }

    /// Copies the given slice into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Wraps the first `len` bytes of a pooled chunk ([`ByteArena`])
    /// without copying; the `Bytes` keeps the chunk alive.
    pub(crate) fn pooled(chunk: Arc<[u8]>, len: usize) -> Bytes {
        Bytes(Repr::Sliced(chunk, 0, len))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a sub-range of the bytes as a new `Bytes`, without copying
    /// (shared allocations bump the refcount, like the real crate).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of bounds");
        match &self.0 {
            Repr::Static(s) => Bytes(Repr::Static(&s[start..end])),
            Repr::Shared(s) => Bytes(Repr::Sliced(s.clone(), start, end)),
            Repr::Sliced(s, lo, _) => Bytes(Repr::Sliced(s.clone(), lo + start, lo + end)),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
            Repr::Sliced(s, lo, hi) => &s[*lo..*hi],
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes(Repr::Shared(Arc::from(b)))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Big-endian buffer writers (the subset of the real `BufMut` this
/// workspace uses). Network byte order, like the real crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_roundtrip_and_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u32(0xAABBCCDD);
        b.put_i64(-2);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 2);
        assert_eq!(frozen[0], 1);
        assert_eq!(
            u32::from_be_bytes([frozen[1], frozen[2], frozen[3], frozen[4]]),
            0xAABBCCDD
        );
        assert_eq!(&frozen[13..], b"xy");
    }

    #[test]
    fn bytes_equality_and_hash_are_content_based() {
        use std::collections::HashSet;
        let a = Bytes::from_static(b"key");
        let b = Bytes::from(b"key".to_vec());
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn slice_is_zero_copy_and_composable() {
        let a = Bytes::from((0u8..=99).collect::<Vec<u8>>());
        let mid = a.slice(10..90);
        assert_eq!(mid.len(), 80);
        assert_eq!(mid[0], 10);
        assert_eq!(a.as_ptr(), mid.as_ptr().wrapping_sub(10), "no copy");
        let inner = mid.slice(5..=6);
        assert_eq!(&inner[..], &[15, 16]);
        assert_eq!(&a.slice(..3)[..], &[0, 1, 2]);
        assert!(a.slice(95..).slice(..).len() == 5);
        let s = Bytes::from_static(b"static");
        assert_eq!(&s.slice(1..3)[..], b"ta");
        assert_eq!(a.slice(40..40).len(), 0, "empty slice allowed");
    }
}
