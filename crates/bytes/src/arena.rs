//! A recycling byte-buffer arena for per-world allocation pooling.
//!
//! The simulator's hot path allocates the same shapes over and over:
//! request bodies, reply bodies, kvstore values, r2p2 frames. Each one is
//! a `Vec<u8>` build followed by an `Arc<[u8]>` move — two global-allocator
//! round trips per body — and the `--profile` allocator counters attribute
//! the bulk of the engine's heap traffic to exactly this churn. A
//! [`ByteArena`] replaces both with a pool of reusable `Arc<[u8]>` chunks:
//!
//! * **Size-classed registries.** Buffers come in power-of-two classes
//!   (16 B … 64 KiB). An allocation probes a few registry entries of its
//!   class for a buffer whose reference count has dropped back to one —
//!   meaning every [`Bytes`] previously handed out from it is gone — and
//!   recycles it in place via [`Arc::get_mut`]. No `unsafe`, no free
//!   lists: the `Arc` strong count *is* the liveness bit.
//! * **Deterministic contents.** A recycled buffer is zeroed over the
//!   requested length before the caller's fill runs, so pooled and fresh
//!   allocations are byte-identical — replay digests cannot observe
//!   whether pooling happened.
//! * **Graceful fallback.** Oversized or pool-exhausted requests fall back
//!   to a plain allocation; a bounded registry (per class) caps worst-case
//!   arena memory at a few MiB regardless of workload.
//!
//! # Lifetime rules
//!
//! A `Bytes` handed out by the arena may outlive anything — the world, the
//! arena itself, a snapshot epoch — because it owns a strong reference to
//! its chunk. Recycling is purely opportunistic: a chunk returns to
//! circulation the instant its last outstanding `Bytes` drops, and the
//! arena never observes (or cares) *when* that happens. Teardown is
//! equally simple: dropping the arena drops the registries, and each chunk
//! is freed when its last external holder goes away.

use std::sync::Arc;

use crate::Bytes;

/// Smallest size class, log2 (16 B).
const MIN_CLASS: u32 = 4;
/// Largest size class, log2 (64 KiB); larger requests bypass the pool.
const MAX_CLASS: u32 = 16;
/// Maximum pooled buffers per size class.
const CLASS_CAP: usize = 512;
/// Registry entries probed per allocation before giving up and
/// heap-allocating. Small and fixed: the pool must never turn an O(1)
/// allocation into an O(pool) scan under pressure.
const PROBE: usize = 8;

struct Pool {
    bufs: Vec<Arc<[u8]>>,
    /// Rotating probe start, so consecutive allocations don't all fight
    /// over the same (possibly still-referenced) entries.
    cursor: usize,
}

/// A per-world pool of recyclable byte buffers; see the module docs.
pub struct ByteArena {
    pools: Vec<Pool>,
    hits: u64,
    misses: u64,
}

impl Default for ByteArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ByteArena {
    /// An empty arena. Chunks are created on demand, so an unused arena
    /// costs a few hundred bytes.
    pub fn new() -> ByteArena {
        ByteArena {
            pools: (MIN_CLASS..=MAX_CLASS)
                .map(|_| Pool {
                    bufs: Vec::new(),
                    cursor: 0,
                })
                .collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Size class for a request of `len` bytes, or `None` if the request
    /// should bypass the pool.
    #[inline]
    fn class_of(len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let c = len.next_power_of_two().trailing_zeros().max(MIN_CLASS);
        (c <= MAX_CLASS).then(|| (c - MIN_CLASS) as usize)
    }

    /// Allocations served from a recycled chunk.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Allocations that fell back to the global allocator (fresh chunk or
    /// oversized request).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Copies `data` into a pooled buffer and returns it as [`Bytes`].
    pub fn alloc(&mut self, data: &[u8]) -> Bytes {
        self.alloc_inner(data.len(), false, |buf| buf.copy_from_slice(data))
    }

    /// Returns a zeroed pooled buffer of `len` bytes as [`Bytes`].
    pub fn alloc_zeroed(&mut self, len: usize) -> Bytes {
        self.alloc_inner(len, true, |_| {})
    }

    /// Returns a pooled buffer of `len` bytes as [`Bytes`], contents
    /// produced by `fill` over an initially zeroed slice. Use this to
    /// build framed bodies in place instead of staging them through a
    /// scratch `Vec`.
    pub fn alloc_with(&mut self, len: usize, fill: impl FnOnce(&mut [u8])) -> Bytes {
        self.alloc_inner(len, true, fill)
    }

    fn alloc_inner(&mut self, len: usize, zero: bool, fill: impl FnOnce(&mut [u8])) -> Bytes {
        if len == 0 {
            return Bytes::new();
        }
        let Some(class) = Self::class_of(len) else {
            // Oversized: plain allocation, exact length.
            let mut v = vec![0u8; len];
            fill(&mut v);
            self.misses += 1;
            return Bytes::from(v);
        };
        let pool = &mut self.pools[class];
        let n = pool.bufs.len();
        for i in 0..n.min(PROBE) {
            let idx = (pool.cursor + i) % n;
            if let Some(buf) = Arc::get_mut(&mut pool.bufs[idx]) {
                // Strong count is 1: no Bytes references this chunk any
                // more, so reusing it cannot be observed.
                if zero {
                    buf[..len].fill(0);
                }
                fill(&mut buf[..len]);
                pool.cursor = (idx + 1) % n;
                self.hits += 1;
                return Bytes::pooled(pool.bufs[idx].clone(), len);
            }
        }
        // Every probed chunk is still referenced (or the pool is young):
        // allocate a fresh class-sized chunk and register it for future
        // recycling if there is room.
        self.misses += 1;
        let size = 1usize << (class as u32 + MIN_CLASS);
        let mut v = vec![0u8; size];
        fill(&mut v[..len]);
        let chunk: Arc<[u8]> = Arc::from(v);
        let out = Bytes::pooled(chunk.clone(), len);
        if pool.bufs.len() < CLASS_CAP {
            pool.bufs.push(chunk);
            pool.cursor = 0;
        }
        out
    }
}

impl std::fmt::Debug for ByteArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteArena")
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_content_exactly() {
        let mut a = ByteArena::new();
        let b = a.alloc(b"hello arena");
        assert_eq!(&b[..], b"hello arena");
        let z = a.alloc_zeroed(40);
        assert_eq!(&z[..], &[0u8; 40]);
        let w = a.alloc_with(12, |buf| buf[..4].copy_from_slice(b"head"));
        assert_eq!(&w[..4], b"head");
        assert_eq!(&w[4..], &[0u8; 8]);
    }

    #[test]
    fn recycles_after_last_reference_drops() {
        let mut a = ByteArena::new();
        let b1 = a.alloc(b"first");
        assert_eq!(a.misses(), 1);
        // Still referenced: the next allocation cannot reuse the chunk.
        let b2 = a.alloc(b"second");
        assert_eq!(a.misses(), 2);
        drop(b1);
        drop(b2);
        let b3 = a.alloc(b"third");
        assert_eq!(a.hits(), 1, "chunk recycled once references dropped");
        assert_eq!(&b3[..], b"third");
    }

    #[test]
    fn recycled_buffers_are_scrubbed() {
        let mut a = ByteArena::new();
        drop(a.alloc(&[0xFFu8; 16]));
        let z = a.alloc_zeroed(16);
        assert_eq!(&z[..], &[0u8; 16], "stale contents must not leak");
        drop(z);
        let part = a.alloc_with(16, |buf| buf[0] = 1);
        assert_eq!(&part[1..], &[0u8; 15]);
    }

    #[test]
    fn clones_and_slices_keep_the_chunk_alive() {
        let mut a = ByteArena::new();
        let b = a.alloc(b"0123456789");
        let s = b.slice(2..5);
        drop(b);
        // The slice still references the chunk, so it must not be reused.
        let other = a.alloc(b"XXXXXXXXXX");
        assert_eq!(&s[..], b"234");
        assert_eq!(&other[..], b"XXXXXXXXXX");
        assert_eq!(a.hits(), 0);
    }

    #[test]
    fn zero_len_and_oversized_fall_back() {
        let mut a = ByteArena::new();
        assert_eq!(a.alloc(&[]).len(), 0);
        let big = a.alloc_zeroed((1 << 16) + 1);
        assert_eq!(big.len(), (1 << 16) + 1);
        drop(big);
        let big2 = a.alloc_zeroed((1 << 16) + 1);
        assert_eq!(big2.len(), (1 << 16) + 1);
        assert_eq!(a.hits(), 0, "oversized requests bypass the pool");
    }

    #[test]
    fn registry_is_bounded() {
        let mut a = ByteArena::new();
        let held: Vec<_> = (0..2 * CLASS_CAP).map(|_| a.alloc(&[7u8; 64])).collect();
        assert_eq!(held.len(), 2 * CLASS_CAP);
        assert!(a.pools.iter().all(|p| p.bufs.len() <= CLASS_CAP));
    }

    #[test]
    fn steady_state_reuses_a_small_working_set() {
        let mut a = ByteArena::new();
        for i in 0..10_000u32 {
            let b = a.alloc(&i.to_le_bytes());
            assert_eq!(&b[..], &i.to_le_bytes());
            // b drops here: next iteration should recycle it.
        }
        assert!(a.hits() >= 9_990, "hits {} misses {}", a.hits(), a.misses());
    }
}
