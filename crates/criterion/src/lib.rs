//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of criterion's API that
//! `crates/bench/benches/micro.rs` uses: `criterion_group!`/
//! `criterion_main!`, benchmark groups with element throughput, and the
//! `iter`/`iter_batched` timing loops. Measurement is deliberately simple —
//! a warm-up pass followed by a timed pass, reporting mean ns/iter and
//! derived throughput — with none of the real crate's statistics, HTML
//! reports, or CLI. Good enough to smoke the hot paths and compare runs by
//! eye; swap the real dependency back in for publication-grade numbers.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// shim always reruns setup per batch of one).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Units of work per iteration, used to derive a rate from the mean time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean wall time of one iteration from the measured pass.
    mean_ns: f64,
}

/// Target wall time for the measured pass of each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Iterations used to estimate cost before sizing the measured pass.
const PILOT_ITERS: u64 = 8;

/// Smoke mode (`HC_FAST=1`): every benchmark runs exactly one iteration, so
/// the whole suite completes in milliseconds. The test suite uses this to
/// catch bench rot — a target that no longer compiles or panics on its
/// first iteration — without paying for real measurement.
fn smoke() -> bool {
    std::env::var("HC_FAST").map(|v| v == "1").unwrap_or(false)
}

impl Bencher {
    /// Times `routine` over a sized loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if smoke() {
            let t = Instant::now();
            black_box(routine());
            self.mean_ns = t.elapsed().as_nanos() as f64;
            return;
        }
        // Pilot to size the run.
        let t0 = Instant::now();
        for _ in 0..PILOT_ITERS {
            black_box(routine());
        }
        let per = t0.elapsed().as_nanos().max(1) as f64 / PILOT_ITERS as f64;
        let iters =
            ((MEASURE_BUDGET.as_nanos() as f64 / per) as u64).clamp(PILOT_ITERS, 10_000_000);
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` on inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if smoke() {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.mean_ns = t.elapsed().as_nanos() as f64;
            return;
        }
        let mut pilot = Duration::ZERO;
        for _ in 0..PILOT_ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            pilot += t.elapsed();
        }
        let per = pilot.as_nanos().max(1) as f64 / PILOT_ITERS as f64;
        let iters = ((MEASURE_BUDGET.as_nanos() as f64 / per) as u64).clamp(PILOT_ITERS, 1_000_000);
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
        }
        self.mean_ns = measured.as_nanos() as f64 / iters as f64;
    }
}

/// A named set of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-iteration work unit used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
                format!(" ({:.2} Melem/s)", n as f64 * 1e3 / b.mean_ns)
            }
            Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
                format!(
                    " ({:.2} MiB/s)",
                    n as f64 * 1e9 / b.mean_ns / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<24} {:>12.1} ns/iter{}",
            self.name, id, b.mean_ns, rate
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            throughput: None,
        };
        g.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.mean_ns > 0.0);
    }

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_macro_expands_and_runs() {
        smoke();
    }
}
