//! Vendored stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset it uses: `rngs::SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++
//! (what real `SmallRng` uses on 64-bit targets), seeded through
//! SplitMix64 — high-quality, fast, and fully deterministic from the seed,
//! which is the property the simulator's replay/debugging workflow relies
//! on (DESIGN §5).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A distribution that can produce values of `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over the whole domain for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = Standard.sample(rng);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_sample_range_float!(f64, f32);

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples from the type's [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words. The entire future stream is a
        /// pure function of these, so they are exactly what a state
        /// fingerprint (model checking, replay digests) must capture.
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
