//! End-to-end tests of the full simulated testbed: every setup serves an
//! open-loop load with µs-scale latency and sane accounting.

use hovercraft::PolicyKind;
use simnet::SimDur;
use testbed::{run_experiment_checked, ClusterOpts, ServiceKind, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec, YcsbWorkload};

fn quick(setup: Setup, n: u32, rate: f64) -> ClusterOpts {
    let mut o = ClusterOpts::new(setup, n, rate);
    o.warmup = SimDur::millis(50);
    o.measure = SimDur::millis(200);
    o
}

#[test]
fn unrep_low_load_latency_is_microsecond_scale() {
    let r = run_experiment_checked(quick(Setup::Unrep, 1, 20_000.0));
    assert!(r.responses > 3_000, "{r:?}");
    assert!(r.achieved_rps > 19_000.0 * 0.95, "{r:?}");
    // 1 RTT + 1µs service: well under 20µs even at p99.
    assert!(r.p99_ns < 20_000, "p99 = {}ns", r.p99_ns);
}

#[test]
fn vanilla_low_load_serves_with_consensus_offset() {
    let r = run_experiment_checked(quick(Setup::Vanilla, 3, 20_000.0));
    assert!(r.achieved_rps > 19_000.0 * 0.95, "{r:?}");
    // 2 RTTs + service; must stay µs-scale but above UnRep.
    assert!(r.p99_ns < 60_000, "p99 = {}ns", r.p99_ns);
    assert!(r.p50_ns > 5_000, "consensus adds latency: {}", r.p50_ns);
}

#[test]
fn hovercraft_low_load_end_to_end() {
    let r = run_experiment_checked(quick(Setup::Hovercraft(PolicyKind::Jbsq), 3, 20_000.0));
    assert!(r.achieved_rps > 19_000.0 * 0.95, "{r:?}");
    assert!(r.p99_ns < 80_000, "p99 = {}ns", r.p99_ns);
}

#[test]
fn hovercraft_pp_low_load_end_to_end() {
    let r = run_experiment_checked(quick(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 20_000.0));
    assert!(r.achieved_rps > 19_000.0 * 0.95, "{r:?}");
    assert!(r.p99_ns < 80_000, "p99 = {}ns", r.p99_ns);
}

#[test]
fn five_node_cluster_serves() {
    let r = run_experiment_checked(quick(Setup::HovercraftPp(PolicyKind::Jbsq), 5, 50_000.0));
    assert!(r.achieved_rps > 50_000.0 * 0.95, "{r:?}");
}

#[test]
fn moderate_load_all_setups_keep_up() {
    for setup in [
        Setup::Unrep,
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ] {
        let r = run_experiment_checked(quick(setup, 3, 200_000.0));
        assert!(
            r.achieved_rps > 200_000.0 * 0.95,
            "{}: {r:?}",
            setup.label()
        );
        assert!(r.p99_ns < 500_000, "{}: p99 = {}", setup.label(), r.p99_ns);
    }
}

#[test]
fn reply_lb_shares_reply_traffic() {
    // 6kB replies at a load past a single NIC's reply capacity: only works
    // if followers answer clients too.
    let mut o = quick(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 300_000.0);
    o.workload = WorkloadKind::Synth(SynthSpec {
        dist: ServiceDist::Fixed { ns: 1_000 },
        req_size: 24,
        reply_size: 6_000,
        ro_fraction: 0.0,
    });
    let r = run_experiment_checked(o);
    assert!(
        r.achieved_rps > 300_000.0 * 0.9,
        "reply LB lifts the 200kRPS single-link cap: {r:?}"
    );
}

#[test]
fn ycsbe_on_kv_store_works_end_to_end() {
    let mut o = quick(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 20_000.0);
    o.service = ServiceKind::Kv;
    o.workload = WorkloadKind::Ycsb {
        workload: YcsbWorkload::E,
        records: 1_000,
    };
    let r = run_experiment_checked(o);
    assert!(r.achieved_rps > 20_000.0 * 0.9, "{r:?}");
    assert!(r.p99_ns < 500_000, "p99 = {}", r.p99_ns);
}

#[test]
fn results_are_deterministic_for_a_seed() {
    let run = || {
        let r = run_experiment_checked(quick(Setup::Hovercraft(PolicyKind::Jbsq), 3, 50_000.0));
        (r.responses, r.p99_ns, r.p50_ns)
    };
    assert_eq!(run(), run());
}
