//! Meta-tests for the invariant checker itself: prove that injected
//! protocol corruption is detected within one checked step, that a forced
//! failure produces a replayable bundle, and that replaying the same
//! (config, seed) reproduces the identical trace.

use std::panic::{catch_unwind, AssertUnwindSafe};

use hovercraft::PolicyKind;
use simnet::{SimDur, SimTime};
use testbed::{Cluster, ClusterOpts, ServerAgent, Setup};

fn build(seed: u64, bound: usize) -> Cluster {
    let mut o = ClusterOpts::new(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 20_000.0);
    o.seed = seed;
    o.bound = bound;
    let mut cluster = Cluster::build(o);
    cluster.settle();
    // Run well into the load so committed, applied, replier-stamped
    // entries exist and the checker has observed them.
    cluster.run_until_checked(SimTime::ZERO + SimDur::millis(250));
    cluster
}

/// Panic message of the checked step that must detect the corruption.
fn panic_message(cluster: &mut Cluster) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| {
        cluster.run_checked(SimDur::millis(1));
    }));
    let err = result.expect_err("the invariant checker must fire within one step");
    err.downcast_ref::<String>()
        .expect("panic payload is the violation message")
        .clone()
}

#[test]
fn checker_detects_mutated_replier_within_one_step() {
    let mut cluster = build(9001, 128);

    // Corrupt a replier stamp on an entry every node has applied: harmless
    // to future protocol behaviour (it is only read at apply time), so only
    // the checker can notice.
    let min_applied = cluster
        .servers
        .iter()
        .map(|&s| cluster.sim.agent::<ServerAgent>(s).node().applied_index())
        .min()
        .unwrap();
    assert!(min_applied > 0, "load must have produced applied entries");
    let leader = cluster.leader().unwrap();
    let servers = cluster.servers.clone();
    let agent = cluster.sim.agent_mut::<ServerAgent>(leader);
    let mut idx = min_applied;
    let old = loop {
        let e = agent.node().raft().log().get(idx).expect("entry in window");
        if let Some(r) = e.cmd.desc.replier {
            break r;
        }
        idx -= 1;
    };
    let forged = servers.iter().copied().find(|&s| s != old).unwrap();
    agent
        .node_mut()
        .raft_mut()
        .log_mut()
        .get_mut(idx)
        .unwrap()
        .cmd
        .desc
        .replier = Some(forged);

    let msg = panic_message(&mut cluster);
    assert!(msg.contains("replier_immutable"), "wrong invariant: {msg}");

    // The failure must come with a replayable bundle on disk.
    let path = msg
        .lines()
        .find_map(|l| l.strip_prefix("replay bundle: "))
        .expect("panic message names the bundle path");
    let bundle = std::fs::read_to_string(path).expect("bundle written");
    assert!(bundle.contains("seed: 9001"));
    assert!(bundle.contains("## node state"));
    assert!(bundle.contains("## trace tail"));
    assert!(bundle.contains("replier_immutable"));
}

#[test]
fn checker_detects_over_bound_assignment_within_one_step() {
    let bound = 16;
    let mut cluster = build(9002, bound);

    // Force the leader's ledger over the bound for one member, using fake
    // far-future indices so nothing the member reports can retire them.
    let leader = cluster.leader().unwrap();
    let member = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .unwrap();
    let agent = cluster.sim.agent_mut::<ServerAgent>(leader);
    let base = agent.node().raft().log().last_index() + 1_000;
    for i in 0..(bound as u64 + 8) {
        agent.node_mut().ledger_mut().assign(member, base + i);
    }

    let msg = panic_message(&mut cluster);
    assert!(msg.contains("bounded_queue"), "wrong invariant: {msg}");
}

#[test]
fn replay_bundle_is_reproduced_bit_for_bit() {
    // The bundle (node state + trace tail) is a pure function of
    // (opts, seed, virtual time): rebuilding the cluster and re-running to
    // the same instant must reproduce it exactly — the replay workflow the
    // bundle instructions describe.
    let run = || {
        let mut cluster = build(9003, 128);
        cluster.run_until_checked(SimTime::ZERO + SimDur::millis(300));
        let path = cluster.dump_bundle("meta-replay");
        std::fs::read_to_string(path).expect("bundle written")
    };
    let a = run();
    let b = run();
    assert!(!a.contains("trace tail (0 of 0"), "trace must be nonempty");
    assert_eq!(a, b, "replay must reproduce the identical bundle");
}
