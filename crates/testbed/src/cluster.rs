//! Cluster assembly: builds a complete deployment — servers, clients,
//! middleboxes, multicast groups — on the simulated fabric.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use hovercraft::{HcConfig, HcNode, Mode, WireMsg};
use minikv::{CostModel, KvService};
use simnet::{Addr, FabricParams, NicParams, NodeId, Sim, SimDur, SimTime, Tracer};
use workload::{RecordSpec, SynthService, SynthSpec, YcsbGen, YcsbWorkload};

use crate::client::{ClientAgent, ClientResults, ClientWorkload, RetryPolicy};
use crate::invariants::{InvariantChecker, Violation};
use crate::programs::{AggProgram, FcProgram};
use crate::server::{ServerAgent, UnrepAgent};
use crate::setup::{addrs, Setup};

/// How often checked runs stop the simulation to evaluate the cross-node
/// invariants. Small enough that a violation is localized to one slice of
/// protocol activity, large enough to keep checking overhead moderate.
const CHECK_STEP: SimDur = SimDur::millis(1);

/// How many trailing trace events a replay bundle includes.
const BUNDLE_TAIL: usize = 512;

/// Which application runs on the servers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceKind {
    /// The synthetic microbenchmark service (Figures 7–12).
    Synth,
    /// The Redis-like store with YCSB module ops (Figure 13).
    Kv,
}

/// What the clients send.
#[derive(Clone, Debug)]
pub enum WorkloadKind {
    /// Synthetic requests with the given parameters.
    Synth(SynthSpec),
    /// A YCSB stream over a preloaded keyspace.
    Ycsb {
        /// Workload letter (E for the paper's headline experiment).
        workload: YcsbWorkload,
        /// Records preloaded before the run.
        records: u64,
    },
}

impl WorkloadKind {
    fn instantiate(&self, seed: u64) -> ClientWorkload {
        match self {
            WorkloadKind::Synth(spec) => ClientWorkload::Synth(spec.clone()),
            WorkloadKind::Ycsb { workload, records } => ClientWorkload::Ycsb(Box::new(
                YcsbGen::new(*workload, *records, RecordSpec::default(), seed),
            )),
        }
    }
}

/// Build-time options for a cluster.
#[derive(Clone, Debug)]
pub struct ClusterOpts {
    /// System setup under test.
    pub setup: Setup,
    /// Number of servers (1 for [`Setup::Unrep`]).
    pub n: u32,
    /// Number of load-generating clients; the total rate is split evenly.
    pub clients: u32,
    /// Total offered load, requests/second.
    pub rate_rps: f64,
    /// Application.
    pub service: ServiceKind,
    /// Client workload.
    pub workload: WorkloadKind,
    /// Bounded-queue bound B (§3.4).
    pub bound: usize,
    /// Reply load balancing (None → the mode's default; Figure 7 sets
    /// `Some(false)`).
    pub lb_replies: Option<bool>,
    /// Read-only load balancing override.
    pub lb_reads: Option<bool>,
    /// Deploy the flow-control middlebox with this in-flight cap.
    pub flow_cap: Option<u32>,
    /// When clients begin sending.
    pub load_start: SimTime,
    /// Warm-up excluded from measurement.
    pub warmup: SimDur,
    /// Measured window.
    pub measure: SimDur,
    /// Client retransmission policy (None → clients never retry; chaos
    /// tests turn this on so requests survive faults).
    pub retry: Option<RetryPolicy>,
    /// Snapshot every this many applied entries (0 = never; the
    /// pre-snapshot behavior). Enables log compaction and snapshot-based
    /// follower state transfer.
    pub snapshot_interval: u64,
    /// Snapshot state-transfer chunk size override, bytes (0 = the
    /// [`HcConfig`] default). Chaos tests shrink it so even a small
    /// state-machine blob crosses the wire in many chunks, widening the
    /// window in which faults can interrupt a transfer.
    pub snap_chunk_bytes: usize,
    /// Master seed.
    pub seed: u64,
}

impl ClusterOpts {
    /// Sensible defaults for a microbenchmark point: measurement starts
    /// after 100 ms of load warm-up.
    pub fn new(setup: Setup, n: u32, rate_rps: f64) -> ClusterOpts {
        ClusterOpts {
            setup,
            n: if setup == Setup::Unrep { 1 } else { n },
            clients: 2,
            rate_rps,
            service: ServiceKind::Synth,
            workload: WorkloadKind::Synth(SynthSpec::baseline()),
            bound: 128,
            lb_replies: None,
            lb_reads: None,
            // HovercRaft needs explicit multicast flow control to survive
            // overload (§6.3) — vanilla Raft's implicit leader-drop flow
            // control disappears once clients multicast to everyone. The
            // cap comfortably exceeds the 500µs-SLO bandwidth-delay
            // product at 1 MRPS (≈500 requests).
            flow_cap: setup.multicast_requests().then_some(2_000),
            load_start: SimTime::ZERO + SimDur::millis(150),
            warmup: SimDur::millis(100),
            measure: SimDur::millis(500),
            retry: None,
            snapshot_interval: 0,
            snap_chunk_bytes: 0,
            seed: 42,
        }
    }

    /// End of the measured window.
    pub fn load_end(&self) -> SimTime {
        self.load_start + self.warmup + self.measure
    }
}

/// A built cluster, ready to run.
pub struct Cluster {
    /// The simulator.
    pub sim: Sim<WireMsg>,
    /// Server node ids (== addresses == Raft ids).
    pub servers: Vec<NodeId>,
    /// Client node ids.
    pub clients: Vec<NodeId>,
    /// Pipeline index of the aggregator program, if deployed.
    agg_prog: Option<usize>,
    /// Pipeline index of the flow-control program, if deployed.
    fc_prog: Option<usize>,
    /// Shared protocol-event trace (servers and switch programs feed it).
    tracer: Tracer,
    /// Cross-node invariant checker driven by the checked run methods.
    checker: InvariantChecker,
    opts: ClusterOpts,
}

fn make_service(kind: ServiceKind) -> Box<dyn hovercraft::Service> {
    match kind {
        ServiceKind::Synth => Box::new(SynthService::default()),
        ServiceKind::Kv => Box::new(KvService::new(CostModel::default())),
    }
}

/// Builds the application service for one server, preloaded identically on
/// every replica (outside simulated time). Also the service factory for
/// crash–restart rejoin: a restarted node's state machine starts from this
/// same preloaded image and re-applies its log from index 1.
fn build_service(opts: &ClusterOpts) -> Box<dyn hovercraft::Service> {
    let mut svc = make_service(opts.service);
    if opts.service == ServiceKind::Kv {
        if let WorkloadKind::Ycsb { records, .. } = &opts.workload {
            let gen = YcsbGen::new(YcsbWorkload::E, *records, RecordSpec::default(), 0);
            // Preload runs outside simulated time; a throwaway arena is fine.
            let mut arena = bytes::ByteArena::new();
            for cmd in gen.load_phase() {
                svc.execute(&cmd.encode(), false, &mut arena);
            }
        }
    }
    svc
}

/// NIC profile for client generators: the paper uses a pool of Lancet
/// machines that is never the bottleneck, so clients get a faster NIC and
/// cheap per-packet processing.
fn client_nic() -> NicParams {
    NicParams {
        link_bps: 40_000_000_000,
        rx_cpu_per_frag: SimDur::nanos(80),
        tx_cpu_per_frag: SimDur::nanos(80),
        rx_ring: 8192,
        ..NicParams::default()
    }
}

impl Cluster {
    /// Builds the deployment: servers, switch programs, groups, clients.
    pub fn build(opts: ClusterOpts) -> Cluster {
        let mut sim: Sim<WireMsg> = Sim::new(FabricParams::default(), opts.seed);
        let n = opts.n;
        let members: Vec<u32> = (0..n).collect();

        // Servers occupy node ids 0..n so Raft ids equal addresses.
        let mut servers = Vec::with_capacity(n as usize);
        for id in &members {
            let agent: Box<dyn simnet::Agent<WireMsg>> = match opts.setup.mode() {
                None => Box::new(UnrepAgent::new(build_service(&opts))),
                Some(mode) => {
                    let mut rc = raft::Config::new(*id, members.clone());
                    rc.seed = opts.seed.wrapping_mul(31).wrapping_add(*id as u64 * 7 + 3);
                    let mut cfg = HcConfig::new(rc, mode);
                    cfg.bound = opts.bound;
                    cfg.policy = opts.setup.policy();
                    if let Some(lb) = opts.lb_replies {
                        cfg.lb_replies = lb && mode.is_hovercraft();
                    }
                    if let Some(lb) = opts.lb_reads {
                        cfg.lb_reads = lb && mode.is_hovercraft();
                    }
                    cfg.agg_addr = (mode == Mode::HovercraftPp).then_some(addrs::AGG.0);
                    cfg.flowctl_addr = opts.flow_cap.map(|_| addrs::VIP.0);
                    cfg.snapshot_interval = opts.snapshot_interval;
                    if opts.snap_chunk_bytes > 0 {
                        cfg.snap_chunk_bytes = opts.snap_chunk_bytes;
                    }
                    Box::new(ServerAgent::new(cfg, build_service(&opts)))
                }
            };
            servers.push(sim.add_node(agent));
        }
        sim.add_group(addrs::GROUP, servers.clone());

        // One shared trace: every server, switch program, and the fault
        // injector record into it; the invariant checker and failure dumps
        // read from it.
        let tracer = Tracer::default();
        sim.set_tracer(tracer.clone());
        if opts.setup != Setup::Unrep {
            for &s in &servers {
                sim.agent_mut::<ServerAgent>(s).set_tracer(tracer.clone());
            }
            // Crash–restart rejoin: rebuild the agent from the crashed
            // node's durable state (term, vote, log suffix, snapshot,
            // incarnation epoch); everything else — pool, ledger, commit
            // index — restarts empty and is reconstructed by re-applying
            // the log above the snapshot, with missing bodies re-fetched
            // via the recovery protocol (§5). The epoch check makes a
            // restore from a stale incarnation a traced, fatal error
            // instead of a silent reinitialization.
            let hook_opts = opts.clone();
            let hook_tracer = tracer.clone();
            sim.set_restart_hook(Box::new(move |node, now, old| {
                let crashed = old
                    .as_any()
                    .downcast_ref::<ServerAgent>()
                    .expect("restart hook only handles server nodes")
                    .node();
                let durable = crashed.durable_state();
                let new_epoch = crashed.epoch() + 1;
                let restored = HcNode::restore(
                    crashed.config().clone(),
                    build_service(&hook_opts),
                    now.as_nanos(),
                    durable,
                    new_epoch,
                )
                .unwrap_or_else(|rej| {
                    let ev = rej.event();
                    let (render, a, b, c) = ev.detail_parts();
                    hook_tracer.record_lazy(now, node, ev.kind(), ev.key(), render, a, b, c);
                    panic!("n{node}: {rej}");
                });
                let mut agent = ServerAgent::from_node(restored);
                agent.set_tracer(hook_tracer.clone());
                Box::new(agent)
            }));
        }

        // Switch pipeline: flow control first, then the aggregator.
        let mut fc_prog = None;
        if let Some(cap) = opts.flow_cap {
            let idx = sim.add_switch_program(Box::new(FcProgram::new(cap)));
            sim.switch_program_mut::<FcProgram>(idx)
                .set_tracer(tracer.clone());
            fc_prog = Some(idx);
        }
        let mut agg_prog = None;
        if matches!(opts.setup, Setup::HovercraftPp(_)) {
            let idx = sim.add_switch_program(Box::new(AggProgram::new(members)));
            sim.switch_program_mut::<AggProgram>(idx)
                .set_tracer(tracer.clone());
            agg_prog = Some(idx);
        }

        // Clients: the target is patched after the leader settles (vanilla
        // mode needs the elected leader's address).
        let target = Self::default_target(&opts, servers[0]);
        let mut clients = Vec::with_capacity(opts.clients as usize);
        let per_client = opts.rate_rps / opts.clients as f64;
        for c in 0..opts.clients {
            let wl = opts.workload.instantiate(opts.seed * 1000 + c as u64);
            let mut agent = ClientAgent::new(
                target,
                per_client,
                opts.load_start,
                opts.load_end(),
                opts.load_start + opts.warmup,
                wl,
                opts.seed * 77 + c as u64,
            );
            if let Some(policy) = opts.retry {
                agent.set_retry(policy);
            }
            clients.push(sim.add_node_with(Box::new(agent), client_nic()));
        }

        Cluster {
            sim,
            servers,
            clients,
            agg_prog,
            fc_prog,
            tracer,
            checker: InvariantChecker::new(),
            opts,
        }
    }

    /// Fail-stops the in-network aggregator (HovercRaft++ only): from now
    /// on everything addressed to it is blackholed. The cluster detects
    /// the silence through elections and falls back to point-to-point
    /// communication (§5).
    pub fn fail_aggregator(&mut self) {
        let idx = self.agg_prog.expect("no aggregator in this setup");
        self.sim.switch_program_mut::<AggProgram>(idx).failed = true;
    }

    /// Replaces the failed aggregator with a fresh (empty) device; the next
    /// newly elected leader will adopt it after a successful VoteProbe.
    pub fn replace_aggregator(&mut self) {
        let idx = self.agg_prog.expect("no aggregator in this setup");
        let prog = self.sim.switch_program_mut::<AggProgram>(idx);
        prog.failed = false;
        prog.agg.flush();
    }

    fn default_target(opts: &ClusterOpts, first_server: NodeId) -> Addr {
        match opts.setup {
            Setup::Unrep | Setup::Vanilla => Addr::node(first_server),
            _ if opts.flow_cap.is_some() => addrs::VIP,
            _ => addrs::GROUP,
        }
    }

    /// Runs until a leader is elected (replicated setups) and points every
    /// client at the right target. Call before the load starts.
    ///
    /// # Panics
    /// Panics if no leader emerges within the settle budget.
    pub fn settle(&mut self) {
        if self.opts.setup == Setup::Unrep {
            return;
        }
        let deadline = self.opts.load_start - SimDur::millis(10);
        while self.sim.now() < deadline {
            self.sim.run_for(SimDur::millis(10));
            if self.leader().is_some() {
                break;
            }
        }
        let leader = self.leader().expect("no leader elected during settle");
        if self.opts.setup == Setup::Vanilla {
            for &c in &self.clients.clone() {
                self.sim
                    .agent_mut::<ClientAgent>(c)
                    .set_target(Addr::node(leader));
            }
        }
    }

    /// The current leader, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| {
                self.sim.is_alive(s)
                    && self.opts.setup != Setup::Unrep
                    && self.sim.agent::<ServerAgent>(s).node().is_leader()
            })
            .max_by_key(|&s| self.sim.agent::<ServerAgent>(s).node().raft().term())
    }

    /// Runs the whole load (settle → warm-up → measurement → drain).
    pub fn run_to_completion(&mut self) {
        self.settle();
        let end = self.opts.load_end() + SimDur::millis(20);
        // Reset traffic counters at the start of the measured window so
        // Table-1 accounting covers steady state only.
        self.sim.run_until(self.opts.load_start + self.opts.warmup);
        self.sim.reset_counters();
        self.sim.run_until(end);
    }

    /// The shared protocol-event trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Pipeline index of the flow-control program, if deployed.
    pub fn fc_prog_index(&self) -> Option<usize> {
        self.fc_prog
    }

    /// Evaluates every cross-node invariant once, returning the first
    /// violation. Prefer the `*_checked` run methods, which call this
    /// after every simulation step and panic with a replay bundle.
    pub fn check_invariants(&mut self) -> Result<(), Violation> {
        let mut checker = std::mem::take(&mut self.checker);
        let result = checker.check(self);
        self.checker = checker;
        result
    }

    /// Checks invariants now; on violation, dumps a replay bundle and
    /// panics with the violation and the bundle path.
    pub fn assert_invariants(&mut self) {
        if let Err(v) = self.check_invariants() {
            let path = self.dump_bundle(&format!("violation-{}", v.invariant));
            panic!(
                "protocol invariant violated: {v}\nreplay bundle: {}",
                path.display()
            );
        }
    }

    /// Runs until `t`, stopping every [`CHECK_STEP`] to evaluate the
    /// cross-node invariants (panicking with a replay bundle on the first
    /// violation).
    pub fn run_until_checked(&mut self, t: SimTime) {
        while self.sim.now() < t {
            let next = (self.sim.now() + CHECK_STEP).min(t);
            self.sim.run_until(next);
            self.assert_invariants();
        }
    }

    /// Runs for `dur` with invariant checking (see
    /// [`Cluster::run_until_checked`]).
    pub fn run_checked(&mut self, dur: SimDur) {
        let end = self.sim.now() + dur;
        self.run_until_checked(end);
    }

    /// [`Cluster::run_to_completion`] with invariant checking after every
    /// simulation step.
    pub fn run_to_completion_checked(&mut self) {
        self.settle();
        self.assert_invariants();
        self.run_until_checked(self.opts.load_start + self.opts.warmup);
        self.sim.reset_counters();
        let end = self.opts.load_end() + SimDur::millis(20);
        self.run_until_checked(end);
    }

    /// Writes a replayable failure bundle — the build options, master
    /// seed, per-node protocol state, and the trace tail — and returns its
    /// path. The content is a pure function of the (deterministic)
    /// simulation state, so re-running the same options and seed
    /// reproduces it bit-for-bit.
    pub fn dump_bundle(&self, reason: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/invariant-dumps");
        let _ = std::fs::create_dir_all(&dir);
        let safe: String = reason
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        let path = dir.join(format!("{safe}-seed{}.txt", self.opts.seed));

        let mut s = String::new();
        let _ = writeln!(s, "# HovercRaft replay bundle");
        let _ = writeln!(s, "reason: {reason}");
        let _ = writeln!(s, "virtual_time_ns: {}", self.sim.now().as_nanos());
        let _ = writeln!(s, "seed: {}", self.opts.seed);
        let _ = writeln!(s, "opts: {:?}", self.opts);
        let _ = writeln!(s, "replay: rebuild Cluster with these opts (same seed) and");
        let _ = writeln!(s, "        run to virtual_time_ns; the trace is reproduced");
        let _ = writeln!(
            s,
            "        exactly (see DESIGN.md, \"Debugging a failing seed\")."
        );
        let _ = writeln!(s, "\n## node state");
        for &sv in &self.servers {
            let alive = self.sim.is_alive(sv);
            if self.opts.setup == Setup::Unrep {
                let _ = writeln!(s, "n{sv}: unreplicated alive={alive}");
                continue;
            }
            let n = self.sim.agent::<ServerAgent>(sv).node();
            let _ = writeln!(
                s,
                "n{sv}: alive={alive} role={:?} term={} commit={} applied={} \
                 announced={} last={}",
                n.role(),
                n.raft().term(),
                n.raft().commit_index(),
                n.applied_index(),
                n.raft().announced_index(),
                n.raft().log().last_index(),
            );
        }
        let total = self.tracer.total_recorded();
        let shown = self.tracer.len().min(BUNDLE_TAIL);
        let _ = writeln!(s, "\n## trace tail ({shown} of {total} events)");
        // Streamed straight out of the ring into one buffer; the bundle
        // path is the only place these lazily recorded details are ever
        // rendered.
        s.push_str(&self.tracer.render_tail(BUNDLE_TAIL));
        if let Err(err) = std::fs::write(&path, &s) {
            eprintln!("failed to write replay bundle {}: {err}", path.display());
        }
        path
    }

    /// Merged client results.
    pub fn client_results(&mut self) -> ClientResults {
        let mut merged = ClientResults::default();
        for &c in &self.clients.clone() {
            let r = self.sim.agent_mut::<ClientAgent>(c).results();
            merged.sent += r.sent;
            merged.responses += r.responses;
            merged.nacks += r.nacks;
            merged.retries += r.retries;
            merged.duplicates += r.duplicates;
            merged.latencies.extend(r.latencies);
        }
        merged
    }

    /// The build options.
    pub fn opts(&self) -> &ClusterOpts {
        &self.opts
    }
}
