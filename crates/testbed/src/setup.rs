//! The four evaluated system setups (§7) and the experiment address plan.

use hovercraft::{Mode, PolicyKind};
use simnet::Addr;

/// The four system configurations the paper compares (§7, "Our experiments
/// compare four different system setups, all on top of DPDK").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Setup {
    /// A single, unreplicated R2P2 server — fast but not fault-tolerant.
    Unrep,
    /// Vanilla Raft ported onto R2P2/DPDK (the paper's `VanillaRaft`).
    Vanilla,
    /// HovercRaft with the given replier policy.
    Hovercraft(PolicyKind),
    /// HovercRaft++ (in-network aggregation) with the given policy.
    HovercraftPp(PolicyKind),
}

impl Setup {
    /// The protocol mode servers run in (None for the unreplicated setup).
    pub fn mode(self) -> Option<Mode> {
        match self {
            Setup::Unrep => None,
            Setup::Vanilla => Some(Mode::Vanilla),
            Setup::Hovercraft(_) => Some(Mode::Hovercraft),
            Setup::HovercraftPp(_) => Some(Mode::HovercraftPp),
        }
    }

    /// The replier policy (JBSQ unless configured otherwise).
    pub fn policy(self) -> PolicyKind {
        match self {
            Setup::Hovercraft(p) | Setup::HovercraftPp(p) => p,
            _ => PolicyKind::Jbsq,
        }
    }

    /// True if clients multicast requests to the whole group.
    pub fn multicast_requests(self) -> bool {
        matches!(self, Setup::Hovercraft(_) | Setup::HovercraftPp(_))
    }

    /// Short display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Setup::Unrep => "UnRep",
            Setup::Vanilla => "VanillaRaft",
            Setup::Hovercraft(_) => "HovercRaft",
            Setup::HovercraftPp(_) => "HovercRaft++",
        }
    }
}

/// Address plan: servers occupy node ids `0..n`; clients follow. Group and
/// middlebox addresses live in the multicast range so the ToR intercepts
/// them.
pub mod addrs {
    use super::Addr;

    /// Multicast group containing every server (the fault-tolerance group).
    pub const GROUP: Addr = Addr::group(0);
    /// The in-network aggregator's service address (HovercRaft++).
    pub const AGG: Addr = Addr::group(1);
    /// The flow-control middlebox VIP fronting the group (§6.3).
    pub const VIP: Addr = Addr::group(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_map_correctly() {
        assert_eq!(Setup::Unrep.mode(), None);
        assert_eq!(Setup::Vanilla.mode(), Some(Mode::Vanilla));
        assert_eq!(
            Setup::Hovercraft(PolicyKind::Jbsq).mode(),
            Some(Mode::Hovercraft)
        );
        assert_eq!(
            Setup::HovercraftPp(PolicyKind::Random).mode(),
            Some(Mode::HovercraftPp)
        );
    }

    #[test]
    fn only_hovercraft_modes_multicast() {
        assert!(!Setup::Unrep.multicast_requests());
        assert!(!Setup::Vanilla.multicast_requests());
        assert!(Setup::Hovercraft(PolicyKind::Jbsq).multicast_requests());
        assert!(Setup::HovercraftPp(PolicyKind::Jbsq).multicast_requests());
    }

    #[test]
    fn special_addresses_are_distinct_groups() {
        assert!(addrs::GROUP.is_group());
        assert!(addrs::AGG.is_group());
        assert!(addrs::VIP.is_group());
        assert_ne!(addrs::GROUP, addrs::AGG);
        assert_ne!(addrs::AGG, addrs::VIP);
    }
}
