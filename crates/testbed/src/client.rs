//! The load-generating client agent: an open-loop Poisson source with
//! Lancet-style latency accounting.
//!
//! A client models one Lancet generator machine: it fires requests at the
//! configured rate regardless of responses (open loop), matches responses
//! back to requests by the R2P2 3-tuple, and records per-request latency.
//! Several clients are typically deployed per experiment and their samples
//! merged, like the paper's multi-machine client pool.

use std::any::Any;
use std::collections::HashMap;

use bytes::Bytes;
use hovercraft::{OpKind, WireMsg};
use lancet::{LatencyRecorder, PoissonArrivals, WindowedSeries};
use r2p2::{ReqId, ReqIdAlloc};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simnet::{Addr, Agent, Ctx, Packet, SimDur, SimTime, TimerId};
use workload::{SynthSpec, YcsbGen};

const BEGIN: u64 = 1;
const SEND: u64 = 2;

/// What the client sends.
pub enum ClientWorkload {
    /// The synthetic microbenchmark service.
    Synth(SynthSpec),
    /// A YCSB operation stream.
    Ycsb(Box<YcsbGen>),
}

impl ClientWorkload {
    fn next(&mut self, rng: &mut SmallRng) -> (Bytes, bool) {
        match self {
            ClientWorkload::Synth(spec) => spec.sample(rng),
            ClientWorkload::Ycsb(g) => {
                let op = g.next_op();
                (op.body, op.read_only)
            }
        }
    }
}

/// Counters and samples harvested after a run.
#[derive(Debug, Default, Clone)]
pub struct ClientResults {
    /// Requests sent after the measurement start.
    pub sent: u64,
    /// Responses received for measured requests.
    pub responses: u64,
    /// NACKs received (flow control sheds).
    pub nacks: u64,
    /// Latency samples of measured requests, ns.
    pub latencies: Vec<u64>,
}

/// The open-loop client agent.
pub struct ClientAgent {
    target: Addr,
    rate_rps: f64,
    start_at: SimTime,
    end_at: SimTime,
    measure_from: SimTime,
    workload: ClientWorkload,
    seed: u64,
    arrivals: Option<PoissonArrivals>,
    rng: SmallRng,
    alloc: Option<ReqIdAlloc>,
    outstanding: HashMap<ReqId, u64>,
    recorder: LatencyRecorder,
    /// Completion time series (1 ms windows) — Figure 12's instrument.
    pub series: WindowedSeries,
    /// NACK time series.
    pub nack_series: WindowedSeries,
    results: ClientResults,
}

impl ClientAgent {
    /// Builds a client that starts loading at `start_at`, stops at
    /// `end_at`, and counts only requests sent at or after `measure_from`.
    pub fn new(
        target: Addr,
        rate_rps: f64,
        start_at: SimTime,
        end_at: SimTime,
        measure_from: SimTime,
        workload: ClientWorkload,
        seed: u64,
    ) -> ClientAgent {
        ClientAgent {
            target,
            rate_rps,
            start_at,
            end_at,
            measure_from,
            workload,
            seed,
            arrivals: None,
            rng: SmallRng::seed_from_u64(seed ^ 0xc11e),
            alloc: None,
            outstanding: HashMap::new(),
            recorder: LatencyRecorder::new(),
            series: WindowedSeries::new(1_000_000_000),
            nack_series: WindowedSeries::new(1_000_000_000),
            results: ClientResults::default(),
        }
    }

    /// Redirects future requests (e.g. to a newly elected leader).
    pub fn set_target(&mut self, target: Addr) {
        self.target = target;
    }

    /// Harvests results; call after the run (drains the latency samples).
    pub fn results(&mut self) -> ClientResults {
        let mut r = self.results.clone();
        r.latencies = self.recorder.take_samples();
        r
    }

    /// Requests still awaiting a response (lost replies under failures).
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    fn fire(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let now = ctx.now();
        if now >= self.end_at {
            return;
        }
        let alloc = self
            .alloc
            .get_or_insert_with(|| ReqIdAlloc::new(ctx.node_id(), 1000));
        let id = alloc.allocate();
        let (body, ro) = self.workload.next(&mut self.rng);
        let msg = WireMsg::Request {
            id,
            kind: if ro {
                OpKind::ReadOnly
            } else {
                OpKind::ReadWrite
            },
            body,
        };
        let size = msg.wire_size();
        ctx.send(self.target, size, msg);
        self.outstanding.insert(id, now.as_nanos());
        if now >= self.measure_from {
            self.results.sent += 1;
        }
        // Arm the next arrival (a zero delay is fine: overdue arrivals of a
        // bursty schedule fire back-to-back at the current instant).
        let arr = self.arrivals.as_mut().expect("initialized at BEGIN");
        let next = arr.next_arrival();
        ctx.set_timer(SimDur::nanos(next.saturating_sub(now.as_nanos())), SEND);
    }
}

impl Agent<WireMsg> for ClientAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let delay = self.start_at.since(ctx.now());
        ctx.set_timer(delay, BEGIN);
    }

    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<'_, WireMsg>) {
        match kind {
            BEGIN => {
                self.arrivals = Some(PoissonArrivals::new(
                    self.rate_rps,
                    ctx.now().as_nanos(),
                    self.seed,
                ));
                // Consume the first (immediate) arrival and fire.
                let _ = self.arrivals.as_mut().expect("just set").next_arrival();
                self.fire(ctx);
            }
            SEND => self.fire(ctx),
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_packet(&mut self, pkt: Packet<WireMsg>, ctx: &mut Ctx<'_, WireMsg>) {
        let now = ctx.now();
        match pkt.payload {
            WireMsg::Response { id, .. } => {
                if let Some(sent) = self.outstanding.remove(&id) {
                    let latency = now.as_nanos() - sent;
                    self.series.record(now.as_nanos(), latency);
                    // Goodput accounting is bounded by the measured window
                    // on *both* ends: counting late completions of measured
                    // sends would let an overloaded system report goodput
                    // at its offered rate.
                    if sent >= self.measure_from.as_nanos() && now <= self.end_at {
                        self.results.responses += 1;
                        self.recorder.record(latency);
                    }
                }
            }
            WireMsg::Nack { id } => {
                if let Some(sent) = self.outstanding.remove(&id) {
                    self.nack_series.record(now.as_nanos(), 0);
                    if sent >= self.measure_from.as_nanos() && now <= self.end_at {
                        self.results.nacks += 1;
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
