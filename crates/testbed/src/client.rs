//! The load-generating client agent: an open-loop Poisson source with
//! Lancet-style latency accounting.
//!
//! A client models one Lancet generator machine: it fires requests at the
//! configured rate regardless of responses (open loop), matches responses
//! back to requests by the R2P2 3-tuple, and records per-request latency.
//! Several clients are typically deployed per experiment and their samples
//! merged, like the paper's multi-machine client pool.

use std::any::Any;

use bytes::Bytes;
use fxhash::{FxHashMap, FxHashSet};
use hovercraft::{OpKind, WireMsg};
use lancet::{LatencyRecorder, PoissonArrivals, WindowedSeries};
use r2p2::{ReqId, ReqIdAlloc};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simnet::{Addr, Agent, Ctx, Packet, SimDur, SimTime, TimerId};
use workload::{SynthSpec, YcsbGen};

const BEGIN: u64 = 1;
const SEND: u64 = 2;
const RETRY_SCAN: u64 = 3;

/// How often a retrying client scans its outstanding set for overdue
/// requests. Half the base timeout keeps retransmission latency within
/// 1.5× the configured timeout.
const RETRY_SCAN_INTERVAL: SimDur = SimDur::micros(500);

/// Client-side retransmission policy (off by default — the open-loop
/// generators of the throughput experiments never retry). Retransmissions
/// reuse the original [`ReqId`], so servers can deduplicate and the
/// exactly-one-reply invariant is keyed per request, not per transmission.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Base response timeout before the first retransmission.
    pub timeout: SimDur,
    /// Cap on the exponential backoff between retransmissions.
    pub backoff_cap: SimDur,
    /// Total transmission attempts (initial send included) before the
    /// client gives the request up for lost.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDur::millis(1),
            backoff_cap: SimDur::millis(16),
            max_attempts: 6,
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempts + 1`: `timeout · 2^(attempts-1)`,
    /// capped.
    fn backoff(&self, attempts: u32) -> u64 {
        let base = self.timeout.as_nanos();
        let shift = attempts.saturating_sub(1).min(32);
        base.saturating_mul(1u64 << shift)
            .min(self.backoff_cap.as_nanos())
    }
}

/// An in-flight request awaiting its response.
struct Pending {
    /// Original send time, ns (latency is measured from the first attempt).
    sent: u64,
    kind: OpKind,
    body: Bytes,
    /// Transmissions so far.
    attempts: u32,
    /// Virtual time of the next retransmission; `u64::MAX` when retries are
    /// disabled or exhausted.
    next_retry: u64,
}

/// What the client sends.
pub enum ClientWorkload {
    /// The synthetic microbenchmark service.
    Synth(SynthSpec),
    /// A YCSB operation stream.
    Ycsb(Box<YcsbGen>),
}

impl ClientWorkload {
    fn next(&mut self, rng: &mut SmallRng, arena: &mut bytes::ByteArena) -> (Bytes, bool) {
        match self {
            ClientWorkload::Synth(spec) => spec.sample_in(rng, arena),
            ClientWorkload::Ycsb(g) => {
                let op = g.next_op();
                (op.body, op.read_only)
            }
        }
    }
}

/// Counters and samples harvested after a run.
#[derive(Debug, Default, Clone)]
pub struct ClientResults {
    /// Requests sent after the measurement start.
    pub sent: u64,
    /// Responses received for measured requests.
    pub responses: u64,
    /// NACKs received (flow control sheds).
    pub nacks: u64,
    /// Retransmissions sent (measured requests, retrying clients only).
    pub retries: u64,
    /// Duplicate responses received for already-completed requests (a
    /// restarted replier may legitimately re-answer; the invariant checker
    /// verifies each duplicate against the replier's incarnation).
    pub duplicates: u64,
    /// Latency samples of measured requests, ns.
    pub latencies: Vec<u64>,
}

/// The open-loop client agent.
pub struct ClientAgent {
    target: Addr,
    rate_rps: f64,
    start_at: SimTime,
    end_at: SimTime,
    measure_from: SimTime,
    workload: ClientWorkload,
    seed: u64,
    arrivals: Option<PoissonArrivals>,
    rng: SmallRng,
    alloc: Option<ReqIdAlloc>,
    // Deterministic hasher: the retry scan iterates this map and resends
    // in iteration order, so the order must not vary across processes.
    outstanding: FxHashMap<ReqId, Pending>,
    retry: Option<RetryPolicy>,
    /// Requests already answered once (duplicate detection under retries).
    completed: FxHashSet<ReqId>,
    recorder: LatencyRecorder,
    /// Completion time series (1 ms windows) — Figure 12's instrument.
    pub series: WindowedSeries,
    /// NACK time series.
    pub nack_series: WindowedSeries,
    results: ClientResults,
}

impl ClientAgent {
    /// Builds a client that starts loading at `start_at`, stops at
    /// `end_at`, and counts only requests sent at or after `measure_from`.
    pub fn new(
        target: Addr,
        rate_rps: f64,
        start_at: SimTime,
        end_at: SimTime,
        measure_from: SimTime,
        workload: ClientWorkload,
        seed: u64,
    ) -> ClientAgent {
        ClientAgent {
            target,
            rate_rps,
            start_at,
            end_at,
            measure_from,
            workload,
            seed,
            arrivals: None,
            rng: SmallRng::seed_from_u64(seed ^ 0xc11e),
            alloc: None,
            outstanding: FxHashMap::default(),
            retry: None,
            completed: FxHashSet::default(),
            recorder: LatencyRecorder::new(),
            series: WindowedSeries::new(1_000_000_000),
            nack_series: WindowedSeries::new(1_000_000_000),
            results: ClientResults::default(),
        }
    }

    /// Redirects future requests (e.g. to a newly elected leader).
    pub fn set_target(&mut self, target: Addr) {
        self.target = target;
    }

    /// Enables retransmission with capped exponential backoff. Call before
    /// the simulation starts.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Harvests results; call after the run (drains the latency samples).
    pub fn results(&mut self) -> ClientResults {
        let mut r = self.results.clone();
        r.latencies = self.recorder.take_samples();
        r
    }

    /// Requests still awaiting a response (lost replies under failures).
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    fn fire(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let now = ctx.now();
        if now >= self.end_at {
            return;
        }
        let alloc = self
            .alloc
            .get_or_insert_with(|| ReqIdAlloc::new(ctx.node_id(), 1000));
        let id = alloc.allocate();
        let (body, ro) = self.workload.next(&mut self.rng, ctx.arena());
        let kind = if ro {
            OpKind::ReadOnly
        } else {
            OpKind::ReadWrite
        };
        let msg = WireMsg::Request {
            id,
            kind,
            body: body.clone(),
        };
        let size = msg.wire_size();
        ctx.send(self.target, size, msg);
        let next_retry = match self.retry {
            Some(p) => now.as_nanos().saturating_add(p.timeout.as_nanos()),
            None => u64::MAX,
        };
        self.outstanding.insert(
            id,
            Pending {
                sent: now.as_nanos(),
                kind,
                body,
                attempts: 1,
                next_retry,
            },
        );
        if now >= self.measure_from {
            self.results.sent += 1;
        }
        // Arm the next arrival (a zero delay is fine: overdue arrivals of a
        // bursty schedule fire back-to-back at the current instant).
        let arr = self.arrivals.as_mut().expect("initialized at BEGIN");
        let next = arr.next_arrival();
        ctx.set_timer(SimDur::nanos(next.saturating_sub(now.as_nanos())), SEND);
    }

    /// Retransmits every overdue outstanding request (same `ReqId`, same
    /// payload), applying capped exponential backoff; requests out of
    /// attempts are abandoned (they stay in `outstanding` as losses).
    fn scan_retries(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let Some(policy) = self.retry else { return };
        let now = ctx.now();
        if now >= self.end_at {
            return; // the load window is over; let in-flight requests drain
        }
        let now_ns = now.as_nanos();
        let measure_from = self.measure_from.as_nanos();
        let target = self.target;
        let mut resend: Vec<(ReqId, OpKind, Bytes)> = Vec::new();
        for (&id, p) in self.outstanding.iter_mut() {
            if p.next_retry > now_ns {
                continue;
            }
            if p.attempts >= policy.max_attempts {
                p.next_retry = u64::MAX; // exhausted: give it up for lost
                continue;
            }
            p.attempts += 1;
            p.next_retry = now_ns.saturating_add(policy.backoff(p.attempts));
            if p.sent >= measure_from {
                self.results.retries += 1;
            }
            resend.push((id, p.kind, p.body.clone()));
        }
        for (id, kind, body) in resend {
            let msg = WireMsg::Request { id, kind, body };
            let size = msg.wire_size();
            ctx.send(target, size, msg);
        }
    }
}

impl Agent<WireMsg> for ClientAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let delay = self.start_at.since(ctx.now());
        ctx.set_timer(delay, BEGIN);
    }

    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<'_, WireMsg>) {
        match kind {
            BEGIN => {
                self.arrivals = Some(PoissonArrivals::new(
                    self.rate_rps,
                    ctx.now().as_nanos(),
                    self.seed,
                ));
                // Consume the first (immediate) arrival and fire.
                let _ = self.arrivals.as_mut().expect("just set").next_arrival();
                if self.retry.is_some() {
                    ctx.set_timer(RETRY_SCAN_INTERVAL, RETRY_SCAN);
                }
                self.fire(ctx);
            }
            SEND => self.fire(ctx),
            RETRY_SCAN => {
                self.scan_retries(ctx);
                if ctx.now() < self.end_at {
                    ctx.set_timer(RETRY_SCAN_INTERVAL, RETRY_SCAN);
                }
            }
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_packet(&mut self, pkt: Packet<WireMsg>, ctx: &mut Ctx<'_, WireMsg>) {
        let now = ctx.now();
        match pkt.payload {
            WireMsg::Response { id, .. } => {
                if let Some(p) = self.outstanding.remove(&id) {
                    let latency = now.as_nanos() - p.sent;
                    self.series.record(now.as_nanos(), latency);
                    if self.retry.is_some() {
                        self.completed.insert(id);
                    }
                    // Goodput accounting is bounded by the measured window
                    // on *both* ends: counting late completions of measured
                    // sends would let an overloaded system report goodput
                    // at its offered rate.
                    if p.sent >= self.measure_from.as_nanos() && now <= self.end_at {
                        self.results.responses += 1;
                        self.recorder.record(latency);
                    }
                } else if self.completed.contains(&id) {
                    // A second answer to a request we already completed —
                    // e.g. a restarted replier re-executing its log. Counted
                    // here; judged by the incarnation-aware checker.
                    self.results.duplicates += 1;
                }
            }
            WireMsg::Nack { id } => {
                match self.retry {
                    Some(policy) => {
                        // Shed by flow control: back off and retry the same
                        // request instead of abandoning it.
                        if let Some(p) = self.outstanding.get_mut(&id) {
                            self.nack_series.record(now.as_nanos(), 0);
                            p.next_retry = now
                                .as_nanos()
                                .saturating_add(policy.backoff(p.attempts.max(1)));
                            if p.sent >= self.measure_from.as_nanos() && now <= self.end_at {
                                self.results.nacks += 1;
                            }
                        }
                    }
                    None => {
                        if let Some(p) = self.outstanding.remove(&id) {
                            self.nack_series.record(now.as_nanos(), 0);
                            if p.sent >= self.measure_from.as_nanos() && now <= self.end_at {
                                self.results.nacks += 1;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
