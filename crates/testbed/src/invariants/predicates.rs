//! Pure invariant predicates — the single source of truth shared by the
//! runtime [`InvariantChecker`](super::InvariantChecker) (which samples a
//! simulated cluster every millisecond of virtual time) and the `mc`
//! explicit-state model checker (which evaluates every reachable state of
//! the sans-io core exhaustively at small scope).
//!
//! Each function answers "is this observation legal?" for exactly one
//! invariant, with no dependence on *where* the observation came from —
//! no `Cluster`, no `simnet`, no trace types. Both checkers reduce their
//! view of the world to the same plain integers/entries and call the same
//! predicate, so the two enforcement paths cannot drift apart: tightening
//! or loosening an invariant is a one-line change that both inherit.
//!
//! Numbering follows the module docs of [`super`]: 1 apply bound,
//! 2 monotonicity, 3 log matching / committed-prefix agreement,
//! 4 replier immutability (§3.3), 5 bounded replier queues (§3.4),
//! 6 exactly-one reply, 7 flow conservation, 8 snapshot bounds,
//! 9 transfer-resume monotonicity. Convergence / state-identity predicates
//! back the chaos suite's end-of-run asserts.

use hovercraft::Cmd;
use raft::Entry;

/// Deliberate single-predicate faults for harness self-tests.
///
/// The mutation smoke tests (`tests/mc.rs`, and the bundle meta-test in
/// `tests/chaos.rs`) need to prove the surrounding checker can actually
/// *fail* — an exhaustive run that can never report a violation proves
/// nothing. Threading a `Mutation` value into one predicate flips a legal
/// observation into a reported violation without touching the protocol
/// under test. Production call sites pass [`Mutation::None`]; the knob is
/// a parameter (not a global) so parallel test binaries cannot interfere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Mutation {
    /// No fault: every predicate gives its true verdict.
    #[default]
    None,
    /// Invert invariant 4's legal stamping step: report a fresh replier
    /// stamp — the first sighting of `Some` for a log slot, which §3.3
    /// explicitly permits — as a violation. Any execution that announces
    /// a single replicated request then exhibits a "counterexample".
    BreakReplierImmutability,
}

/// Invariant 1 — apply bound: execution never outruns durability
/// (`applied ≤ commit`).
#[inline]
pub fn apply_bound_ok(applied: u64, commit: u64) -> bool {
    applied <= commit
}

/// Invariant 8 — snapshot bound: compaction never outruns execution
/// (`snapshot ≤ applied`; chained with invariant 1 this gives
/// `snapshot ≤ applied ≤ commit`).
#[inline]
pub fn snapshot_bound_ok(snapshot_index: u64, applied: u64) -> bool {
    snapshot_index <= applied
}

/// Invariants 2 and 8 — per-node watermarks (`commit`, `applied`,
/// snapshot boundary) never regress within one incarnation.
#[inline]
pub fn monotone_ok(prev: u64, cur: u64) -> bool {
    cur >= prev
}

/// Invariant 3a — committed-prefix agreement: an index committed
/// everywhere holds the *same* entry (term and full descriptor, replier
/// included) on every live node.
#[inline]
pub fn committed_prefix_ok(a: &Entry<Cmd>, b: &Entry<Cmd>) -> bool {
    a.term == b.term && a.cmd == b.cmd
}

/// Invariant 3b — Log Matching above the common commit point: if two
/// logs agree on an index's term they agree on its entry. (Disagreeing
/// terms are fine — an uncommitted suffix awaiting truncation.)
#[inline]
pub fn log_matching_ok(a: &Entry<Cmd>, b: &Entry<Cmd>) -> bool {
    a.term != b.term || a.cmd == b.cmd
}

/// Outcome of one replier-immutability tracking step (invariant 4): what
/// the caller should do with its first-seen stamp for this log slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplierStep {
    /// Record `cur` as the new stamp (first sighting, a newer-term
    /// replacement entry, or the one legal `None -> Some` first stamp).
    Track,
    /// Stamp unchanged; nothing to record.
    Keep,
    /// The replier field of a stamped `(term, index)` entry changed —
    /// a §3.3 violation.
    Violation,
}

/// Invariant 4 — replier immutability (§3.3): once an entry carries a
/// replier, that field never changes for the lifetime of that
/// `(term, index)` entry.
///
/// `seen` is the first-observed `(term, replier)` stamp for this log slot
/// (`None` if unobserved); `cur` is the `(term, replier)` read now. A
/// term change means the slot's entry was replaced by uncommitted-suffix
/// truncation and is re-tracked from scratch; within a term the only
/// legal transition is `None -> Some` (the leader stamping at announce
/// time). Under [`Mutation::BreakReplierImmutability`] any legal fresh
/// stamp — a first sighting of `Some`, or the `None -> Some` step — is
/// *reported as the violation* instead, so harness tests can prove the
/// checker fires.
pub fn replier_step(
    seen: Option<(u64, Option<u32>)>,
    cur: (u64, Option<u32>),
    mutation: Mutation,
) -> ReplierStep {
    let Some((seen_term, seen_replier)) = seen else {
        // First sighting of this slot. A checker observing states
        // coarser than single protocol steps (the model checker's
        // action granularity, the simulator's 1ms sampling) sees most
        // stamps this way — entries appear already announced.
        return match (mutation, cur.1) {
            (Mutation::BreakReplierImmutability, Some(_)) => ReplierStep::Violation,
            _ => ReplierStep::Track,
        };
    };
    if seen_term != cur.0 {
        // Entry replaced by one from a newer term — track the
        // replacement from scratch.
        return ReplierStep::Track;
    }
    match (seen_replier, cur.1) {
        (Some(old), new) if new != Some(old) => ReplierStep::Violation,
        (None, Some(_)) => match mutation {
            // The one legal transition: first stamp.
            Mutation::None => ReplierStep::Track,
            Mutation::BreakReplierImmutability => ReplierStep::Violation,
        },
        _ => ReplierStep::Keep,
    }
}

/// Invariant 5 — bounded replier queues (§3.4): on the leader, a
/// member's outstanding-assignment depth stays within `B`, modulo debt
/// inherited (immutably, §5) from previous terms: the allowance for a
/// term is `max(B, depth first observed in that term)`, so inherited
/// over-`B` debt may drain but never grow.
#[inline]
pub fn queue_depth_ok(depth: usize, bound: usize, baseline: usize) -> bool {
    depth <= bound.max(baseline)
}

/// Invariant 6 — exactly-one reply: is a *second* reply for an
/// already-answered request legal? Only when the same node re-answers at
/// a strictly higher incarnation (a restarted replier re-executing its
/// log); any other duplicate is a violation.
#[inline]
pub fn duplicate_reply_ok(first_node: u32, first_inc: u64, node: u32, inc: u64) -> bool {
    node == first_node && inc > first_inc
}

/// Invariant 9 — transfer-resume monotonicity: a node's cumulative
/// snapshot-chunk ack offset never regresses within one incarnation,
/// except a rewind to exactly 0 *before* the install — a legitimate
/// from-scratch failover to a competing serving peer. A partial rewind
/// (lost buffered chunks) or any rewind after `snapshot_installed`
/// (a regressed `applied` cursor) is a protocol bug.
#[inline]
pub fn transfer_resume_ok(high: u64, next: u64, installed: bool) -> bool {
    next >= high || (next == 0 && !installed)
}

/// Invariant 7 — flow-control slot conservation at the middlebox:
/// `admitted − (feedback − spurious) − reclaimed == in_flight`.
#[inline]
pub fn flow_conservation_ok(
    admitted: u64,
    feedback: u64,
    spurious: u64,
    reclaimed: u64,
    in_flight: u64,
) -> bool {
    admitted as i128 - (feedback as i128 - spurious as i128) - reclaimed as i128
        == in_flight as i128
}

/// End-of-run convergence: all live replicas applied the same prefix.
#[inline]
pub fn converged_ok(applied: &[u64]) -> bool {
    applied.windows(2).all(|w| w[0] == w[1])
}

/// End-of-run state identity: every live replica's serialized
/// state-machine content is bit-identical (a restored/transferred node
/// equals a replaying reference).
#[inline]
pub fn states_identical_ok(states: &[Vec<u8>]) -> bool {
    states.windows(2).all(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replier_step_transitions() {
        // First sighting and newer-term replacement both re-track.
        assert_eq!(
            replier_step(None, (3, Some(1)), Mutation::None),
            ReplierStep::Track
        );
        assert_eq!(
            replier_step(Some((2, Some(1))), (3, Some(4)), Mutation::None),
            ReplierStep::Track
        );
        // The one legal same-term transition: first stamp.
        assert_eq!(
            replier_step(Some((3, None)), (3, Some(2)), Mutation::None),
            ReplierStep::Track
        );
        // Stamped replier must not change (even back to None).
        assert_eq!(
            replier_step(Some((3, Some(1))), (3, Some(2)), Mutation::None),
            ReplierStep::Violation
        );
        assert_eq!(
            replier_step(Some((3, Some(1))), (3, None), Mutation::None),
            ReplierStep::Violation
        );
        // Unchanged stamp: keep.
        assert_eq!(
            replier_step(Some((3, Some(1))), (3, Some(1)), Mutation::None),
            ReplierStep::Keep
        );
        // The mutation inverts the legal stamping step, whether it is
        // seen as a None -> Some transition or as a first sighting of an
        // already-stamped entry.
        assert_eq!(
            replier_step(
                Some((3, None)),
                (3, Some(2)),
                Mutation::BreakReplierImmutability
            ),
            ReplierStep::Violation
        );
        assert_eq!(
            replier_step(None, (3, Some(2)), Mutation::BreakReplierImmutability),
            ReplierStep::Violation
        );
        assert_eq!(
            replier_step(None, (3, None), Mutation::BreakReplierImmutability),
            ReplierStep::Track,
            "an unstamped first sighting is legal even under the mutation"
        );
        assert_eq!(
            replier_step(
                Some((3, Some(1))),
                (3, Some(1)),
                Mutation::BreakReplierImmutability
            ),
            ReplierStep::Keep
        );
    }

    #[test]
    fn transfer_resume_carve_out() {
        assert!(transfer_resume_ok(0, 4, false));
        assert!(transfer_resume_ok(4, 4, false));
        assert!(transfer_resume_ok(4, 0, false), "pre-install rewind to 0");
        assert!(!transfer_resume_ok(4, 2, false), "partial rewind");
        assert!(!transfer_resume_ok(4, 0, true), "rewind after install");
    }

    #[test]
    fn duplicate_reply_carve_out() {
        assert!(
            duplicate_reply_ok(2, 0, 2, 1),
            "same node, higher incarnation"
        );
        assert!(
            !duplicate_reply_ok(2, 0, 2, 0),
            "same node, same incarnation"
        );
        assert!(!duplicate_reply_ok(2, 0, 3, 1), "different node");
    }
}
