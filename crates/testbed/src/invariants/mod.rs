//! Cross-node protocol invariant checking.
//!
//! [`InvariantChecker`] inspects a whole [`Cluster`](crate::Cluster)
//! between simulation steps and flags states that no correct HovercRaft
//! execution can reach. Integration tests drive the cluster through
//! [`Cluster::run_checked`](crate::Cluster::run_checked), which calls
//! [`InvariantChecker::check`] after every step and turns the first
//! [`Violation`] into a panic plus a replayable trace bundle.
//!
//! The checker is a *sampler*: it reduces the cluster to plain
//! observations (watermarks, log entries, queue depths, trace events) and
//! delegates every verdict to the pure predicates in [`predicates`] — the
//! same functions the `mc` explicit-state model checker evaluates on
//! every reachable state at small scope. One definition, two enforcement
//! densities.
//!
//! Invariants (all scoped to *live* nodes; killed nodes keep arbitrary
//! stale state):
//!
//! 1. **Apply bound** — `applied ≤ commit` on every node: execution never
//!    outruns durability.
//! 2. **Monotonicity** — per-node `commit` and `applied` never regress
//!    within one incarnation (a crash–restart wipes volatile state, so the
//!    watermarks reset when a node's restart count advances).
//! 3. **Log matching / committed-prefix agreement** — every index committed
//!    everywhere holds the *same* entry (term and full descriptor,
//!    replier included) on every live node; above the common commit point,
//!    any two live logs that agree on an index's term agree on its entry
//!    (Raft's Log Matching property).
//! 4. **Replier immutability** (§3.3) — once an entry carries a replier,
//!    that field never changes for the lifetime of that `(term, index)`
//!    entry. Checked over a sliding window above the cluster-wide applied
//!    floor (minus a safety margin), so the scan cost tracks the in-flight
//!    window, not total log length.
//! 5. **Bounded replier queues** (§3.4) — on the leader, no member's
//!    outstanding-assignment depth exceeds the bound `B`. A freshly
//!    elected leader may inherit more than `B` immutable assignments from
//!    previous terms (§5), so the limit for a term is
//!    `max(B, depth first observed in that term)` — inherited debt may
//!    only drain, never grow.
//! 6. **Exactly-one reply** — scanning the protocol trace, no request id
//!    is answered twice (by any node, across elections and recoveries),
//!    with one carve-out: the same node may re-answer at a strictly higher
//!    incarnation (a restarted replier re-executing its log).
//! 7. **Flow-control conservation** — at the middlebox,
//!    `admitted − (feedback − spurious) − reclaimed == in_flight`.
//! 8. **Snapshot bounds** — `snapshot_index ≤ applied ≤ commit` on every
//!    node: compaction never outruns execution (no entry is discarded
//!    before it has been applied, so nothing is ever applied *below* the
//!    snapshot), and the snapshot watermark itself never regresses within
//!    one incarnation.
//! 9. **Transfer-resume monotonicity** — scanning the protocol trace, a
//!    node's cumulative snapshot-chunk acknowledgement (`chunk_acked`
//!    `next` offset) never regresses for a given `(node, snapshot index)`
//!    within one incarnation, with one carve-out: a rewind to exactly 0
//!    *before* the snapshot installs is a legitimate from-scratch restart
//!    of the stream (peer-served failover drops the reassembly buffer). A
//!    partial rewind, a rewind after `snapshot_installed`, or a rewind in
//!    a fresh incarnation claiming old progress is a protocol bug.
//!
//! The checker is stateful (watermarks, first-seen replier stamps, reply
//! set, trace cursor); create one per cluster and feed it every step.

pub mod predicates;

use std::fmt;

use fxhash::{FxHashMap, FxHashSet};

use raft::LogIndex;
use simnet::NodeId;

use crate::cluster::Cluster;
use crate::programs::FcProgram;
use crate::server::ServerAgent;
use crate::setup::Setup;

use predicates::{Mutation, ReplierStep};

/// How far below the cluster-wide applied floor the replier-immutability
/// window reaches. Mutations of entries older than this (already applied
/// everywhere) can no longer affect protocol behaviour and are not scanned.
const REPLIER_WINDOW_SLACK: u64 = 64;

/// A detected invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant fired (stable identifier, e.g. `"replier_immutable"`).
    pub invariant: &'static str,
    /// The node it was detected on, when node-scoped.
    pub node: Option<NodeId>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{}] on n{}: {}", self.invariant, n, self.detail),
            None => write!(f, "[{}]: {}", self.invariant, self.detail),
        }
    }
}

fn violation(
    invariant: &'static str,
    node: impl Into<Option<NodeId>>,
    detail: String,
) -> Result<(), Violation> {
    Err(Violation {
        invariant,
        node: node.into(),
        detail,
    })
}

/// Stateful cross-node invariant checker (see module docs for the list).
#[derive(Default)]
pub struct InvariantChecker {
    /// Per-node high-water marks for monotonicity checks.
    last_commit: FxHashMap<NodeId, LogIndex>,
    last_applied: FxHashMap<NodeId, LogIndex>,
    /// Committed-prefix agreement has been verified up to here.
    matched_upto: LogIndex,
    /// First-seen `(term, replier)` per live `(node, index)` in the window.
    repliers: FxHashMap<(NodeId, LogIndex), (u64, Option<u32>)>,
    /// Per `(term, member)`: assignment depth at first observation, to
    /// absorb inherited over-`B` debt after elections.
    depth_baseline: FxHashMap<(u64, NodeId), usize>,
    /// Request keys already answered (invariant 6), with the answering
    /// node and its incarnation at the time of the reply. A second reply
    /// is legal only from the *same* node at a *strictly higher*
    /// incarnation — a restarted replier re-executing its log.
    replied: FxHashMap<u64, (NodeId, u64)>,
    /// Per-node snapshot-index high-water mark (invariant 8); reset on
    /// restart like the other watermarks.
    last_snap: FxHashMap<NodeId, LogIndex>,
    /// Highest cumulative chunk-ack offset per
    /// `(node, snapshot index, incarnation)` (invariant 9).
    ack_progress: FxHashMap<(NodeId, u64, u64), u64>,
    /// Transfers sealed by a `snapshot_installed` event (invariant 9): once
    /// installed, any further chunk ack for that snapshot must report it
    /// complete — a rewind past an install means `applied` regressed.
    installed: FxHashSet<(NodeId, u64, u64)>,
    /// Per-node restart count as last seen via [`simnet::Sim::restarts`];
    /// a change resets that node's monotonicity watermarks (a restarted
    /// node legitimately regresses to commit = applied = 0).
    incarnations: FxHashMap<NodeId, u64>,
    /// Next trace sequence number to consume.
    trace_cursor: u64,
}

impl InvariantChecker {
    /// A fresh checker (all watermarks empty).
    pub fn new() -> InvariantChecker {
        InvariantChecker::default()
    }

    /// Checks every invariant against the cluster's current state,
    /// returning the first violation found. Call between simulation steps;
    /// the checker assumes the cluster is not mutated behind its back
    /// except by simulation itself.
    pub fn check(&mut self, cl: &mut Cluster) -> Result<(), Violation> {
        if cl.opts().setup == Setup::Unrep {
            return Ok(());
        }
        let alive: Vec<NodeId> = cl
            .servers
            .iter()
            .copied()
            .filter(|&s| cl.sim.is_alive(s))
            .collect();

        // Crash–restart resets volatile state: forget the watermarks of any
        // node whose incarnation advanced since the last check.
        for &s in &cl.servers {
            let inc = cl.sim.restarts(s);
            let seen = self.incarnations.entry(s).or_insert(inc);
            if *seen != inc {
                *seen = inc;
                self.last_commit.remove(&s);
                self.last_applied.remove(&s);
                self.last_snap.remove(&s);
            }
        }

        self.check_apply_and_monotone(cl, &alive)?;
        self.check_log_matching(cl, &alive)?;
        self.check_replier_immutability(cl, &alive)?;
        self.check_bounded_queues(cl)?;
        self.check_snapshot_bounds(cl, &alive)?;
        self.check_trace_invariants(cl)?;
        self.check_flow_conservation(cl)?;
        Ok(())
    }

    fn check_apply_and_monotone(
        &mut self,
        cl: &Cluster,
        alive: &[NodeId],
    ) -> Result<(), Violation> {
        for &s in alive {
            let node = cl.sim.agent::<ServerAgent>(s).node();
            let commit = node.raft().commit_index();
            let applied = node.applied_index();
            if !predicates::apply_bound_ok(applied, commit) {
                return violation(
                    "applied_le_commit",
                    s,
                    format!("applied={applied} > commit={commit}"),
                );
            }
            let lc = self.last_commit.entry(s).or_insert(0);
            if !predicates::monotone_ok(*lc, commit) {
                return violation(
                    "commit_monotone",
                    s,
                    format!("commit regressed {} -> {commit}", *lc),
                );
            }
            *lc = commit;
            let la = self.last_applied.entry(s).or_insert(0);
            if !predicates::monotone_ok(*la, applied) {
                return violation(
                    "applied_monotone",
                    s,
                    format!("applied regressed {} -> {applied}", *la),
                );
            }
            *la = applied;
        }
        Ok(())
    }

    /// Invariant 3: committed-prefix agreement (incremental) plus Log
    /// Matching over the uncommitted tails of live-node pairs.
    fn check_log_matching(&mut self, cl: &Cluster, alive: &[NodeId]) -> Result<(), Violation> {
        if alive.len() < 2 {
            return Ok(());
        }
        let commit_of = |s: NodeId| cl.sim.agent::<ServerAgent>(s).node().raft().commit_index();
        let min_commit = alive.iter().map(|&s| commit_of(s)).min().unwrap_or(0);

        // Committed prefix: identical entries everywhere. Checked once per
        // index (the committed prefix is immutable), resuming where the
        // previous call stopped.
        let reference = alive[0];
        for idx in (self.matched_upto + 1)..=min_commit {
            let ref_log = cl.sim.agent::<ServerAgent>(reference).node().raft().log();
            let Some(want) = ref_log.get(idx) else {
                continue; // compacted on the reference; nothing to compare
            };
            let want = want.clone();
            for &s in &alive[1..] {
                let log = cl.sim.agent::<ServerAgent>(s).node().raft().log();
                let Some(got) = log.get(idx) else {
                    continue; // compacted here
                };
                if !predicates::committed_prefix_ok(got, &want) {
                    return violation(
                        "committed_prefix_agreement",
                        s,
                        format!(
                            "index {idx}: n{s} has (term {}, {:?}), n{reference} has \
                             (term {}, {:?})",
                            got.term, got.cmd.desc, want.term, want.cmd.desc
                        ),
                    );
                }
            }
        }
        self.matched_upto = min_commit;

        // Log Matching above the common commit point: same index + same
        // term ⇒ same entry. The tail is bounded by the in-flight window.
        for (i, &a) in alive.iter().enumerate() {
            for &b in &alive[i + 1..] {
                let log_a = cl.sim.agent::<ServerAgent>(a).node().raft().log();
                let log_b = cl.sim.agent::<ServerAgent>(b).node().raft().log();
                let hi = log_a.last_index().min(log_b.last_index());
                let lo = (min_commit + 1)
                    .max(log_a.first_index())
                    .max(log_b.first_index());
                for idx in lo..=hi {
                    let (Some(ea), Some(eb)) = (log_a.get(idx), log_b.get(idx)) else {
                        continue;
                    };
                    if !predicates::log_matching_ok(ea, eb) {
                        return violation(
                            "log_matching",
                            a,
                            format!(
                                "index {idx} term {}: n{a} has {:?}, n{b} has {:?}",
                                ea.term, ea.cmd.desc, eb.cmd.desc
                            ),
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// Invariant 4: a stamped replier never changes for a `(term, index)`.
    fn check_replier_immutability(
        &mut self,
        cl: &Cluster,
        alive: &[NodeId],
    ) -> Result<(), Violation> {
        let applied_floor = alive
            .iter()
            .map(|&s| cl.sim.agent::<ServerAgent>(s).node().applied_index())
            .min()
            .unwrap_or(0);
        let window_lo = applied_floor.saturating_sub(REPLIER_WINDOW_SLACK).max(1);

        for &s in alive {
            let log = cl.sim.agent::<ServerAgent>(s).node().raft().log();
            let lo = window_lo.max(log.first_index());
            for idx in lo..=log.last_index() {
                let Some(e) = log.get(idx) else { continue };
                let cur = (e.term, e.cmd.desc.replier);
                let seen = self.repliers.get(&(s, idx)).copied();
                match predicates::replier_step(seen, cur, Mutation::None) {
                    ReplierStep::Track => {
                        self.repliers.insert((s, idx), cur);
                    }
                    ReplierStep::Keep => {}
                    ReplierStep::Violation => {
                        let (term, old) = seen.expect("violations need a prior stamp");
                        return violation(
                            "replier_immutable",
                            s,
                            format!(
                                "index {idx} term {term}: replier changed \
                                 {old:?} -> {:?}",
                                cur.1
                            ),
                        );
                    }
                }
            }
        }
        // Entries everyone applied long ago can't affect behaviour; drop
        // them so the map tracks the window, not the whole history.
        self.repliers.retain(|&(_, idx), _| idx >= window_lo);
        Ok(())
    }

    /// Invariant 5: leader-side replier queues stay within the bound,
    /// modulo inherited (immutable) pre-election debt that may only drain.
    fn check_bounded_queues(&mut self, cl: &Cluster) -> Result<(), Violation> {
        let Some(leader) = cl.leader() else {
            return Ok(());
        };
        let bound = cl.opts().bound;
        let node = cl.sim.agent::<ServerAgent>(leader).node();
        let term = node.raft().term();
        for &m in &cl.servers {
            let depth = node.queue_depth(m);
            let baseline = *self.depth_baseline.entry((term, m)).or_insert(depth);
            if !predicates::queue_depth_ok(depth, bound, baseline) {
                return violation(
                    "bounded_queue",
                    leader,
                    format!(
                        "member n{m} depth {depth} exceeds bound {bound} \
                         (term {term} inherited baseline {baseline})"
                    ),
                );
            }
        }
        Ok(())
    }

    /// Invariant 8: compaction never outruns execution. The log's
    /// snapshot boundary stays at or below `applied` (applied ≤ commit is
    /// invariant 1, so the full chain `snapshot ≤ applied ≤ commit`
    /// holds), and the snapshot watermark is monotone per incarnation.
    fn check_snapshot_bounds(&mut self, cl: &Cluster, alive: &[NodeId]) -> Result<(), Violation> {
        for &s in alive {
            let node = cl.sim.agent::<ServerAgent>(s).node();
            let applied = node.applied_index();
            let log_snap = node.raft().log().snapshot_index();
            if !predicates::snapshot_bound_ok(log_snap, applied) {
                return violation(
                    "snapshot_le_applied",
                    s,
                    format!("log snapshot boundary {log_snap} > applied={applied}"),
                );
            }
            // The node-level snapshot (the blob it would serve to a lagging
            // peer) must also describe a prefix it has actually executed.
            let hc_snap = node.snapshot_index();
            if !predicates::snapshot_bound_ok(hc_snap, applied) {
                return violation(
                    "snapshot_le_applied",
                    s,
                    format!("held snapshot at {hc_snap} > applied={applied}"),
                );
            }
            let ls = self.last_snap.entry(s).or_insert(0);
            if !predicates::monotone_ok(*ls, log_snap) {
                return violation(
                    "snapshot_monotone",
                    s,
                    format!("snapshot boundary regressed {} -> {log_snap}", *ls),
                );
            }
            *ls = log_snap;
        }
        Ok(())
    }

    /// Invariants 6 and 9, one incremental pass over the protocol trace
    /// (they share the cursor, so both must be checked in the same scan).
    ///
    /// **6 — exactly-one reply**: no request id is replied to twice —
    /// except by the same node at a strictly higher incarnation (a
    /// restarted replier re-executes its log and may legitimately
    /// re-answer; any *other* duplicate still fires). A reply is
    /// attributed to the incarnation live at its timestamp via
    /// [`simnet::Sim::restart_times`] — exact even when a restart's own
    /// trace marker has been evicted from the bounded ring by a
    /// re-execution burst in the same check window.
    ///
    /// **9 — transfer-resume monotonicity**: a node's cumulative
    /// `chunk_acked` offset for one snapshot never regresses within an
    /// incarnation, except a pre-install rewind to exactly 0 (from-scratch
    /// failover to a competing serving peer). A partial rewind means the
    /// protocol lost buffered chunks; a post-install rewind means the
    /// `applied` cursor itself regressed.
    fn check_trace_invariants(&mut self, cl: &Cluster) -> Result<(), Violation> {
        // Borrow-only incremental scan: the checker runs every simulated
        // millisecond, so it visits only events newer than its cursor,
        // in place in the ring — no per-tick clone of the event window.
        let replied = &mut self.replied;
        let acks = &mut self.ack_progress;
        let installed = &mut self.installed;
        let mut cursor = self.trace_cursor;
        let mut found: Option<Violation> = None;
        cl.tracer().for_each_since(cursor, |e| {
            cursor = e.seq + 1;
            if found.is_some()
                || (e.kind != "reply" && e.kind != "chunk_acked" && e.kind != "snapshot_installed")
            {
                return;
            }
            let inc = if (e.node as usize) < cl.sim.num_nodes() {
                cl.sim
                    .restart_times(e.node)
                    .iter()
                    .filter(|&&t| t <= e.at)
                    .count() as u64
            } else {
                0
            };
            if e.kind == "snapshot_installed" {
                installed.insert((e.node, e.key, inc));
                return;
            }
            if e.kind == "chunk_acked" {
                // Lazily recorded as (index, next, _); `key` is the index.
                let simnet::Detail::Lazy {
                    args: (_, next, _), ..
                } = e.detail
                else {
                    return;
                };
                let high = acks.entry((e.node, e.key, inc)).or_insert(next);
                let sealed = installed.contains(&(e.node, e.key, inc));
                if !predicates::transfer_resume_ok(*high, next, sealed) {
                    found = Some(Violation {
                        invariant: "transfer_resume_monotone",
                        node: Some(e.node),
                        detail: format!(
                            "snapshot {} incarnation {inc}: cumulative ack \
                             regressed {} -> {next}",
                            e.key, *high
                        ),
                    });
                }
                *high = next;
                return;
            }
            match replied.get(&e.key) {
                None => {
                    replied.insert(e.key, (e.node, inc));
                }
                Some(&(node0, inc0))
                    if predicates::duplicate_reply_ok(node0, inc0, e.node, inc) =>
                {
                    replied.insert(e.key, (e.node, inc));
                }
                Some(&(node0, inc0)) => {
                    found = Some(Violation {
                        invariant: "exactly_one_reply",
                        node: Some(e.node),
                        detail: format!(
                            "request {} answered twice ({}); first by n{node0} \
                             incarnation {inc0}, again by n{} incarnation {inc}",
                            e.key, e.detail, e.node
                        ),
                    });
                }
            }
        });
        self.trace_cursor = cursor;
        match found {
            Some(v) => Err(v),
            None => Ok(()),
        }
    }

    /// Invariant 7: flow-control slot conservation at the middlebox.
    fn check_flow_conservation(&mut self, cl: &mut Cluster) -> Result<(), Violation> {
        let Some(idx) = cl.fc_prog_index() else {
            return Ok(());
        };
        let fc = &cl.sim.switch_program_mut::<FcProgram>(idx).fc;
        let s = fc.stats();
        if !predicates::flow_conservation_ok(
            s.admitted,
            s.feedback,
            s.spurious_feedback,
            s.reclaimed,
            fc.in_flight() as u64,
        ) {
            let outstanding = s.admitted as i128
                - (s.feedback as i128 - s.spurious_feedback as i128)
                - s.reclaimed as i128;
            return violation(
                "flow_conservation",
                None,
                format!(
                    "admitted {} - (feedback {} - spurious {}) - reclaimed {} = \
                     {outstanding} != in_flight {}",
                    s.admitted,
                    s.feedback,
                    s.spurious_feedback,
                    s.reclaimed,
                    fc.in_flight()
                ),
            );
        }
        Ok(())
    }
}
