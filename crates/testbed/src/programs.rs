//! Adapters mounting the HovercRaft dataplane programs (flow control and
//! the ++ aggregator) onto the simulated switch pipeline.

use std::fmt;

use hovercraft::{Aggregator, FcDecision, FlowControl, WireMsg};
use simnet::{Addr, Packet, SimTime, SwitchEmit, SwitchProgram, Tracer, Verdict};

use crate::setup::addrs;

// Deferred-detail renderers for the per-packet dataplane events; the
// switch programs run on every admitted request, so their trace records
// must not format (or allocate) unless the trace is actually displayed.
fn d_in_flight(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    write!(f, "in_flight={a}")
}
fn d_reclaim(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "slots={a} in_flight={b}")
}
fn d_client(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    write!(f, "client=n{a}")
}
fn d_agg_commit(f: &mut fmt::Formatter<'_>, a: u64, b: u64, c: u64) -> fmt::Result {
    write!(f, "term={a} commit={b} dst=n{c}")
}
fn d_dst(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    write!(f, "dst=n{a}")
}
fn d_term_dst(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "term={a} dst=n{b}")
}

/// The flow-control middlebox as a switch pipeline stage. Must be
/// registered *before* the aggregator so admitted requests continue down
/// the pipeline.
pub struct FcProgram {
    /// The middlebox state machine.
    pub fc: FlowControl,
    tracer: Option<Tracer>,
}

impl FcProgram {
    /// A middlebox admitting `cap` in-flight requests into the group.
    pub fn new(cap: u32) -> FcProgram {
        FcProgram {
            fc: FlowControl::new(addrs::GROUP.0, cap),
            tracer: None,
        }
    }

    /// Records admission decisions into `tracer` (as `sw` events stamped
    /// with the VIP address).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    fn trace(
        &self,
        now: SimTime,
        kind: &'static str,
        key: u64,
        render: simnet::DetailFn,
        a: u64,
        b: u64,
    ) {
        if let Some(t) = &self.tracer {
            t.record_lazy(now, addrs::VIP.0, kind, key, render, a, b, 0);
        }
    }
}

impl SwitchProgram<WireMsg> for FcProgram {
    fn process(
        &mut self,
        mut pkt: Packet<WireMsg>,
        now: SimTime,
        out: &mut SwitchEmit<WireMsg>,
    ) -> Verdict<WireMsg> {
        if pkt.dst != addrs::VIP {
            return Verdict::Forward(pkt);
        }
        let reclaimed_before = self.fc.stats().reclaimed;
        let decision = self.fc.on_packet(&pkt.payload, now.as_nanos());
        let reclaimed = self.fc.stats().reclaimed - reclaimed_before;
        if reclaimed > 0 {
            self.trace(
                now,
                "fc_reclaim",
                reclaimed,
                d_reclaim,
                reclaimed,
                self.fc.in_flight() as u64,
            );
        }
        match decision {
            FcDecision::Admit { rewritten_dst } => {
                if let WireMsg::Request { id, .. } = &pkt.payload {
                    self.trace(
                        now,
                        "fc_admit",
                        hovercraft::req_key(*id),
                        d_in_flight,
                        self.fc.in_flight() as u64,
                        0,
                    );
                }
                pkt.dst = Addr(rewritten_dst);
                Verdict::Forward(pkt)
            }
            FcDecision::Nack { client, id } => {
                self.trace(
                    now,
                    "fc_nack",
                    hovercraft::req_key(id),
                    d_client,
                    client as u64,
                    0,
                );
                let msg = WireMsg::Nack { id };
                let size = msg.wire_size();
                out.emit(addrs::VIP, Addr::node(client), size, msg);
                Verdict::Consume
            }
            FcDecision::Absorbed => {
                self.trace(
                    now,
                    "fc_feedback",
                    0,
                    d_in_flight,
                    self.fc.in_flight() as u64,
                    0,
                );
                Verdict::Consume
            }
            FcDecision::Pass => Verdict::Consume,
        }
    }

    fn reset(&mut self) {
        self.fc.reset();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The HovercRaft++ aggregator as a switch pipeline stage.
pub struct AggProgram {
    /// The aggregation state machine (soft state only).
    pub agg: Aggregator,
    /// Fail-stop flag: a dead device blackholes everything addressed to it
    /// (used by failure-injection tests; §5's aggregator-failure scenario).
    pub failed: bool,
    tracer: Option<Tracer>,
}

impl AggProgram {
    /// An aggregator for the given server group.
    pub fn new(members: Vec<u32>) -> AggProgram {
        AggProgram {
            agg: Aggregator::new(members),
            failed: false,
            tracer: None,
        }
    }

    /// Records aggregator fan-out and AGG_COMMIT emissions into `tracer`
    /// (as `sw` events stamped with the AGG address).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }
}

impl SwitchProgram<WireMsg> for AggProgram {
    fn process(
        &mut self,
        pkt: Packet<WireMsg>,
        now: SimTime,
        out: &mut SwitchEmit<WireMsg>,
    ) -> Verdict<WireMsg> {
        if pkt.dst != addrs::AGG {
            return Verdict::Forward(pkt);
        }
        if self.failed {
            return Verdict::Consume; // dead device: blackhole
        }
        for (dst, msg) in self.agg.on_packet(pkt.src.0, pkt.payload) {
            if let Some(t) = &self.tracer {
                let d = dst as u64;
                let (kind, key, render, a, b, c): (_, _, simnet::DetailFn, _, _, _) = match &msg {
                    WireMsg::AggCommit { term, commit, .. } => {
                        ("agg_commit", *commit, d_agg_commit, *term, *commit, d)
                    }
                    WireMsg::Raft(_) => ("agg_fanout", 0, d_dst, d, 0, 0),
                    WireMsg::VoteProbeRep { term } => {
                        ("agg_probe_rep", *term, d_term_dst, *term, d, 0)
                    }
                    _ => ("agg_emit", 0, d_dst, d, 0, 0),
                };
                t.record_lazy(now, addrs::AGG.0, kind, key, render, a, b, c);
            }
            let size = msg.wire_size();
            // Emitted with the aggregator's own source address: followers
            // use it to route successful replies back through the device.
            out.emit(addrs::AGG, Addr::node(dst), size, msg);
        }
        Verdict::Consume
    }

    fn reset(&mut self) {
        self.agg.flush();
        self.failed = false;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
