//! Adapters mounting the HovercRaft dataplane programs (flow control and
//! the ++ aggregator) onto the simulated switch pipeline.

use hovercraft::{Aggregator, FcDecision, FlowControl, WireMsg};
use simnet::{Addr, Packet, SimTime, SwitchEmit, SwitchProgram, Tracer, Verdict};

use crate::setup::addrs;

/// The flow-control middlebox as a switch pipeline stage. Must be
/// registered *before* the aggregator so admitted requests continue down
/// the pipeline.
pub struct FcProgram {
    /// The middlebox state machine.
    pub fc: FlowControl,
    tracer: Option<Tracer>,
}

impl FcProgram {
    /// A middlebox admitting `cap` in-flight requests into the group.
    pub fn new(cap: u32) -> FcProgram {
        FcProgram {
            fc: FlowControl::new(addrs::GROUP.0, cap),
            tracer: None,
        }
    }

    /// Records admission decisions into `tracer` (as `sw` events stamped
    /// with the VIP address).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    fn trace(&self, now: SimTime, kind: &'static str, key: u64, detail: String) {
        if let Some(t) = &self.tracer {
            t.record(now, addrs::VIP.0, kind, key, detail);
        }
    }
}

impl SwitchProgram<WireMsg> for FcProgram {
    fn process(
        &mut self,
        mut pkt: Packet<WireMsg>,
        now: SimTime,
        out: &mut SwitchEmit<WireMsg>,
    ) -> Verdict<WireMsg> {
        if pkt.dst != addrs::VIP {
            return Verdict::Forward(pkt);
        }
        let reclaimed_before = self.fc.stats().reclaimed;
        let decision = self.fc.on_packet(&pkt.payload, now.as_nanos());
        let reclaimed = self.fc.stats().reclaimed - reclaimed_before;
        if reclaimed > 0 {
            self.trace(
                now,
                "fc_reclaim",
                reclaimed,
                format!("slots={reclaimed} in_flight={}", self.fc.in_flight()),
            );
        }
        match decision {
            FcDecision::Admit { rewritten_dst } => {
                if let WireMsg::Request { id, .. } = &pkt.payload {
                    self.trace(
                        now,
                        "fc_admit",
                        hovercraft::req_key(*id),
                        format!("in_flight={}", self.fc.in_flight()),
                    );
                }
                pkt.dst = Addr(rewritten_dst);
                Verdict::Forward(pkt)
            }
            FcDecision::Nack { client, id } => {
                self.trace(
                    now,
                    "fc_nack",
                    hovercraft::req_key(id),
                    format!("client=n{client}"),
                );
                let msg = WireMsg::Nack { id };
                let size = msg.wire_size();
                out.emit(addrs::VIP, Addr::node(client), size, msg);
                Verdict::Consume
            }
            FcDecision::Absorbed => {
                self.trace(
                    now,
                    "fc_feedback",
                    0,
                    format!("in_flight={}", self.fc.in_flight()),
                );
                Verdict::Consume
            }
            FcDecision::Pass => Verdict::Consume,
        }
    }

    fn reset(&mut self) {
        self.fc.reset();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The HovercRaft++ aggregator as a switch pipeline stage.
pub struct AggProgram {
    /// The aggregation state machine (soft state only).
    pub agg: Aggregator,
    /// Fail-stop flag: a dead device blackholes everything addressed to it
    /// (used by failure-injection tests; §5's aggregator-failure scenario).
    pub failed: bool,
    tracer: Option<Tracer>,
}

impl AggProgram {
    /// An aggregator for the given server group.
    pub fn new(members: Vec<u32>) -> AggProgram {
        AggProgram {
            agg: Aggregator::new(members),
            failed: false,
            tracer: None,
        }
    }

    /// Records aggregator fan-out and AGG_COMMIT emissions into `tracer`
    /// (as `sw` events stamped with the AGG address).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }
}

impl SwitchProgram<WireMsg> for AggProgram {
    fn process(
        &mut self,
        pkt: Packet<WireMsg>,
        now: SimTime,
        out: &mut SwitchEmit<WireMsg>,
    ) -> Verdict<WireMsg> {
        if pkt.dst != addrs::AGG {
            return Verdict::Forward(pkt);
        }
        if self.failed {
            return Verdict::Consume; // dead device: blackhole
        }
        for (dst, msg) in self.agg.on_packet(pkt.src.0, pkt.payload) {
            if let Some(t) = &self.tracer {
                let (kind, key, detail) = match &msg {
                    WireMsg::AggCommit { term, commit, .. } => (
                        "agg_commit",
                        *commit,
                        format!("term={term} commit={commit} dst=n{dst}"),
                    ),
                    WireMsg::Raft(_) => ("agg_fanout", 0, format!("dst=n{dst}")),
                    WireMsg::VoteProbeRep { term } => {
                        ("agg_probe_rep", *term, format!("term={term} dst=n{dst}"))
                    }
                    _ => ("agg_emit", 0, format!("dst=n{dst}")),
                };
                t.record(now, addrs::AGG.0, kind, key, detail);
            }
            let size = msg.wire_size();
            // Emitted with the aggregator's own source address: followers
            // use it to route successful replies back through the device.
            out.emit(addrs::AGG, Addr::node(dst), size, msg);
        }
        Verdict::Consume
    }

    fn reset(&mut self) {
        self.agg.flush();
        self.failed = false;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
