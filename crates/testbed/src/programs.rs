//! Adapters mounting the HovercRaft dataplane programs (flow control and
//! the ++ aggregator) onto the simulated switch pipeline.

use hovercraft::{Aggregator, FcDecision, FlowControl, WireMsg};
use simnet::{Addr, Packet, SimTime, SwitchEmit, SwitchProgram, Verdict};

use crate::setup::addrs;

/// The flow-control middlebox as a switch pipeline stage. Must be
/// registered *before* the aggregator so admitted requests continue down
/// the pipeline.
pub struct FcProgram {
    /// The middlebox state machine.
    pub fc: FlowControl,
}

impl FcProgram {
    /// A middlebox admitting `cap` in-flight requests into the group.
    pub fn new(cap: u32) -> FcProgram {
        FcProgram {
            fc: FlowControl::new(addrs::GROUP.0, cap),
        }
    }
}

impl SwitchProgram<WireMsg> for FcProgram {
    fn process(
        &mut self,
        mut pkt: Packet<WireMsg>,
        _now: SimTime,
        out: &mut SwitchEmit<WireMsg>,
    ) -> Verdict<WireMsg> {
        if pkt.dst != addrs::VIP {
            return Verdict::Forward(pkt);
        }
        match self.fc.on_packet(&pkt.payload) {
            FcDecision::Admit { rewritten_dst } => {
                pkt.dst = Addr(rewritten_dst);
                Verdict::Forward(pkt)
            }
            FcDecision::Nack { client, id } => {
                let msg = WireMsg::Nack { id };
                let size = msg.wire_size();
                out.emit(addrs::VIP, Addr::node(client), size, msg);
                Verdict::Consume
            }
            FcDecision::Absorbed | FcDecision::Pass => Verdict::Consume,
        }
    }

    fn reset(&mut self) {
        self.fc.reset();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The HovercRaft++ aggregator as a switch pipeline stage.
pub struct AggProgram {
    /// The aggregation state machine (soft state only).
    pub agg: Aggregator,
    /// Fail-stop flag: a dead device blackholes everything addressed to it
    /// (used by failure-injection tests; §5's aggregator-failure scenario).
    pub failed: bool,
}

impl AggProgram {
    /// An aggregator for the given server group.
    pub fn new(members: Vec<u32>) -> AggProgram {
        AggProgram {
            agg: Aggregator::new(members),
            failed: false,
        }
    }
}

impl SwitchProgram<WireMsg> for AggProgram {
    fn process(
        &mut self,
        pkt: Packet<WireMsg>,
        _now: SimTime,
        out: &mut SwitchEmit<WireMsg>,
    ) -> Verdict<WireMsg> {
        if pkt.dst != addrs::AGG {
            return Verdict::Forward(pkt);
        }
        if self.failed {
            return Verdict::Consume; // dead device: blackhole
        }
        for (dst, msg) in self.agg.on_packet(pkt.src.0, pkt.payload) {
            let size = msg.wire_size();
            // Emitted with the aggregator's own source address: followers
            // use it to route successful replies back through the device.
            out.emit(addrs::AGG, Addr::node(dst), size, msg);
        }
        Verdict::Consume
    }

    fn reset(&mut self) {
        self.agg.flush();
        self.failed = false;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
