//! Trace digests: a compact fingerprint of a whole protocol run.
//!
//! The simulation is deterministic, so the full stream of trace events —
//! including the ones the bounded ring evicts — is a pure function of
//! `(ClusterOpts, seed)`. [`TraceDigest`] folds that stream into one 64-bit
//! FNV-1a value by harvesting the ring incrementally, which lets tests and
//! benches assert *bit-exact* protocol behaviour across refactors and
//! optimizations without retaining gigabytes of events.
//!
//! The digest covers each event's structured identity — virtual timestamp,
//! emitting node, kind tag, and numeric key — and deliberately *not* the
//! human-readable detail text: detail is rendered lazily for display only,
//! and hashing it would force the rendering the hot path exists to avoid.

use hovercraft::PolicyKind;
use simnet::{FaultPlan, FaultPlanConfig, SimDur, SimTime, Tracer};

use crate::client::RetryPolicy;
use crate::cluster::{Cluster, ClusterOpts};
use crate::setup::Setup;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a digest over the structured trace stream.
#[derive(Clone, Copy, Debug)]
pub struct TraceDigest {
    hash: u64,
    count: u64,
    cursor: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        TraceDigest {
            hash: FNV_OFFSET,
            count: 0,
            cursor: 0,
        }
    }
}

fn fnv_u64(mut hash: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl TraceDigest {
    /// A fresh digest (cursor at the start of the stream).
    pub fn new() -> TraceDigest {
        TraceDigest::default()
    }

    /// Folds every event recorded since the last call into the digest.
    /// Call at least once per ring-capacity worth of events, or evicted
    /// events are silently skipped (the final count exposes that: compare
    /// against [`Tracer::total_recorded`]).
    pub fn absorb(&mut self, tracer: &Tracer) {
        let mut hash = self.hash;
        let mut count = self.count;
        let mut cursor = self.cursor;
        tracer.for_each_since(self.cursor, |e| {
            hash = fnv_u64(hash, e.seq);
            hash = fnv_u64(hash, e.at.as_nanos());
            hash = fnv_u64(hash, e.node as u64);
            hash = fnv_bytes(hash, e.kind.as_bytes());
            hash = fnv_u64(hash, e.key);
            count += 1;
            cursor = e.seq + 1;
        });
        self.hash = hash;
        self.count = count;
        self.cursor = cursor;
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.hash
    }

    /// Events folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Outcome of a canonical digest run: the trace fingerprint plus the raw
/// volume counters a determinism guard pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DigestReport {
    /// FNV-1a over the structured event stream.
    pub digest: u64,
    /// Events folded into the digest (== events recorded when harvesting
    /// kept up with the ring).
    pub events: u64,
    /// Total events ever recorded by the tracer.
    pub total_recorded: u64,
    /// Engine events dispatched over the whole run.
    pub sim_events: u64,
}

/// The canonical chaos point digested by the determinism guard and the
/// `sim_throughput` bench: 5-way HovercRaft/JBSQ at 25 kRPS with client
/// retries, faulted by the seeded [`FaultPlan`] the chaos suite uses.
pub fn chaos_digest_opts(seed: u64) -> ClusterOpts {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 5, 25_000.0);
    o.warmup = SimDur::millis(50);
    o.measure = SimDur::millis(300);
    o.bound = 64;
    o.retry = Some(RetryPolicy::default());
    o.seed = seed;
    o
}

/// Runs the canonical chaos point for `seed` under invariant checking,
/// harvesting the digest every simulated millisecond. Deterministic:
/// repeated calls (in any process) return identical reports.
pub fn digest_chaos_run(seed: u64) -> DigestReport {
    let opts = chaos_digest_opts(seed);
    let mut cluster = Cluster::build(opts);
    cluster.settle();
    let plan = FaultPlan::generate(&FaultPlanConfig {
        nodes: cluster.servers.clone(),
        window_start: SimTime::ZERO + SimDur::millis(210),
        window_end: SimTime::ZERO + SimDur::millis(460),
        episodes: 3,
        seed,
    });
    cluster.sim.apply_fault_plan(&plan);
    let end = cluster.opts().load_end() + SimDur::millis(220);
    let mut digest = TraceDigest::new();
    while cluster.sim.now() < end {
        let next = (cluster.sim.now() + SimDur::millis(1)).min(end);
        cluster.run_until_checked(next);
        digest.absorb(cluster.tracer());
    }
    digest.absorb(cluster.tracer());
    DigestReport {
        digest: digest.value(),
        events: digest.count(),
        total_recorded: cluster.tracer().total_recorded(),
        sim_events: cluster.sim.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_tracks_events_and_order() {
        let t = Tracer::new(64);
        let mut d = TraceDigest::new();
        d.absorb(&t);
        let empty = d.value();
        t.record_kv(SimTime::ZERO, 1, "a", 7);
        d.absorb(&t);
        assert_ne!(d.value(), empty);
        assert_eq!(d.count(), 1);

        // Same events, same digest; different order, different digest.
        let run = |kinds: [&'static str; 2]| {
            let t = Tracer::new(64);
            for k in kinds {
                t.record_kv(SimTime::ZERO, 1, k, 0);
            }
            let mut d = TraceDigest::new();
            d.absorb(&t);
            d.value()
        };
        assert_eq!(run(["x", "y"]), run(["x", "y"]));
        assert_ne!(run(["x", "y"]), run(["y", "x"]));
    }

    #[test]
    fn incremental_absorb_equals_one_shot() {
        let t = Tracer::new(64);
        let mut inc = TraceDigest::new();
        for i in 0..10u64 {
            t.record_kv(SimTime::ZERO, 2, "ev", i);
            if i % 3 == 0 {
                inc.absorb(&t);
            }
        }
        inc.absorb(&t);
        let mut one = TraceDigest::new();
        one.absorb(&t);
        assert_eq!(inc.value(), one.value());
        assert_eq!(inc.count(), one.count());
    }
}
