//! Server agents: the replicated HovercRaft node and the unreplicated
//! baseline, adapted onto the simulator's two-thread node model.

use std::any::Any;

use hovercraft::{HcConfig, HcNode, Output, Service, WireMsg};
use simnet::{Addr, Agent, Ctx, Packet, SimDur, TimerId, Tracer};

/// Timer kind for the periodic protocol tick.
const TICK: u64 = 1;

/// How often the network thread runs protocol maintenance (Raft ticks,
/// GC, recovery retries). A quarter of the Raft heartbeat interval keeps
/// heartbeat jitter well under election timeouts.
const TICK_INTERVAL: SimDur = SimDur::micros(250);

/// CPU cost per payload byte serialized into an AppendEntries message.
/// VanillaRaft pays this once per follower per request (the leader copies
/// the client payload through the log into per-follower consensus
/// messages); HovercRaft ships fixed-size metadata and pays nothing —
/// the request-size sensitivity of Figure 8 (§3.2).
const AE_COPY_PER_BYTE_DECINS: u64 = 14; // 1.4 ns/byte

/// A replicated server: a [`HcNode`] driven by the simulated network
/// thread, with state-machine execution charged to the application thread.
pub struct ServerAgent {
    node: HcNode<Box<dyn Service>>,
    tracer: Option<Tracer>,
    /// Reusable output scratch: entry points append into this and `run`
    /// drains it, so steady-state handling never allocates for outputs.
    outs: Vec<Output>,
}

impl ServerAgent {
    /// Wraps a service under the given HovercRaft configuration.
    pub fn new(cfg: HcConfig, service: Box<dyn Service>) -> ServerAgent {
        ServerAgent {
            node: HcNode::new(cfg, service, 0),
            tracer: None,
            outs: Vec::new(),
        }
    }

    /// Wraps an already-constructed node — the crash–restart rejoin path,
    /// where the node is rebuilt with [`HcNode::restore`] from the crashed
    /// agent's durable Raft state.
    pub fn from_node(node: HcNode<Box<dyn Service>>) -> ServerAgent {
        ServerAgent {
            node,
            tracer: None,
            outs: Vec::new(),
        }
    }

    /// Forwards the node's protocol events into `tracer`, stamped with
    /// virtual time, after every entry point.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Drains buffered protocol events into the tracer (no-op untraced).
    /// Events are recorded with *deferred* details — a renderer pointer
    /// plus raw words — so tracing a full-load run costs word moves, not a
    /// `format!` per event.
    fn flush_events(&mut self, ctx: &Ctx<'_, WireMsg>) {
        if let Some(t) = &self.tracer {
            let me = self.node.id();
            for ev in self.node.drain_events() {
                let (render, a, b, c) = ev.detail_parts();
                t.record_lazy(ctx.now(), me, ev.kind(), ev.key(), render, a, b, c);
            }
        }
    }

    /// The protocol node (for result harvesting).
    pub fn node(&self) -> &HcNode<Box<dyn Service>> {
        &self.node
    }

    /// Mutable protocol node access (e.g. dataset preloading through the
    /// service).
    pub fn node_mut(&mut self) -> &mut HcNode<Box<dyn Service>> {
        &mut self.node
    }

    /// Carries out the outputs accumulated in `self.outs`, draining the
    /// buffer in place (capacity is retained for the next entry point).
    fn run(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        for o in self.outs.drain(..) {
            match o {
                Output::Send { dst, msg } => {
                    let size = msg.wire_size();
                    // Consensus traffic always belongs to the network
                    // thread (§6): when an application-thread completion
                    // unblocks an announcement, the resulting
                    // AppendEntries are picked up and transmitted by the
                    // network thread, not the app thread. Client-visible
                    // responses and FEEDBACK stay on the thread that
                    // produced them (each thread has its own TX queue).
                    match &msg {
                        WireMsg::Raft(m) => {
                            // Serialization cost of inline payloads (zero
                            // for HovercRaft's metadata-only entries).
                            if let raft::Message::AppendEntries { entries, .. } = m {
                                let inline: u64 = entries
                                    .iter()
                                    .filter_map(|e| e.cmd.body.as_ref())
                                    .map(|b| b.len() as u64)
                                    .sum();
                                if inline > 0 {
                                    ctx.burn(
                                        SimDur::nanos(inline * AE_COPY_PER_BYTE_DECINS / 10),
                                        simnet::ThreadClass::Net,
                                    );
                                }
                            }
                            ctx.send_from(Addr(dst), size, msg, simnet::ThreadClass::Net);
                        }
                        WireMsg::RecoveryReq { .. }
                        | WireMsg::RecoveryRep { .. }
                        | WireMsg::SnapChunk { .. }
                        | WireMsg::SnapAck { .. }
                        | WireMsg::VoteProbe { .. } => {
                            ctx.send_from(Addr(dst), size, msg, simnet::ThreadClass::Net);
                        }
                        _ => ctx.send(Addr(dst), size, msg),
                    }
                }
                Output::Execute { index, cost_ns } => {
                    ctx.exec_app(SimDur::nanos(cost_ns), index);
                }
            }
        }
    }
}

impl Agent<WireMsg> for ServerAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        ctx.set_timer(TICK_INTERVAL, TICK);
    }

    fn on_packet(&mut self, pkt: Packet<WireMsg>, ctx: &mut Ctx<'_, WireMsg>) {
        let mut outs = std::mem::take(&mut self.outs);
        self.node.on_message(
            pkt.src.0,
            pkt.payload,
            ctx.now().as_nanos(),
            &mut outs,
            ctx.arena(),
        );
        self.outs = outs;
        self.run(ctx);
        self.flush_events(ctx);
    }

    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<'_, WireMsg>) {
        debug_assert_eq!(kind, TICK);
        let mut outs = std::mem::take(&mut self.outs);
        self.node.tick(ctx.now().as_nanos(), &mut outs, ctx.arena());
        self.outs = outs;
        self.run(ctx);
        self.flush_events(ctx);
        ctx.set_timer(TICK_INTERVAL, TICK);
    }

    fn on_app_done(&mut self, token: u64, ctx: &mut Ctx<'_, WireMsg>) {
        let mut outs = std::mem::take(&mut self.outs);
        self.node
            .on_exec_done(token, ctx.now().as_nanos(), &mut outs, ctx.arena());
        self.outs = outs;
        self.run(ctx);
        self.flush_events(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The unreplicated baseline: a plain R2P2 server with no fault tolerance.
/// Requests are executed on the application thread and answered directly —
/// the `UnRep` setup of §7.
pub struct UnrepAgent {
    service: Box<dyn Service>,
    /// Replies pending app-thread completion, keyed by a rolling token.
    pending: fxhash::FxHashMap<u64, (Addr, r2p2::ReqId, bytes::Bytes)>,
    next_token: u64,
    /// Requests served.
    pub served: u64,
}

impl UnrepAgent {
    /// Wraps a service.
    pub fn new(service: Box<dyn Service>) -> UnrepAgent {
        UnrepAgent {
            service,
            pending: fxhash::FxHashMap::default(),
            next_token: 0,
            served: 0,
        }
    }

    /// The wrapped service.
    pub fn service_mut(&mut self) -> &mut Box<dyn Service> {
        &mut self.service
    }
}

impl Agent<WireMsg> for UnrepAgent {
    fn on_packet(&mut self, pkt: Packet<WireMsg>, ctx: &mut Ctx<'_, WireMsg>) {
        if let WireMsg::Request { id, kind, body } = pkt.payload {
            let r = self
                .service
                .execute(&body, kind.is_read_only(), ctx.arena());
            let token = self.next_token;
            self.next_token += 1;
            self.pending
                .insert(token, (Addr::node(id.src_ip), id, r.reply));
            ctx.exec_app(SimDur::nanos(r.cost_ns), token);
        }
    }

    fn on_app_done(&mut self, token: u64, ctx: &mut Ctx<'_, WireMsg>) {
        if let Some((client, id, reply)) = self.pending.remove(&token) {
            self.served += 1;
            let msg = WireMsg::Response { id, body: reply };
            let size = msg.wire_size();
            ctx.send(client, size, msg);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
