//! One-shot experiment execution and result summarization.

use lancet::LatencyRecorder;
use simnet::Counters;

use crate::cluster::{Cluster, ClusterOpts};

/// Summary of one experiment point.
#[derive(Clone, Debug)]
pub struct ExpResult {
    /// Offered load, RPS.
    pub offered_rps: f64,
    /// Measured goodput (responses/second over the measured window).
    pub achieved_rps: f64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// Max observed latency, ns.
    pub max_ns: u64,
    /// Requests sent in the measured window.
    pub sent: u64,
    /// Responses received for measured requests.
    pub responses: u64,
    /// Flow-control NACKs for measured requests.
    pub nacks: u64,
    /// The leader during/after the run (replicated setups).
    pub leader: Option<u32>,
    /// Steady-state traffic counters per server (measured window only).
    pub server_counters: Vec<Counters>,
}

impl ExpResult {
    /// Convenience: p99 in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1_000.0
    }

    /// True if the point keeps up with its offered load (within 2 %) and
    /// meets the latency SLO — the "under SLO" criterion of the paper's
    /// throughput plots.
    pub fn meets_slo(&self, slo_ns: u64) -> bool {
        self.p99_ns <= slo_ns && self.achieved_rps >= self.offered_rps * 0.98
    }
}

/// Builds, runs, and summarizes one experiment point.
pub fn run_experiment(opts: ClusterOpts) -> ExpResult {
    let mut cluster = Cluster::build(opts.clone());
    cluster.run_to_completion();
    summarize(&mut cluster)
}

/// [`run_experiment`] with the cross-node invariant checker evaluated
/// after every simulation step: panics with a replay bundle on the first
/// protocol invariant violation. Integration tests use this; performance
/// sweeps use the unchecked variant.
pub fn run_experiment_checked(opts: ClusterOpts) -> ExpResult {
    let mut cluster = Cluster::build(opts.clone());
    cluster.run_to_completion_checked();
    summarize(&mut cluster)
}

/// Summarizes an already-run cluster.
pub fn summarize(cluster: &mut Cluster) -> ExpResult {
    let opts = cluster.opts().clone();
    let r = cluster.client_results();
    let mut rec = LatencyRecorder::new();
    for &l in &r.latencies {
        rec.record(l);
    }
    let measure_s = opts.measure.as_secs_f64();
    let server_counters = cluster
        .servers
        .iter()
        .map(|&s| cluster.sim.counters(s))
        .collect();
    ExpResult {
        offered_rps: opts.rate_rps,
        achieved_rps: r.responses as f64 / measure_s,
        mean_ns: rec.mean(),
        p50_ns: rec.percentile(50.0).unwrap_or(0),
        p99_ns: rec.p99().unwrap_or(0),
        max_ns: rec.max().unwrap_or(0),
        sent: r.sent,
        responses: r.responses,
        nacks: r.nacks,
        leader: cluster.leader(),
        server_counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_criterion_requires_keeping_up() {
        let base = ExpResult {
            offered_rps: 100_000.0,
            achieved_rps: 99_500.0,
            mean_ns: 10_000.0,
            p50_ns: 9_000,
            p99_ns: 80_000,
            max_ns: 200_000,
            sent: 100,
            responses: 99,
            nacks: 0,
            leader: Some(0),
            server_counters: vec![],
        };
        assert!(base.meets_slo(500_000));
        let overloaded = ExpResult {
            achieved_rps: 50_000.0,
            ..base.clone()
        };
        assert!(!overloaded.meets_slo(500_000));
        let slow = ExpResult {
            p99_ns: 900_000,
            ..base
        };
        assert!(!slow.meets_slo(500_000));
    }

    /// The parallel sweep layer moves experiment inputs and outputs across
    /// pool workers; these types must stay `Send` (compile-time check).
    #[test]
    fn sweep_payload_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ExpResult>();
        assert_send::<crate::ClusterOpts>();
        assert_send::<crate::DigestReport>();
    }
}
