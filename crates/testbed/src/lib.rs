//! # testbed — the simulated evaluation infrastructure
//!
//! Assembles complete HovercRaft deployments on the `simnet` fabric: the
//! four system setups of §7 ([`Setup`]), server agents wrapping
//! [`hovercraft::HcNode`] (or the plain unreplicated R2P2 server), Lancet-
//! style open-loop clients, the flow-control middlebox, and the
//! HovercRaft++ aggregator mounted as switch pipeline programs.
//!
//! The main entry point is [`run_experiment`]: configure a point with
//! [`ClusterOpts`], get back an [`ExpResult`] with goodput and latency
//! percentiles. For scripted scenarios (failure injection, time series),
//! build a [`Cluster`] directly and drive `cluster.sim` by hand.

#![warn(missing_docs)]

mod client;
mod cluster;
mod digest;
pub mod invariants;
mod programs;
mod runner;
mod server;
mod setup;

pub use client::{ClientAgent, ClientResults, ClientWorkload, RetryPolicy};
pub use cluster::{Cluster, ClusterOpts, ServiceKind, WorkloadKind};
pub use digest::{chaos_digest_opts, digest_chaos_run, DigestReport, TraceDigest};
pub use invariants::{InvariantChecker, Violation};
pub use programs::{AggProgram, FcProgram};
pub use runner::{run_experiment, run_experiment_checked, summarize, ExpResult};
pub use server::{ServerAgent, UnrepAgent};
pub use setup::{addrs, Setup};
