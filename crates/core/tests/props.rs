//! Property-based tests of the HovercRaft components: the in-network
//! aggregator's register semantics and the replier ledger's bounded-queue
//! invariant, under arbitrary event sequences.

use bytes::Bytes;
use hovercraft::{
    Aggregator, Cmd, EntryDesc, OpKind, PolicyKind, ReplierLedger, UnorderedPool, WireMsg,
};
use proptest::prelude::*;
use r2p2::ReqId;
use raft::{Entry, LogIndex, Message, RaftId};

fn ae(term: u64, prev: LogIndex, n: usize) -> WireMsg {
    let entries = (0..n)
        .map(|i| Entry {
            term,
            index: prev + 1 + i as u64,
            cmd: Cmd::meta(EntryDesc::new(
                ReqId::new(1, 1, (prev as u16).wrapping_add(i as u16)),
                0,
                OpKind::ReadWrite,
            )),
        })
        .collect();
    WireMsg::Raft(Message::AppendEntries {
        term,
        leader: 0,
        prev_log_index: prev,
        prev_log_term: term,
        entries,
        leader_commit: 0,
    })
}

fn reply(term: u64, m: LogIndex, from: RaftId) -> WireMsg {
    WireMsg::Raft(Message::AppendEntriesReply {
        term,
        success: true,
        match_index: m,
        conflict_index: 0,
        applied_index: m,
        from,
    })
}

proptest! {
    /// The aggregator's commit register is monotone within a term, never
    /// exceeds the announced horizon, and fan-out never targets the leader.
    #[test]
    fn aggregator_register_invariants(
        events in proptest::collection::vec((0u8..4, 0u64..30, 1u32..5), 1..200),
    ) {
        let mut agg = Aggregator::new(vec![0, 1, 2, 3, 4]);
        let mut horizon = 0u64; // highest index ever announced this term
        let mut last_commit = 0u64;
        let mut term = 1u64;
        for (kind, val, node) in events {
            match kind {
                0 => {
                    // Leader announces entries [horizon+1, horizon+k].
                    let k = (val % 4) as usize;
                    let out = agg.on_packet(0, ae(term, horizon, k));
                    for (dst, _) in &out {
                        prop_assert_ne!(*dst, 0, "fan-out must exclude the leader");
                    }
                    horizon += k as u64;
                }
                1 => {
                    // Follower acks some match index ≤ horizon.
                    let m = val.min(horizon);
                    let _ = agg.on_packet(node, reply(term, m, node));
                }
                2 => {
                    // New term: flush, registers restart.
                    term += 1;
                    let _ = agg.on_packet(0, ae(term, horizon, 0));
                    last_commit = 0;
                }
                _ => {
                    // Stale-term garbage must be inert.
                    let _ = agg.on_packet(node, reply(term.saturating_sub(1), val, node));
                }
            }
            prop_assert!(agg.commit() <= horizon, "commit beyond announcements");
            if kind != 2 {
                prop_assert!(agg.commit() >= last_commit, "commit regressed");
            }
            last_commit = agg.commit();
        }
    }

    /// Ledger depth always equals the exact count of assigned-but-unapplied
    /// entries, and `pick` never selects a node at or over the bound.
    #[test]
    fn ledger_bounded_queue_invariant(
        ops in proptest::collection::vec((0u8..2, 0u32..3, 1u64..200), 1..300),
        b in 1usize..16,
    ) {
        use rand::SeedableRng;
        let mut ledger = ReplierLedger::new();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        // Ground truth: per node, the set of assigned indices > applied.
        let mut assigned: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut applied = [0u64; 3];
        let mut next_idx = 1u64;
        for (kind, node, val) in ops {
            let node = node as usize;
            match kind {
                0 => {
                    // Try to assign the next entry via pick().
                    if let Some(r) =
                        ledger.pick(&[0, 1, 2], b, PolicyKind::Jbsq, &mut rng, 0, u64::MAX)
                    {
                        prop_assert!(
                            ledger.depth(r) < b,
                            "picked node at bound"
                        );
                        ledger.assign(r, next_idx);
                        assigned[r as usize].push(next_idx);
                        next_idx += 1;
                    } else {
                        // No eligible node: every node must be at the bound.
                        for n in 0..3u32 {
                            prop_assert!(ledger.depth(n) >= b);
                        }
                    }
                }
                _ => {
                    // Node reports applied progress.
                    let new_applied = applied[node].max(val.min(next_idx));
                    applied[node] = new_applied;
                    ledger.observe_applied(node as RaftId, new_applied);
                    assigned[node].retain(|&i| i > new_applied);
                }
            }
            for (n, a) in assigned.iter().enumerate() {
                prop_assert_eq!(
                    ledger.depth(n as RaftId),
                    a.len(),
                    "depth mismatch for node {}",
                    n
                );
            }
        }
    }

    /// The unordered pool: archives never lose bodies, GC touches only the
    /// unordered side, and `mark_ordered` is exactly once per id.
    #[test]
    fn pool_lifecycle_invariants(
        ops in proptest::collection::vec((0u8..4, 0u16..64, 0u64..1_000), 1..300),
    ) {
        let mut pool = UnorderedPool::new();
        let mut archived = std::collections::HashSet::new();
        let mut now = 0u64;
        for (kind, rid, t) in ops {
            now += t;
            let id = ReqId::new(5, 5, rid);
            match kind {
                0 => pool.insert(id, OpKind::ReadWrite, Bytes::from_static(b"x"), now),
                1 => {
                    if pool.mark_ordered(id) {
                        archived.insert(id);
                    }
                }
                2 => {
                    pool.gc(now, 100);
                }
                _ => {
                    pool.insert_recovered(id, OpKind::ReadOnly, Bytes::from_static(b"y"), now);
                    archived.insert(id);
                }
            }
            // Every archived id remains retrievable (recovery serving).
            for a in &archived {
                prop_assert!(pool.get(*a).is_some(), "archived body lost");
                prop_assert!(pool.is_archived(*a));
            }
            prop_assert_eq!(pool.archived_len(), archived.len());
        }
    }
}
