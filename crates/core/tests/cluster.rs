//! Protocol-level cluster tests: full HovercRaft nodes, the in-network
//! aggregator, and the flow-control middlebox wired over a logical
//! in-memory bus (constant latency, controllable loss). These validate the
//! protocol semantics independently of the performance simulator.

use bytes::Bytes;
use hovercraft::{
    Aggregator, EchoService, FcDecision, FlowControl, HcConfig, HcNode, Mode, OpKind, Output,
    PolicyKind, WireMsg,
};
use r2p2::{ReqId, ReqIdAlloc};
use raft::RaftId;

const GROUP: u32 = 0x8000_0000;
const AGG: u32 = 200;
const VIP: u32 = 300;
const CLIENT: u32 = 100;

/// Drop predicate: (message, destination) → drop?
type DropFn = Box<dyn FnMut(&WireMsg, u32) -> bool>;

struct Bus {
    inflight: Vec<(u64, u32, u32, WireMsg)>, // (deliver_at, src, dst, msg)
    latency: u64,
    /// Per-destination one-shot drop predicate, for loss injection.
    drop: Option<DropFn>,
    /// Wire message counters per (src) node address for Table-1 style
    /// accounting: (tx, rx).
    tx: Vec<u64>,
    rx: Vec<u64>,
}

impl Bus {
    fn new(latency: u64) -> Bus {
        Bus {
            inflight: Vec::new(),
            latency,
            drop: None,
            tx: vec![0; 512],
            rx: vec![0; 512],
        }
    }
    fn send(&mut self, now: u64, src: u32, dst: u32, msg: WireMsg) {
        if (src as usize) < self.tx.len() {
            self.tx[src as usize] += 1;
        }
        self.inflight.push((now + self.latency, src, dst, msg));
    }
}

struct Cluster {
    nodes: Vec<HcNode<EchoService>>,
    alive: Vec<bool>,
    agg: Aggregator,
    fc: Option<FlowControl>,
    bus: Bus,
    now: u64,
    /// Responses the client has observed: (rid, body).
    responses: Vec<(ReqId, Bytes)>,
    nacks: u64,
    alloc: ReqIdAlloc,
    arena: bytes::ByteArena,
}

impl Cluster {
    fn new(n: u32, mode: Mode, with_fc: Option<u32>) -> Cluster {
        let members: Vec<RaftId> = (0..n).collect();
        let nodes = members
            .iter()
            .map(|&id| {
                let mut rc = raft::Config::new(id, members.clone());
                rc.seed = 40 + id as u64 * 13;
                let mut cfg = HcConfig::new(rc, mode);
                cfg.agg_addr = (mode == Mode::HovercraftPp).then_some(AGG);
                cfg.flowctl_addr = with_fc.map(|_| VIP);
                cfg.policy = PolicyKind::Jbsq;
                HcNode::new(cfg, EchoService::default(), 0)
            })
            .collect();
        Cluster {
            nodes,
            alive: vec![true; n as usize],
            agg: Aggregator::new(members),
            fc: with_fc.map(|cap| FlowControl::new(GROUP, cap)),
            bus: Bus::new(5_000), // 5µs one-way
            now: 0,
            responses: Vec::new(),
            nacks: 0,
            alloc: ReqIdAlloc::new(CLIENT, 1000),
            arena: bytes::ByteArena::new(),
        }
    }

    fn handle_outputs(&mut self, node: u32, outs: Vec<Output>) {
        for o in outs {
            match o {
                Output::Send { dst, msg } => self.bus.send(self.now, node, dst, msg),
                Output::Execute { index, .. } => {
                    // Logical harness: app work completes instantly and in
                    // order.
                    let mut outs = Vec::new();
                    self.nodes[node as usize].on_exec_done(
                        index,
                        self.now,
                        &mut outs,
                        &mut self.arena,
                    );
                    self.handle_outputs(node, outs);
                }
            }
        }
    }

    fn deliver_to_node(&mut self, node: u32, src: u32, msg: WireMsg) {
        if !self.alive[node as usize] {
            return;
        }
        if (node as usize) < self.bus.rx.len() {
            self.bus.rx[node as usize] += 1;
        }
        let mut outs = Vec::new();
        self.nodes[node as usize].on_message(src, msg, self.now, &mut outs, &mut self.arena);
        self.handle_outputs(node, outs);
    }

    fn step(&mut self, dt: u64) {
        self.now += dt;
        for id in 0..self.nodes.len() {
            if !self.alive[id] {
                continue;
            }
            let mut outs = Vec::new();
            self.nodes[id].tick(self.now, &mut outs, &mut self.arena);
            self.handle_outputs(id as u32, outs);
        }
        let mut due = Vec::new();
        let now = self.now;
        self.bus.inflight.retain(|m| {
            if m.0 <= now {
                due.push((m.1, m.2, m.3.clone()));
                false
            } else {
                true
            }
        });
        for (src, dst, msg) in due {
            if let Some(f) = self.bus.drop.as_mut() {
                if f(&msg, dst) {
                    continue;
                }
            }
            match dst {
                GROUP => {
                    for n in 0..self.nodes.len() as u32 {
                        if n != src {
                            self.deliver_to_node(n, src, msg.clone());
                        }
                    }
                }
                AGG => {
                    let emissions = self.agg.on_packet(src, msg);
                    for (d, m) in emissions {
                        self.bus.send(self.now, AGG, d, m);
                    }
                }
                VIP => {
                    let Some(fc) = self.fc.as_mut() else { continue };
                    match fc.on_packet(&msg, self.now) {
                        FcDecision::Admit { rewritten_dst } => {
                            self.bus.send(self.now, src, rewritten_dst, msg);
                        }
                        FcDecision::Nack { client, id } => {
                            self.bus.send(self.now, VIP, client, WireMsg::Nack { id });
                        }
                        FcDecision::Absorbed | FcDecision::Pass => {}
                    }
                }
                CLIENT => match msg {
                    WireMsg::Response { id, body } => self.responses.push((id, body)),
                    WireMsg::Nack { .. } => self.nacks += 1,
                    _ => {}
                },
                n if (n as usize) < self.nodes.len() => self.deliver_to_node(n, src, msg),
                _ => {}
            }
        }
    }

    fn run_ms(&mut self, ms: u64) {
        for _ in 0..ms * 4 {
            self.step(250_000);
        }
    }

    fn leader(&self) -> Option<u32> {
        (0..self.nodes.len())
            .filter(|&i| self.alive[i] && self.nodes[i].is_leader())
            .max_by_key(|&i| self.nodes[i].raft().term())
            .map(|i| i as u32)
    }
}

/// A [`Cluster`] plus the deployment mode, which decides where client
/// requests are addressed.
struct TestCluster {
    c: Cluster,
    mode: Mode,
}

impl std::ops::Deref for TestCluster {
    type Target = Cluster;
    fn deref(&self) -> &Cluster {
        &self.c
    }
}
impl std::ops::DerefMut for TestCluster {
    fn deref_mut(&mut self) -> &mut Cluster {
        &mut self.c
    }
}

impl TestCluster {
    fn new(n: u32, mode: Mode) -> TestCluster {
        TestCluster {
            c: Cluster::new(n, mode, None),
            mode,
        }
    }
    fn with_flowctl(n: u32, mode: Mode, cap: u32) -> TestCluster {
        TestCluster {
            c: Cluster::new(n, mode, Some(cap)),
            mode,
        }
    }
    fn send(&mut self, kind: OpKind, body: &[u8]) -> ReqId {
        let id = self.c.alloc.allocate();
        let msg = WireMsg::Request {
            id,
            kind,
            body: Bytes::copy_from_slice(body),
        };
        let dst = match self.mode {
            Mode::Vanilla => self.c.leader().expect("vanilla needs a leader"),
            _ if self.c.fc.is_some() => VIP,
            _ => GROUP,
        };
        let now = self.c.now;
        self.c.bus.send(now, CLIENT, dst, msg);
        id
    }
}

fn settle(mode: Mode, n: u32) -> TestCluster {
    let mut tc = TestCluster::new(n, mode);
    tc.run_ms(100);
    assert!(tc.leader().is_some(), "leader elected");
    tc
}

#[test]
fn hovercraft_round_trip_single_reply() {
    let mut tc = settle(Mode::Hovercraft, 3);
    let id = tc.send(OpKind::ReadWrite, b"hello");
    tc.run_ms(10);
    assert_eq!(tc.responses.len(), 1, "exactly one reply");
    assert_eq!(tc.responses[0].0, id);
    assert_eq!(&tc.responses[0].1[..], b"hello");
}

#[test]
fn vanilla_round_trip_leader_replies() {
    let mut tc = settle(Mode::Vanilla, 3);
    let leader = tc.leader().unwrap();
    for i in 0..5u64 {
        tc.send(OpKind::ReadWrite, &i.to_le_bytes());
        tc.run_ms(5);
    }
    assert_eq!(tc.responses.len(), 5);
    // Only the leader responds in vanilla mode.
    for (i, n) in tc.nodes.iter().enumerate() {
        let s = n.stats();
        if i as u32 == leader {
            assert_eq!(s.responses, 5);
        } else {
            assert_eq!(s.responses, 0);
        }
    }
    // And every node executed every write (full SMR).
    for n in &tc.nodes {
        assert_eq!(n.service().writes, 5);
    }
}

#[test]
fn hovercraft_replicates_writes_everywhere() {
    let mut tc = settle(Mode::Hovercraft, 3);
    for i in 0..10u64 {
        tc.send(OpKind::ReadWrite, &i.to_le_bytes());
        tc.run_ms(5);
    }
    tc.run_ms(20);
    assert_eq!(tc.responses.len(), 10);
    for (i, n) in tc.nodes.iter().enumerate() {
        assert_eq!(n.service().writes, 10, "node {i} applied all writes");
        assert_eq!(n.applied_index(), tc.nodes[0].applied_index());
    }
}

#[test]
fn replies_are_load_balanced_across_nodes() {
    let mut tc = settle(Mode::Hovercraft, 3);
    for i in 0..60u64 {
        tc.send(OpKind::ReadWrite, &i.to_le_bytes());
        if i % 4 == 3 {
            tc.run_ms(3);
        }
    }
    tc.run_ms(50);
    assert_eq!(tc.responses.len(), 60);
    let responders = tc.nodes.iter().filter(|n| n.stats().responses > 0).count();
    assert!(
        responders >= 2,
        "replies spread over ≥2 nodes, got {responders}"
    );
}

#[test]
fn read_only_ops_execute_on_exactly_one_node() {
    let mut tc = settle(Mode::Hovercraft, 3);
    for i in 0..30u64 {
        tc.send(OpKind::ReadOnly, &i.to_le_bytes());
        if i % 5 == 4 {
            tc.run_ms(3);
        }
    }
    tc.run_ms(50);
    assert_eq!(tc.responses.len(), 30);
    let total_exec: u64 = tc.nodes.iter().map(|n| n.stats().executed).sum();
    let total_skip: u64 = tc.nodes.iter().map(|n| n.stats().ro_skipped).sum();
    assert_eq!(total_exec, 30, "each RO op executed exactly once");
    assert_eq!(total_skip, 60, "and skipped on the other two nodes");
    // Reads never mutate the echo service's write counter.
    for n in &tc.nodes {
        assert_eq!(n.service().writes, 0);
    }
}

#[test]
fn hovercraft_pp_commits_through_aggregator() {
    let mut tc = settle(Mode::HovercraftPp, 3);
    // Bootstrap: first entries flow point-to-point until the leader trusts
    // the aggregator and a current-term entry commits.
    for i in 0..20u64 {
        tc.send(OpKind::ReadWrite, &i.to_le_bytes());
        tc.run_ms(5);
    }
    tc.run_ms(20);
    assert_eq!(tc.responses.len(), 20);
    let leader = tc.leader().unwrap();
    assert!(
        tc.nodes[leader as usize].aggregator_confirmed(),
        "leader confirmed the aggregator via VoteProbe"
    );
    let st = tc.agg.stats();
    assert!(st.fanouts > 0, "aggregator fanned out appends");
    assert!(st.commits_sent > 0, "aggregator multicast AGG_COMMITs");
    assert!(st.replies_absorbed >= st.commits_sent);
    for n in &tc.nodes {
        assert_eq!(n.service().writes, 20);
    }
}

#[test]
fn aggregator_offloads_leader_rx() {
    // Table 1: in HC++ the leader receives ~1 message per request
    // (AGG_COMMIT) instead of N-1 append replies.
    let mut hc = settle(Mode::Hovercraft, 5);
    let mut pp = settle(Mode::HovercraftPp, 5);
    for tc in [&mut hc, &mut pp] {
        // Warm up to steady state, then measure.
        for i in 0..10u64 {
            tc.send(OpKind::ReadWrite, &i.to_le_bytes());
            tc.run_ms(5);
        }
        let l = tc.leader().unwrap() as usize;
        tc.bus.rx[l] = 0;
        for i in 0..40u64 {
            tc.send(OpKind::ReadWrite, &(1000 + i).to_le_bytes());
            tc.run_ms(5);
        }
    }
    let rx_hc = hc.bus.rx[hc.leader().unwrap() as usize];
    let rx_pp = pp.bus.rx[pp.leader().unwrap() as usize];
    assert!(
        rx_pp * 2 < rx_hc,
        "HC++ leader RX ({rx_pp}) should be well below HovercRaft ({rx_hc})"
    );
}

#[test]
fn lost_multicast_copy_recovers_from_leader() {
    let mut tc = settle(Mode::Hovercraft, 3);
    let victim = (0..3u32).find(|&n| Some(n) != tc.leader()).unwrap();
    // Simulate a lost multicast copy: deliver the request to every node
    // except the victim follower.
    let id = tc.alloc.allocate();
    let msg = WireMsg::Request {
        id,
        kind: OpKind::ReadWrite,
        body: Bytes::from_static(b"lossy"),
    };
    for n in 0..3u32 {
        if n != victim {
            let now = tc.now;
            tc.c.bus.send(now, CLIENT, n, msg.clone());
        }
    }
    tc.run_ms(30);
    assert_eq!(tc.responses.len(), 1);
    // The victim recovered the body and applied the entry.
    let v = &tc.nodes[victim as usize];
    assert_eq!(v.service().writes, 1, "victim executed after recovery");
    assert!(v.stats().recoveries_sent >= 1, "victim used recovery");
    let served: u64 = tc.nodes.iter().map(|n| n.stats().recoveries_served).sum();
    assert!(served >= 1, "someone served the recovery");
}

#[test]
fn leader_failure_elects_new_leader_and_resumes() {
    let mut tc = settle(Mode::Hovercraft, 3);
    for i in 0..5u64 {
        tc.send(OpKind::ReadWrite, &i.to_le_bytes());
        tc.run_ms(5);
    }
    assert_eq!(tc.responses.len(), 5);
    let old = tc.leader().unwrap();
    tc.c.alive[old as usize] = false;
    tc.run_ms(300);
    let new = tc.leader().expect("re-elected");
    assert_ne!(new, old);
    // The new leader's fresh ledger will assign up to B = 128 entries to
    // the dead node before its bounded queue fills (their replies are
    // lost); everything beyond that must be answered.
    for i in 0..300u64 {
        tc.send(OpKind::ReadWrite, &(100 + i).to_le_bytes());
        if i % 4 == 3 {
            tc.run_ms(2);
        }
    }
    tc.run_ms(100);
    assert!(
        tc.responses.len() >= 305 - 128 - 5,
        "post-failover requests served ({})",
        tc.responses.len()
    );
    // Survivors agree on the applied prefix.
    let survivors: Vec<usize> = (0..3).filter(|&i| i != old as usize).collect();
    assert_eq!(
        tc.nodes[survivors[0]].applied_index(),
        tc.nodes[survivors[1]].applied_index()
    );
}

#[test]
fn flow_control_nacks_beyond_cap() {
    let mut tc = TestCluster::with_flowctl(3, Mode::Hovercraft, 4);
    tc.run_ms(100);
    assert!(tc.leader().is_some());
    // Fire a burst of 20 requests in one step: only 4 can be in flight.
    for i in 0..20u64 {
        tc.send(OpKind::ReadWrite, &i.to_le_bytes());
    }
    tc.run_ms(30);
    assert!(tc.nacks > 0, "some requests were NACKed");
    assert_eq!(
        tc.responses.len() + tc.nacks as usize,
        20,
        "every request either answered or NACKed"
    );
    let fc = tc.c.fc.as_ref().unwrap();
    assert_eq!(fc.in_flight(), 0, "feedback drained the counter");
}

#[test]
fn dead_follower_stops_receiving_assignments() {
    let mut tc = settle(Mode::Hovercraft, 3);
    let leader = tc.leader().unwrap();
    let victim = (0..3u32).find(|&n| n != leader).unwrap();
    tc.c.alive[victim as usize] = false;
    // Throw enough requests that an unbounded balancer would assign many to
    // the dead node. Bound B = 128 (default config).
    for i in 0..400u64 {
        tc.send(OpKind::ReadWrite, &i.to_le_bytes());
        if i % 8 == 7 {
            tc.run_ms(2);
        }
    }
    tc.run_ms(100);
    // All but ≤B requests were answered (those assigned to the dead node
    // before its queue filled are lost — §3.4's bounded loss).
    assert!(
        tc.responses.len() >= 400 - 128,
        "lost replies bounded by B: {} answered",
        tc.responses.len()
    );
    let lost = 400 - tc.responses.len();
    assert!(lost <= 128, "at most B replies lost, got {lost}");
}

#[test]
fn duplicate_client_request_is_ordered_once() {
    let mut tc = settle(Mode::Hovercraft, 3);
    let id = tc.alloc.allocate();
    let msg = WireMsg::Request {
        id,
        kind: OpKind::ReadWrite,
        body: Bytes::from_static(b"dup"),
    };
    // The client "retries" the same request three times.
    for _ in 0..3 {
        let now = tc.now;
        tc.c.bus.send(now, CLIENT, GROUP, msg.clone());
        tc.run_ms(5);
    }
    tc.run_ms(20);
    for n in &tc.nodes {
        assert_eq!(n.service().writes, 1, "executed exactly once per node");
    }
}

/// Pinned regression: restoring a node from a stale incarnation epoch must
/// be rejected with a traceable `restore_rejected` event, not silently
/// accepted (which once produced a node whose dedup/reply state belonged
/// to a *previous* life, double-answering after back-to-back restarts).
#[test]
fn restore_from_stale_epoch_is_rejected() {
    use hovercraft::RestoreRejected;

    let members: Vec<RaftId> = vec![0, 1, 2];
    let rc = raft::Config::new(0, members);
    let cfg = HcConfig::new(rc, Mode::Hovercraft);
    let node = HcNode::new(cfg.clone(), EchoService::default(), 0);
    assert_eq!(node.epoch(), 0, "a fresh node is incarnation 0");
    let durable = node.durable_state();

    // Same epoch as the durable state: a re-restore of the *current*
    // incarnation, rejected.
    let err = HcNode::restore(cfg.clone(), EchoService::default(), 0, durable.clone(), 0)
        .err()
        .expect("same-epoch restore must be rejected");
    assert_eq!(
        err,
        RestoreRejected {
            from_epoch: 0,
            new_epoch: 0
        }
    );
    assert_eq!(
        err.event().kind(),
        "restore_rejected",
        "rejection carries a traceable protocol event"
    );

    // Skipping an incarnation (epoch + 2) is just as stale a handoff.
    let err = HcNode::restore(cfg.clone(), EchoService::default(), 0, durable.clone(), 2)
        .err()
        .expect("epoch-skipping restore must be rejected");
    assert_eq!(err.new_epoch, 2);

    // The one legal successor: exactly epoch + 1.
    let restored = HcNode::restore(cfg, EchoService::default(), 0, durable, 1)
        .expect("successor-epoch restore succeeds");
    assert_eq!(restored.epoch(), 1);
    let durable2 = restored.durable_state();
    assert_eq!(durable2.epoch, 1, "durable state carries the new epoch");
}

/// Pins the edges of the drained-only [`HcNode::take_snapshot`] fallback
/// (the path `ensure_transfer` takes when a restored node owns a
/// compacted log without a snapshot blob in memory): an empty log and an
/// applied cursor at 0 must never produce a snapshot at index 0 (0 is the
/// "no snapshot" sentinel everywhere — in `DurableState.snap_index`, the
/// log boundary, and the transfer protocol); an undrained app pipeline
/// must refuse rather than capture service state that is ahead of the
/// claimed index; and back-to-back horizons (re-snapshot at the same
/// index, then again one entry later) must be a no-op and a fresh
/// boundary respectively.
#[test]
fn drained_only_take_snapshot_fallback_edges() {
    // A single-member group: it elects itself (quorum of one) and commits
    // locally, so the test can hold the app pipeline open by simply not
    // completing Execute outputs.
    let members: Vec<RaftId> = vec![0];
    let mut rc = raft::Config::new(0, members);
    rc.seed = 11;
    let cfg = HcConfig::new(rc, Mode::Hovercraft);
    let mut node = HcNode::new(cfg, EchoService::default(), 0);
    let mut arena = bytes::ByteArena::new();

    // Edge: empty log, nothing applied. No snapshot, no boundary change.
    node.take_snapshot(0);
    assert_eq!(node.snapshot_index(), 0, "no snapshot at index 0");
    assert_eq!(node.stats().snapshots, 0);

    // Elect (single node: first election timeout wins instantly).
    let mut now = 0u64;
    let mut execs: Vec<u64> = Vec::new();
    // Sends go nowhere (no peers, no client on the wire); Execute outputs
    // are parked so the test controls the drain point.
    fn park(outs: Vec<Output>, execs: &mut Vec<u64>) {
        for o in outs {
            if let Output::Execute { index, .. } = o {
                execs.push(index);
            }
        }
    }
    while !node.is_leader() {
        now += 1_000_000;
        let mut outs = Vec::new();
        node.tick(now, &mut outs, &mut arena);
        park(outs, &mut execs);
        assert!(now < 10_000_000_000, "single node must elect itself");
    }

    // Order one request but leave it executing on the app thread.
    let mut alloc = ReqIdAlloc::new(CLIENT, 500);
    let id = alloc.allocate();
    let mut outs = Vec::new();
    node.on_message(
        CLIENT,
        WireMsg::Request {
            id,
            kind: OpKind::ReadWrite,
            body: Bytes::from_static(b"snap-edge"),
        },
        now,
        &mut outs,
        &mut arena,
    );
    park(outs, &mut execs);
    assert_eq!(execs, vec![1], "the request is issued to the app thread");
    assert_eq!(node.applied_index(), 0, "execution has not completed");

    // Edge: undrained pipeline — the service already holds entry 1's
    // effects, so a snapshot stamped `applied == 0` would be ahead of its
    // index. Refused.
    node.take_snapshot(now);
    assert_eq!(node.snapshot_index(), 0, "undrained snapshot refused");
    assert_eq!(node.stats().snapshots, 0);

    // Drain, then the fallback works at the applied index.
    let mut outs = Vec::new();
    node.on_exec_done(1, now, &mut outs, &mut arena);
    park(outs, &mut execs);
    assert_eq!(node.applied_index(), 1);
    node.take_snapshot(now);
    assert_eq!(node.snapshot_index(), 1);
    assert_eq!(node.stats().snapshots, 1);

    // Edge: back-to-back horizons at the same index — a no-op, not a
    // duplicate snapshot (the boundary guard, `index <= snapshot_index`).
    node.take_snapshot(now);
    assert_eq!(node.snapshot_index(), 1);
    assert_eq!(
        node.stats().snapshots,
        1,
        "same-horizon re-snapshot is a no-op"
    );

    // One more entry, drain, snapshot again: a fresh boundary one entry
    // past the old one (horizons may be arbitrarily close).
    let id2 = alloc.allocate();
    let mut outs = Vec::new();
    node.on_message(
        CLIENT,
        WireMsg::Request {
            id: id2,
            kind: OpKind::ReadWrite,
            body: Bytes::from_static(b"snap-edge-2"),
        },
        now,
        &mut outs,
        &mut arena,
    );
    park(outs, &mut execs);
    let mut outs = Vec::new();
    node.on_exec_done(2, now, &mut outs, &mut arena);
    park(outs, &mut execs);
    node.take_snapshot(now);
    assert_eq!(node.snapshot_index(), 2, "back-to-back horizon advances");
    assert_eq!(node.stats().snapshots, 2);
    assert_eq!(
        node.raft().log().first_index(),
        3,
        "the log compacted to the new boundary"
    );

    // The durable state round-trips the fallback snapshot: a successor
    // incarnation restores from it with the boundary intact.
    let durable = node.durable_state();
    assert_eq!(durable.snap_index, 2);
    let restored = HcNode::restore(
        node.config().clone(),
        EchoService::default(),
        now,
        durable,
        1,
    )
    .expect("restore from fallback snapshot");
    assert_eq!(restored.applied_index(), 2);
    assert_eq!(restored.snapshot_index(), 2);
}
