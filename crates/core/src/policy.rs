//! Replier-selection policies (§3.3, §3.6) and the bounded-queue ledger
//! (§3.4).
//!
//! The leader assigns every log entry a designated replier when it advances
//! the announced index. Eligibility is governed by the bounded-queue
//! invariant — a node with `B` or more assigned-but-unapplied operations
//! receives no more work, which both caps replies lost to a replica failure
//! at `B` and keeps work away from stalled nodes. Among eligible nodes the
//! policy picks either uniformly at random or by Join-Bounded-Shortest-Queue
//! (JBSQ), which the paper shows wins under high service-time dispersion
//! (Figure 11).

use std::collections::VecDeque;

use fxhash::FxHashMap;

use rand::rngs::SmallRng;
use rand::Rng;

use raft::{LogIndex, RaftId};

/// Which selection rule to apply among eligible nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PolicyKind {
    /// Uniform random choice among eligible nodes.
    Random,
    /// Join-Bounded-Shortest-Queue: the eligible node with the fewest
    /// outstanding assignments (ties broken randomly).
    #[default]
    Jbsq,
}

/// The leader's ledger of replier assignments: per node, the queue of log
/// indices assigned to it that it has not yet applied, plus the time each
/// node was last heard from — a node silent for longer than the stall
/// timeout is excluded from selection outright instead of being drip-fed
/// work until its bounded queue fills.
#[derive(Clone, Debug, Default)]
pub struct ReplierLedger {
    queues: FxHashMap<RaftId, VecDeque<LogIndex>>,
    last_heard: FxHashMap<RaftId, u64>,
}

impl ReplierLedger {
    /// An empty ledger (fresh leadership term).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that entry `idx` was assigned to `node`.
    pub fn assign(&mut self, node: RaftId, idx: LogIndex) {
        self.queues.entry(node).or_default().push_back(idx);
    }

    /// Updates the ledger with `node`'s reported applied index, retiring
    /// every assignment at or below it.
    pub fn observe_applied(&mut self, node: RaftId, applied: LogIndex) {
        if let Some(q) = self.queues.get_mut(&node) {
            while q.front().is_some_and(|&i| i <= applied) {
                q.pop_front();
            }
        }
    }

    /// Outstanding (assigned but unapplied) operations for `node` — the
    /// queue depth JBSQ balances on.
    pub fn depth(&self, node: RaftId) -> usize {
        self.queues.get(&node).map(|q| q.len()).unwrap_or(0)
    }

    /// Records that `node` showed signs of life at time `now` (an
    /// AppendEntries reply or an aggregator register snapshot).
    pub fn note_heard(&mut self, node: RaftId, now: u64) {
        let t = self.last_heard.entry(node).or_insert(now);
        *t = (*t).max(now);
    }

    /// True when `node` has not been heard from for longer than
    /// `stall_timeout` ns as of `now`. A node never heard from at all (no
    /// `note_heard` yet) is *not* stalled — fresh leaders give everyone the
    /// benefit of the doubt until the first timeout elapses.
    pub fn is_stalled(&self, node: RaftId, now: u64, stall_timeout: u64) -> bool {
        self.last_heard
            .get(&node)
            .is_some_and(|&t| now.saturating_sub(t) > stall_timeout)
    }

    /// Clears all state (leadership change).
    pub fn reset(&mut self) {
        self.queues.clear();
        self.last_heard.clear();
    }

    /// Feeds the ledger into `h` for model-checker state fingerprints:
    /// queues and last-heard marks as vectors sorted by the *renamed* node
    /// id, times as ages relative to `now`.
    pub fn hash_state(
        &self,
        now: u64,
        h: &mut dyn std::hash::Hasher,
        rename: &dyn Fn(RaftId) -> RaftId,
    ) {
        let mut qs: Vec<(RaftId, &VecDeque<LogIndex>)> =
            self.queues.iter().map(|(&n, q)| (rename(n), q)).collect();
        qs.sort_unstable_by_key(|&(n, _)| n);
        h.write_usize(qs.len());
        for (n, q) in qs {
            h.write_u32(n);
            h.write_usize(q.len());
            for &idx in q {
                h.write_u64(idx);
            }
        }
        let mut heard: Vec<(RaftId, u64)> = self
            .last_heard
            .iter()
            .map(|(&n, &t)| (rename(n), now.saturating_sub(t)))
            .collect();
        heard.sort_unstable();
        h.write_usize(heard.len());
        for (n, age) in heard {
            h.write_u32(n);
            h.write_u64(age);
        }
    }

    /// Picks a replier for the next entry among `candidates`, honouring the
    /// bounded-queue invariant with bound `b`, skipping nodes that are
    /// stalled as of `now` (no progress heard within `stall_timeout` ns),
    /// and applying `kind` among the eligible ones. Returns `None` when no
    /// node is eligible — the caller must *wait* (§3.4: this never affects
    /// liveness; progress on any node re-opens eligibility).
    ///
    /// If *every* candidate within the bound is stalled, the stall filter is
    /// ignored: assigning into a possibly dead node's bounded queue (at most
    /// `B` lost replies) beats stopping the whole group on a false alarm.
    pub fn pick(
        &self,
        candidates: &[RaftId],
        b: usize,
        kind: PolicyKind,
        rng: &mut SmallRng,
        now: u64,
        stall_timeout: u64,
    ) -> Option<RaftId> {
        let within_bound: Vec<RaftId> = candidates
            .iter()
            .copied()
            .filter(|n| self.depth(*n) < b)
            .collect();
        let mut eligible: Vec<RaftId> = within_bound
            .iter()
            .copied()
            .filter(|n| !self.is_stalled(*n, now, stall_timeout))
            .collect();
        if eligible.is_empty() {
            eligible = within_bound;
        }
        if eligible.is_empty() {
            return None;
        }
        Some(match kind {
            PolicyKind::Random => eligible[rng.gen_range(0..eligible.len())],
            PolicyKind::Jbsq => {
                let min = eligible
                    .iter()
                    .map(|n| self.depth(*n))
                    .min()
                    .expect("nonempty");
                let best: Vec<RaftId> = eligible
                    .into_iter()
                    .filter(|n| self.depth(*n) == min)
                    .collect();
                best[rng.gen_range(0..best.len())]
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn depth_tracks_assign_and_applied() {
        let mut l = ReplierLedger::new();
        l.assign(1, 10);
        l.assign(1, 12);
        l.assign(2, 11);
        assert_eq!(l.depth(1), 2);
        assert_eq!(l.depth(2), 1);
        assert_eq!(l.depth(3), 0);
        l.observe_applied(1, 11);
        assert_eq!(l.depth(1), 1, "entry 10 retired, 12 outstanding");
        l.observe_applied(1, 12);
        assert_eq!(l.depth(1), 0);
    }

    #[test]
    fn bounded_queue_blocks_full_nodes() {
        let mut l = ReplierLedger::new();
        let mut r = rng();
        for i in 0..4 {
            l.assign(1, i);
        }
        // Node 1 is at the bound; only node 2 is eligible.
        for _ in 0..20 {
            assert_eq!(
                l.pick(&[1, 2], 4, PolicyKind::Random, &mut r, 0, u64::MAX),
                Some(2)
            );
        }
    }

    #[test]
    fn no_eligible_node_returns_none() {
        let mut l = ReplierLedger::new();
        let mut r = rng();
        l.assign(1, 1);
        l.assign(2, 2);
        assert_eq!(
            l.pick(&[1, 2], 1, PolicyKind::Jbsq, &mut r, 0, u64::MAX),
            None
        );
    }

    #[test]
    fn jbsq_prefers_shortest_queue() {
        let mut l = ReplierLedger::new();
        let mut r = rng();
        for i in 0..3 {
            l.assign(1, i);
        }
        l.assign(2, 10);
        // Depths: node1 = 3, node2 = 1, node3 = 0.
        for _ in 0..20 {
            assert_eq!(
                l.pick(&[1, 2, 3], 8, PolicyKind::Jbsq, &mut r, 0, u64::MAX),
                Some(3)
            );
        }
    }

    #[test]
    fn random_spreads_over_eligible() {
        let l = ReplierLedger::new();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(
                l.pick(&[1, 2, 3], 4, PolicyKind::Random, &mut r, 0, u64::MAX)
                    .unwrap(),
            );
        }
        assert_eq!(seen.len(), 3, "all nodes chosen eventually");
    }

    #[test]
    fn jbsq_breaks_ties_randomly() {
        let l = ReplierLedger::new();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(
                l.pick(&[1, 2], 4, PolicyKind::Jbsq, &mut r, 0, u64::MAX)
                    .unwrap(),
            );
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn reset_clears_queues() {
        let mut l = ReplierLedger::new();
        l.assign(1, 1);
        l.reset();
        assert_eq!(l.depth(1), 0);
    }

    #[test]
    fn stalled_node_stays_blocked_forever() {
        // A failed node's applied index never advances; after B assignments
        // it can never be picked again — the §3.4 failure-containment story.
        let mut l = ReplierLedger::new();
        let mut r = rng();
        let b = 3;
        let mut next_idx = 1;
        let mut dead_got = 0;
        for _ in 0..200 {
            // Random (not JBSQ) keeps offering work to the dead node until
            // its bounded queue fills — the worst case the bound protects.
            let n = l
                .pick(&[1, 2], b, PolicyKind::Random, &mut r, 0, u64::MAX)
                .unwrap();
            l.assign(n, next_idx);
            next_idx += 1;
            if n == 1 {
                dead_got += 1; // node 1 is dead: never applies
            } else {
                l.observe_applied(2, next_idx - 1); // node 2 applies instantly
            }
        }
        assert_eq!(dead_got, b, "dead node received exactly B assignments");
    }

    #[test]
    fn stall_filter_excludes_silent_nodes() {
        let mut l = ReplierLedger::new();
        let mut r = rng();
        let stall = 5_000_000; // 5 ms
        l.note_heard(1, 0);
        l.note_heard(2, 0);
        // At 10 ms only node 2 has shown recent progress.
        l.note_heard(2, 10_000_000);
        for _ in 0..20 {
            assert_eq!(
                l.pick(&[1, 2], 8, PolicyKind::Random, &mut r, 10_000_000, stall),
                Some(2),
                "silent node 1 must be routed around"
            );
        }
        // Node 1 reports progress again — back in the candidate set.
        l.note_heard(1, 10_500_000);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(
                l.pick(&[1, 2], 8, PolicyKind::Random, &mut r, 10_600_000, stall)
                    .unwrap(),
            );
        }
        assert_eq!(seen.len(), 2, "recovered node is eligible again");
    }

    #[test]
    fn all_stalled_falls_back_to_bounded_queue_rule() {
        let mut l = ReplierLedger::new();
        let mut r = rng();
        l.note_heard(1, 0);
        l.note_heard(2, 0);
        // Everyone is silent: the stall filter must not wedge the group.
        assert!(l
            .pick(&[1, 2], 8, PolicyKind::Jbsq, &mut r, 100_000_000, 5_000_000)
            .is_some());
    }

    #[test]
    fn stale_note_heard_cannot_rewind_the_clock() {
        let mut l = ReplierLedger::new();
        l.note_heard(1, 10_000_000);
        l.note_heard(1, 2_000_000); // reordered observation
        assert!(!l.is_stalled(1, 12_000_000, 5_000_000));
        assert!(l.is_stalled(1, 16_000_000, 5_000_000));
    }
}
