//! # hovercraft — scalable, fault-tolerant SMR for µs-scale services
//!
//! A from-scratch Rust reproduction of **HovercRaft** (Kogias & Bugnion,
//! EuroSys '20): an extension of Raft that makes *adding nodes increase both
//! resilience and performance*, by integrating state-machine replication
//! into the R2P2 RPC transport and surgically removing the leader's CPU and
//! I/O bottlenecks:
//!
//! | Bottleneck (§2.1.2)            | Mechanism (module)                                   |
//! |--------------------------------|------------------------------------------------------|
//! | Leader TX for request bodies   | multicast replication, metadata-only ordering ([`UnorderedPool`], [`Cmd`]) |
//! | Leader TX for client replies   | designated repliers + bounded queues ([`ReplierLedger`]) |
//! | Leader CPU for read-only ops   | replier-only execution of reads ([`HcNode`])          |
//! | Leader packet processing rate  | in-network aggregation ([`Aggregator`])               |
//!
//! plus the multicast flow-control middlebox ([`FlowControl`]) that replaces
//! vanilla Raft's implicit leader-drop flow control (§6.3).
//!
//! The crate is **sans-io**: [`HcNode`], [`Aggregator`], and [`FlowControl`]
//! are pure state machines producing explicit outputs, so the same code
//! runs under the deterministic `simnet` testbed, property-based tests, or
//! a real packet runtime. Applications plug in through [`Service`] with no
//! code changes — the paper's application-agnostic fault-tolerance claim.
//!
//! Three deployment modes ([`Mode`]) correspond to the paper's evaluated
//! setups: `Vanilla` (Raft-on-R2P2), `Hovercraft`, and `HovercraftPp`
//! (with the in-network aggregator). The unreplicated baseline needs none
//! of this machinery and lives in the testbed.

#![warn(missing_docs)]

mod aggregator;
mod cmd;
mod config;
mod flowctl;
mod msg;
mod node;
mod policy;
mod pool;
mod service;
mod trace;

pub use aggregator::{AggStats, Aggregator};
pub use cmd::{Cmd, EntryDesc, OpKind};
pub use config::{HcConfig, Mode};
pub use flowctl::{FcDecision, FcStats, FlowControl, DEFAULT_RECLAIM_NS};
pub use msg::{AggStatus, WireMsg};
pub use node::{DurableState, HcNode, HcStats, Output, RestoreRejected};
pub use policy::{PolicyKind, ReplierLedger};
pub use pool::{PooledReq, UnorderedPool};
pub use service::{EchoService, Executed, Service};
pub use trace::{req_key, ProtoEvent};
