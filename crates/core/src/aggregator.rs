//! The HovercRaft++ in-network aggregator (§4, §6.4).
//!
//! A model of the paper's P414 Tofino program: a line-rate packet processor
//! that owns the leader's fan-out/fan-in. It keeps **soft state only** —
//! per-follower `match_idx` (ingress) and `completed` (egress) registers,
//! the current term, commit index, and a `pending` flag — and is flushed on
//! every term change, which is what makes a failed aggregator replaceable by
//! an empty one (§8).
//!
//! Dataplane behaviour (Figure 6):
//!
//! * **AppendEntries from the leader** → forwarded to every follower
//!   (multicast group excluding the sender). If the announced log index does
//!   not exceed what is already committed, the `pending` flag is set so the
//!   next reply still triggers an `AGG_COMMIT` (keeping followers' election
//!   timers quiet).
//! * **Successful AppendEntries replies from followers** → absorbed into
//!   the registers; when a quorum matches a new index the aggregator
//!   multicasts `AGG_COMMIT` carrying the commit index and the register
//!   snapshot; otherwise the reply is dropped (never reaching the leader —
//!   that is the whole point).
//! * **VoteProbe from a new leader** → flush, answer `VoteProbeRep`. The
//!   aggregator never votes (§6.4).
//!
//! The struct is pure (no I/O): [`Aggregator::on_packet`] maps one incoming
//! packet to a list of `(dst, msg)` emissions. The testbed adapts it onto
//! the simulator's switch pipeline.

use fxhash::FxHashMap;

use raft::{LogIndex, Message, RaftId, Term};

use crate::cmd::Cmd;
use crate::msg::{AggStatus, WireMsg};

/// Activity counters (test/observability only; a real ASIC has none).
#[derive(Clone, Copy, Debug, Default)]
pub struct AggStats {
    /// AppendEntries requests fanned out.
    pub fanouts: u64,
    /// Follower replies absorbed.
    pub replies_absorbed: u64,
    /// AGG_COMMIT messages multicast.
    pub commits_sent: u64,
    /// State flushes (term changes / probes).
    pub flushes: u64,
}

/// The in-network aggregation program. `Clone` supports explicit-state
/// model checking (the checker snapshots whole system states).
#[derive(Clone)]
pub struct Aggregator {
    /// All group members (node addresses double as Raft ids).
    members: Vec<RaftId>,
    /// Quorum of the full group (members / 2 + 1).
    quorum: usize,
    term: Term,
    leader: Option<RaftId>,
    /// Ingress registers: per-follower match index.
    match_idx: FxHashMap<RaftId, LogIndex>,
    /// Egress registers: per-follower applied ("completed") index.
    completed: FxHashMap<RaftId, LogIndex>,
    commit: LogIndex,
    /// Set when the leader re-announces an already-committed index; forces
    /// an AGG_COMMIT on the next reply (Figure 6 `set_pending`).
    pending: bool,
    last_target: LogIndex,
    stats: AggStats,
}

impl Aggregator {
    /// Creates an aggregator for a group. `members` are the node addresses
    /// of the fault-tolerance group.
    pub fn new(members: Vec<RaftId>) -> Aggregator {
        let quorum = members.len() / 2 + 1;
        Aggregator {
            members,
            quorum,
            term: 0,
            leader: None,
            match_idx: FxHashMap::default(),
            completed: FxHashMap::default(),
            commit: 0,
            pending: false,
            last_target: 0,
            stats: AggStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> AggStats {
        self.stats
    }

    /// Current term the registers belong to.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Current aggregated commit index.
    pub fn commit(&self) -> LogIndex {
        self.commit
    }

    /// Feeds the aggregator's soft state into `h` for model-checker state
    /// fingerprints: node ids pass through `rename`, register maps are
    /// hashed as vectors sorted by the renamed id. `stats` is excluded
    /// (observability only).
    pub fn hash_state(&self, h: &mut dyn std::hash::Hasher, rename: &dyn Fn(RaftId) -> RaftId) {
        let mut members: Vec<RaftId> = self.members.iter().map(|&n| rename(n)).collect();
        members.sort_unstable();
        h.write_usize(members.len());
        for n in members {
            h.write_u32(n);
        }
        h.write_usize(self.quorum);
        h.write_u64(self.term);
        match self.leader {
            Some(l) => {
                h.write_u8(1);
                h.write_u32(rename(l));
            }
            None => h.write_u8(0),
        }
        for regs in [&self.match_idx, &self.completed] {
            let mut rows: Vec<(RaftId, LogIndex)> =
                regs.iter().map(|(&n, &i)| (rename(n), i)).collect();
            rows.sort_unstable();
            h.write_usize(rows.len());
            for (n, i) in rows {
                h.write_u32(n);
                h.write_u64(i);
            }
        }
        h.write_u64(self.commit);
        h.write_u8(self.pending as u8);
        h.write_u64(self.last_target);
    }

    /// Flushes all soft state (device replacement / term change).
    pub fn flush(&mut self) {
        self.match_idx.clear();
        self.completed.clear();
        self.commit = 0;
        self.pending = false;
        self.last_target = 0;
        self.leader = None;
        self.stats.flushes += 1;
    }

    /// Processes one packet addressed to the aggregator; returns the
    /// packets to emit. `src` is the sender's network address.
    pub fn on_packet(&mut self, src: u32, msg: WireMsg) -> Vec<(u32, WireMsg)> {
        match msg {
            WireMsg::Raft(m) => self.on_raft(src, m),
            WireMsg::VoteProbe { term } => {
                // New leader probing: flush and acknowledge (§6.4). The
                // reply does not count as a vote.
                self.flush();
                self.term = term;
                vec![(src, WireMsg::VoteProbeRep { term })]
            }
            // Anything else addressed to the device is dropped.
            _ => Vec::new(),
        }
    }

    fn on_raft(&mut self, src: u32, m: Message<Cmd>) -> Vec<(u32, WireMsg)> {
        match m {
            Message::AppendEntries {
                term,
                leader,
                prev_log_index,
                ref entries,
                ..
            } => {
                if term > self.term {
                    self.flush();
                    self.term = term;
                }
                if term < self.term {
                    return Vec::new(); // stale leader
                }
                self.leader = Some(leader);
                let target = prev_log_index + entries.len() as u64;
                if target <= self.commit || target == self.last_target {
                    // Re-announcement of known ground: make sure an
                    // AGG_COMMIT still goes out so followers hear from the
                    // "leader" and elections stay quiet.
                    self.pending = true;
                }
                self.last_target = self.last_target.max(target);
                self.stats.fanouts += 1;
                // Fan out to every member except the leader.
                self.members
                    .iter()
                    .copied()
                    .filter(|&n| n != leader)
                    .map(|n| {
                        (
                            n,
                            WireMsg::Raft(Message::AppendEntries {
                                term,
                                leader,
                                prev_log_index,
                                prev_log_term: match &m {
                                    Message::AppendEntries { prev_log_term, .. } => *prev_log_term,
                                    _ => unreachable!(),
                                },
                                entries: entries.clone(),
                                leader_commit: match &m {
                                    Message::AppendEntries { leader_commit, .. } => *leader_commit,
                                    _ => unreachable!(),
                                },
                            }),
                        )
                    })
                    .collect()
            }
            Message::AppendEntriesReply {
                term,
                success,
                match_index,
                applied_index,
                from,
                ..
            } => {
                let _ = src;
                if term != self.term || !success || self.leader.is_none() {
                    // Failed appends never come here (followers send them
                    // directly to the leader), stale terms are dropped, and
                    // a pristine device that no leader has adopted yet
                    // absorbs nothing.
                    return Vec::new();
                }
                self.stats.replies_absorbed += 1;
                let m_ent = self.match_idx.entry(from).or_insert(0);
                *m_ent = (*m_ent).max(match_index);
                let c_ent = self.completed.entry(from).or_insert(0);
                *c_ent = (*c_ent).max(applied_index);

                // Quorum check: the leader trivially holds every announced
                // entry, so `quorum - 1` follower matches suffice.
                let mut follower_matches: Vec<LogIndex> = self
                    .members
                    .iter()
                    .filter(|&&n| Some(n) != self.leader)
                    .map(|n| self.match_idx.get(n).copied().unwrap_or(0))
                    .collect();
                follower_matches.sort_unstable_by(|a, b| b.cmp(a));
                let needed = self.quorum - 1;
                let candidate = if needed == 0 {
                    self.last_target
                } else {
                    follower_matches.get(needed - 1).copied().unwrap_or(0)
                };

                if candidate > self.commit {
                    self.commit = candidate;
                    self.pending = false;
                    self.stats.commits_sent += 1;
                    self.emit_commit()
                } else if self.pending {
                    self.pending = false;
                    self.stats.commits_sent += 1;
                    self.emit_commit()
                } else {
                    Vec::new() // absorbed: the leader never sees it
                }
            }
            // Vote traffic is never addressed to the aggregator.
            _ => Vec::new(),
        }
    }

    fn emit_commit(&self) -> Vec<(u32, WireMsg)> {
        let status: Vec<AggStatus> = self
            .members
            .iter()
            .filter(|&&n| Some(n) != self.leader)
            .map(|&n| AggStatus {
                node: n,
                match_index: self.match_idx.get(&n).copied().unwrap_or(0),
                applied_index: self.completed.get(&n).copied().unwrap_or(0),
            })
            .collect();
        self.members
            .iter()
            .map(|&n| {
                (
                    n,
                    WireMsg::AggCommit {
                        term: self.term,
                        commit: self.commit,
                        status: status.clone(),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::{EntryDesc, OpKind};
    use r2p2::ReqId;
    use raft::Entry;

    fn ae(term: Term, prev: LogIndex, n: usize, commit: LogIndex) -> WireMsg {
        let entries = (0..n)
            .map(|i| Entry {
                term,
                index: prev + 1 + i as u64,
                cmd: Cmd::meta(EntryDesc::new(
                    ReqId::new(9, 9, (prev + 1 + i as u64) as u16),
                    0,
                    OpKind::ReadWrite,
                )),
            })
            .collect();
        WireMsg::Raft(Message::AppendEntries {
            term,
            leader: 0,
            prev_log_index: prev,
            prev_log_term: term,
            entries,
            leader_commit: commit,
        })
    }

    fn reply(term: Term, m: LogIndex, applied: LogIndex, from: RaftId) -> WireMsg {
        WireMsg::Raft(Message::AppendEntriesReply {
            term,
            success: true,
            match_index: m,
            conflict_index: 0,
            applied_index: applied,
            from,
        })
    }

    #[test]
    fn fans_out_to_all_followers_but_not_leader() {
        let mut a = Aggregator::new(vec![0, 1, 2]);
        let out = a.on_packet(0, ae(1, 0, 1, 0));
        let dsts: Vec<u32> = out.iter().map(|(d, _)| *d).collect();
        assert_eq!(dsts, vec![1, 2]);
    }

    #[test]
    fn absorbs_minority_reply_and_commits_on_quorum() {
        let mut a = Aggregator::new(vec![0, 1, 2, 3, 4]); // quorum 3: leader + 2
        a.on_packet(0, ae(1, 0, 1, 0));
        let out = a.on_packet(1, reply(1, 1, 0, 1));
        assert!(out.is_empty(), "first reply absorbed");
        let out = a.on_packet(2, reply(1, 1, 0, 2));
        // Second follower match ⇒ quorum ⇒ AGG_COMMIT to all 5 members.
        assert_eq!(out.len(), 5);
        for (_, m) in &out {
            match m {
                WireMsg::AggCommit { commit, term, .. } => {
                    assert_eq!(*commit, 1);
                    assert_eq!(*term, 1);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(a.commit(), 1);
        // A third, late reply is silently absorbed.
        let out = a.on_packet(3, reply(1, 1, 0, 3));
        assert!(out.is_empty());
    }

    #[test]
    fn commit_is_monotone_per_term() {
        let mut a = Aggregator::new(vec![0, 1, 2]);
        a.on_packet(0, ae(1, 0, 2, 0));
        let out = a.on_packet(1, reply(1, 2, 0, 1));
        assert!(!out.is_empty());
        assert_eq!(a.commit(), 2);
        // A slow follower's older match cannot regress the commit.
        let out = a.on_packet(2, reply(1, 1, 0, 2));
        assert!(out.is_empty());
        assert_eq!(a.commit(), 2);
    }

    #[test]
    fn higher_term_flushes_state() {
        let mut a = Aggregator::new(vec![0, 1, 2]);
        a.on_packet(0, ae(1, 0, 1, 0));
        a.on_packet(1, reply(1, 1, 1, 1));
        assert_eq!(a.commit(), 1);
        a.on_packet(2, ae(2, 1, 1, 1)); // new leader, term 2
        assert_eq!(a.commit(), 0, "registers flushed");
        assert_eq!(a.term(), 2);
        // Stale term-1 replies are now ignored.
        let out = a.on_packet(1, reply(1, 2, 0, 1));
        assert!(out.is_empty());
        assert_eq!(a.commit(), 0);
    }

    #[test]
    fn pending_reannouncement_triggers_commit_echo() {
        let mut a = Aggregator::new(vec![0, 1, 2]);
        a.on_packet(0, ae(1, 0, 1, 0));
        a.on_packet(1, reply(1, 1, 0, 1));
        assert_eq!(a.commit(), 1);
        // Leader re-announces the same index (empty heartbeat at target 1).
        a.on_packet(0, ae(1, 1, 0, 1));
        // The next reply does not advance commit, but pending forces an
        // AGG_COMMIT so followers keep hearing progress.
        let out = a.on_packet(2, reply(1, 1, 0, 2));
        assert!(
            out.iter()
                .any(|(_, m)| matches!(m, WireMsg::AggCommit { commit: 1, .. })),
            "pending echo"
        );
    }

    #[test]
    fn vote_probe_flushes_and_answers_without_voting() {
        let mut a = Aggregator::new(vec![0, 1, 2]);
        a.on_packet(0, ae(1, 0, 1, 0));
        a.on_packet(1, reply(1, 1, 0, 1));
        let out = a.on_packet(2, WireMsg::VoteProbe { term: 5 });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert!(matches!(out[0].1, WireMsg::VoteProbeRep { term: 5 }));
        assert_eq!(a.commit(), 0);
        assert_eq!(a.term(), 5);
    }

    #[test]
    fn agg_commit_carries_register_snapshot() {
        let mut a = Aggregator::new(vec![0, 1, 2]);
        a.on_packet(0, ae(3, 0, 1, 0));
        let out = a.on_packet(1, reply(3, 1, 1, 1));
        let (_, m) = &out[0];
        match m {
            WireMsg::AggCommit { status, .. } => {
                assert_eq!(status.len(), 2, "one row per follower");
                let s1 = status.iter().find(|s| s.node == 1).unwrap();
                assert_eq!(s1.match_index, 1);
                assert_eq!(s1.applied_index, 1);
                let s2 = status.iter().find(|s| s.node == 2).unwrap();
                assert_eq!(s2.match_index, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_replies_are_ignored() {
        let mut a = Aggregator::new(vec![0, 1, 2]);
        a.on_packet(0, ae(1, 0, 1, 0));
        let out = a.on_packet(
            1,
            WireMsg::Raft(Message::AppendEntriesReply {
                term: 1,
                success: false,
                match_index: 0,
                conflict_index: 1,
                applied_index: 0,
                from: 1,
            }),
        );
        assert!(out.is_empty());
        assert_eq!(a.stats().replies_absorbed, 0);
    }
}
