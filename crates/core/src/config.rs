//! HovercRaft deployment configuration.

use crate::policy::PolicyKind;

/// Which protocol variant a node runs — the three replicated setups of the
//  evaluation (§7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Vanilla Raft ported onto R2P2: clients talk to the leader, requests
    /// are replicated inline in AppendEntries, the leader replies.
    Vanilla,
    /// HovercRaft: multicast request replication, metadata-only ordering,
    /// reply and read-only load balancing, bounded queues.
    Hovercraft,
    /// HovercRaft plus the in-network aggregator (§4).
    HovercraftPp,
}

impl Mode {
    /// True for the two modes that separate replication from ordering.
    pub fn is_hovercraft(self) -> bool {
        matches!(self, Mode::Hovercraft | Mode::HovercraftPp)
    }
}

/// Full configuration of one HovercRaft node.
#[derive(Clone, Debug)]
pub struct HcConfig {
    /// The underlying Raft configuration (ids double as network addresses).
    pub raft: raft::Config,
    /// Protocol variant.
    pub mode: Mode,
    /// Bounded-queue bound `B` (§3.4): max assigned-but-unapplied
    /// operations per node.
    pub bound: usize,
    /// Replier-selection policy among eligible nodes (§3.6).
    pub policy: PolicyKind,
    /// Load-balance client replies across the group (§3.3). When false the
    /// leader is always the designated replier (the Figure 7 baseline).
    pub lb_replies: bool,
    /// Execute read-only operations only on the designated replier (§3.5).
    /// When false, read-only operations run on every node like writes.
    pub lb_reads: bool,
    /// Network address of the in-network aggregator (HovercRaft++ only).
    pub agg_addr: Option<u32>,
    /// Network address of the flow-control middlebox, if deployed; repliers
    /// send it a FEEDBACK per completed request (§6.3).
    pub flowctl_addr: Option<u32>,
    /// GC timeout for unordered requests, ns (§5).
    pub gc_timeout_ns: u64,
    /// Retry interval for outstanding recovery requests, ns.
    pub recovery_retry_ns: u64,
    /// Stall-detection timeout, ns (§3.4): a member whose FEEDBACK/applied
    /// progress has not been heard by the leader within this window is
    /// treated as stalled and excluded from replier selection until it
    /// reports progress again.
    pub stall_timeout_ns: u64,
    /// Applied-index horizon between snapshots: once `applied` is this many
    /// entries past the last snapshot, the node serializes its state
    /// machine, compacts the ordering log below the applied index, and
    /// drops the archived bodies the compacted entries referenced. `0`
    /// (the default) disables snapshotting entirely — the log grows without
    /// bound, as before this mechanism existed.
    pub snapshot_interval: u64,
    /// Maximum snapshot bytes per SNAP_CHUNK during follower state
    /// transfer. Transfers are stop-and-wait per chunk, so this bounds both
    /// the in-flight transfer data and the retransmit unit.
    pub snap_chunk_bytes: usize,
}

impl HcConfig {
    /// A configuration with the defaults used throughout the evaluation:
    /// JBSQ policy, B = 128, both load-balancing mechanisms on.
    pub fn new(raft: raft::Config, mode: Mode) -> HcConfig {
        HcConfig {
            raft,
            mode,
            bound: 128,
            policy: PolicyKind::Jbsq,
            lb_replies: mode.is_hovercraft(),
            lb_reads: mode.is_hovercraft(),
            agg_addr: None,
            flowctl_addr: None,
            // Comfortably above any queueing delay the flow-control cap
            // admits; early GC is safe but triggers needless recovery (§5).
            gc_timeout_ns: 500_000_000,   // 500 ms
            recovery_retry_ns: 1_000_000, // 1 ms
            // A few heartbeat intervals: long enough that scheduling jitter
            // never trips it, short enough that a stalled node stops
            // receiving assignments well before its bounded queue fills.
            stall_timeout_ns: 5_000_000, // 5 ms
            snapshot_interval: 0,        // disabled
            snap_chunk_bytes: 16 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(!Mode::Vanilla.is_hovercraft());
        assert!(Mode::Hovercraft.is_hovercraft());
        assert!(Mode::HovercraftPp.is_hovercraft());
    }

    #[test]
    fn defaults_follow_mode() {
        let rc = raft::Config::new(0, vec![0, 1, 2]);
        let v = HcConfig::new(rc.clone(), Mode::Vanilla);
        assert!(!v.lb_replies && !v.lb_reads);
        let h = HcConfig::new(rc, Mode::Hovercraft);
        assert!(h.lb_replies && h.lb_reads);
    }
}
