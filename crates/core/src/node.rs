//! The HovercRaft node: the SMR-aware RPC layer (§3).
//!
//! [`HcNode`] wraps a [`raft::RaftNode`] and implements every HovercRaft
//! mechanism on top of it without touching the consensus core:
//!
//! * client requests arrive over the multicast group and are parked in the
//!   unordered pool; the leader orders them by proposing metadata-only
//!   commands (§3.2);
//! * the leader stamps a designated replier into every entry before first
//!   transmission, honouring the bounded-queue invariant, and only then
//!   raises the raft replication ceiling (§3.3–3.4, §3.6);
//! * committed entries are executed in log order on the application thread;
//!   read-only entries execute only on their replier (§3.5); the replier
//!   sends the client response and a flow-control FEEDBACK;
//! * missing request bodies trigger the recovery protocol (§5);
//! * in HovercRaft++ mode, AppendEntries are routed through the in-network
//!   aggregator and `AGG_COMMIT` messages are folded back into Raft (§4).
//!
//! Like the raft layer, the node is sans-io: every entry point returns
//! [`Output`]s — packets to transmit and work to schedule on the
//! application thread. The simulation harness (or a real runtime) owns the
//! clock and the wires.

use std::collections::VecDeque;
use std::fmt;

use fxhash::{FxHashMap, FxHashSet};

use bytes::{ByteArena, Bytes};
use r2p2::{body_hash, ReqId};
use raft::{Action, LogIndex, Message, RaftId, RaftNode, Role};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cmd::{Cmd, EntryDesc, OpKind};
use crate::config::{HcConfig, Mode};
use crate::msg::{AggStatus, WireMsg};
use crate::policy::ReplierLedger;
use crate::pool::UnorderedPool;
use crate::service::Service;
use crate::trace::ProtoEvent;

/// Bound on the internal protocol-event buffer. Drivers that trace drain it
/// after every entry point, so it stays tiny; drivers that don't (unit
/// tests, benches) must not leak memory, so the oldest events are dropped
/// past this point.
const EVENT_BUF_CAP: usize = 8192;

/// An effect the driver must carry out for the node.
#[derive(Clone, Debug)]
pub enum Output {
    /// Transmit `msg` to network address `dst` (a node or group address in
    /// the deployment's address space).
    Send {
        /// Destination address.
        dst: u32,
        /// The message.
        msg: WireMsg,
    },
    /// Charge `cost_ns` to the application thread, then call
    /// [`HcNode::on_exec_done`] with `index`.
    Execute {
        /// The log entry being applied.
        index: LogIndex,
        /// Application CPU cost.
        cost_ns: u64,
    },
}

/// Counters a node keeps about its own protocol activity (inspected by
/// tests and experiments).
#[derive(Clone, Copy, Debug, Default)]
pub struct HcStats {
    /// Client requests received.
    pub requests: u64,
    /// Client responses sent by this node.
    pub responses: u64,
    /// Operations executed on the application thread.
    pub executed: u64,
    /// Read-only operations skipped because another node is the replier.
    pub ro_skipped: u64,
    /// Recovery requests sent.
    pub recoveries_sent: u64,
    /// Recovery replies served to peers.
    pub recoveries_served: u64,
    /// Entries whose apply stalled on a missing body at least once.
    pub apply_stalls: u64,
    /// Snapshots taken (state serialized + log compacted).
    pub snapshots: u64,
    /// Snapshot state transfers started toward followers (leader side).
    pub transfers: u64,
    /// Snapshot chunks sent (leader side, retransmits included).
    pub chunks_sent: u64,
    /// Snapshots fully received and installed (follower side).
    pub installs: u64,
}

/// Durable per-node state captured across a crash–restart: what a real
/// deployment would have fsynced — the Raft hard state, the log suffix
/// above the last snapshot, the snapshot blob itself, and the incarnation
/// epoch that wrote it all.
#[derive(Clone, Debug)]
pub struct DurableState {
    /// Persisted current term.
    pub term: u64,
    /// Persisted vote in `term`.
    pub voted_for: Option<RaftId>,
    /// Snapshot boundary index (0 = no snapshot was ever taken).
    pub snap_index: LogIndex,
    /// Term of the entry at `snap_index`.
    pub snap_term: u64,
    /// Framed snapshot blob at `snap_index`: the serialized state machine
    /// ([`Service::snapshot`]) plus the dedupe ids the snapshot covers.
    pub snapshot: Bytes,
    /// Log entries above the snapshot boundary.
    pub entries: Vec<raft::Entry<Cmd>>,
    /// Incarnation epoch of the node that wrote this state.
    pub epoch: u64,
}

/// Error from [`HcNode::restore`]: the durable state belongs to a stale
/// incarnation epoch. Restoring from it would silently resurrect state a
/// later incarnation has already superseded, so the restore is refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestoreRejected {
    /// Epoch the offered durable state was written by.
    pub from_epoch: u64,
    /// The incarnation epoch the restore was attempted for.
    pub new_epoch: u64,
}

impl RestoreRejected {
    /// The traced form of this rejection, for drivers to record.
    pub fn event(&self) -> ProtoEvent {
        ProtoEvent::RestoreRejected {
            from_epoch: self.from_epoch,
            new_epoch: self.new_epoch,
        }
    }
}

impl fmt::Display for RestoreRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restore rejected: durable state from epoch {} cannot start incarnation {}",
            self.from_epoch, self.new_epoch
        )
    }
}
impl std::error::Error for RestoreRejected {}

/// A serialized state-machine snapshot held in memory. `data` is the framed
/// blob produced by [`encode_snapshot_blob`] — the service state plus the
/// dedupe-id set covering everything ordered at or below `index` — and is
/// what gets chunked over the wire and persisted in [`DurableState`].
#[derive(Clone)]
struct Snapshot {
    index: LogIndex,
    term: u64,
    data: Bytes,
}

/// Frames a snapshot blob: `[service_len][service][n_ids][packed ids…]`,
/// all integers u64 little-endian. The id set travels *inside* the snapshot
/// because it is exactly the state an installer cannot reconstruct: ids of
/// entries it never received leave no tombstone when its own log compacts,
/// so a covered request parked in its unordered pool would be re-proposed
/// — and re-executed — by a later leader election (§5's new-leader backlog
/// flush), violating exactly-one-reply. The set is bounded: tombstones
/// expire on the pool GC boundary, so it holds at most one GC window of
/// ids plus the entries of the snapshot interval being compacted.
fn encode_snapshot_blob(service: Bytes, mut ids: Vec<ReqId>) -> Bytes {
    ids.sort_unstable();
    ids.dedup();
    let mut buf = Vec::with_capacity(16 + service.len() + 8 * ids.len());
    buf.extend_from_slice(&(service.len() as u64).to_le_bytes());
    buf.extend_from_slice(&service);
    buf.extend_from_slice(&(ids.len() as u64).to_le_bytes());
    for id in &ids {
        buf.extend_from_slice(&id.as_u64().to_le_bytes());
    }
    Bytes::from(buf)
}

/// Inverse of [`encode_snapshot_blob`]. An unframed or truncated blob (the
/// empty default of a node that never snapshotted) degrades to the whole
/// input as service state with no carried ids.
fn decode_snapshot_blob(data: &Bytes) -> (Bytes, Vec<ReqId>) {
    let read_u64 = |off: usize| -> Option<u64> {
        off.checked_add(8)
            .and_then(|end| data.get(off..end))
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    };
    let fallback = || (data.clone(), Vec::new());
    let Some(service_len) = read_u64(0) else {
        return fallback();
    };
    let service_len = service_len as usize;
    let Some(n_ids) = read_u64(8usize.saturating_add(service_len)) else {
        return fallback();
    };
    let Some(tail) = data.get(16usize.saturating_add(service_len)..) else {
        return fallback();
    };
    if tail.len() != (n_ids as usize).saturating_mul(8) {
        return fallback();
    }
    let service = data.slice(8..8 + service_len);
    let ids = tail
        .chunks_exact(8)
        .map(|c| ReqId::from_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
        .collect();
    (service, ids)
}

/// Leader side of one in-flight snapshot transfer (stop-and-wait).
#[derive(Clone)]
struct OutXfer {
    /// The snapshot being streamed (pinned for the transfer's lifetime,
    /// even if a newer snapshot is taken meanwhile — `Bytes` is refcounted).
    snap: Snapshot,
    /// Cumulatively acked byte offset; the next chunk starts here.
    acked: u64,
    /// When the last chunk was sent, for retransmit.
    last_sent: u64,
}

/// Follower side of one in-flight snapshot transfer.
#[derive(Clone)]
struct InXfer {
    snap_index: LogIndex,
    snap_term: u64,
    total: u64,
    buf: Vec<u8>,
    /// When the reassembly buffer last grew; a stream that stalls for a
    /// full retry interval loses the buffer to a competing transfer.
    last_progress: u64,
}

#[derive(Clone)]
struct PendingReply {
    client: u32,
    id: ReqId,
    reply: Option<Bytes>,
    respond: bool,
}

/// A full HovercRaft (or VanillaRaft) server node. `Clone` (for `S:
/// Clone` services) supports explicit-state model checking, which snapshots
/// and branches whole system states.
#[derive(Clone)]
pub struct HcNode<S> {
    cfg: HcConfig,
    raft: RaftNode<Cmd>,
    pool: UnorderedPool,
    ledger: ReplierLedger,
    service: S,
    rng: SmallRng,
    /// Next log index to hand to the application thread.
    next_apply: LogIndex,
    /// Last log index whose execution completed.
    applied: LogIndex,
    pending: FxHashMap<LogIndex, PendingReply>,
    /// Outstanding body recoveries: id → last request time.
    missing: FxHashMap<ReqId, u64>,
    /// HovercRaft++ leader: followers being repaired over direct
    /// point-to-point AppendEntries after a failed append (§5).
    recovering: FxHashSet<RaftId>,
    /// HovercRaft++ leader: the aggregator answered our VoteProbe.
    agg_confirmed: bool,
    /// HovercRaft++ follower: the last AppendEntries arrived via the
    /// aggregator, so successful replies retrace that path.
    last_ae_via_agg: bool,
    stats: HcStats,
    /// Protocol events since the last [`HcNode::drain_events`] call.
    events: VecDeque<ProtoEvent>,
    /// Term of the last election we recorded a trace event for (dedupes the
    /// per-peer RequestVote fan-out into one event).
    last_election_term: u64,
    /// Term of the last Pre-Vote probe we recorded a trace event for
    /// (dedupes the per-peer PreVote fan-out, like `last_election_term`).
    last_prevote_term: u64,
    /// Leader only: members currently considered stalled by the replier
    /// selector (tracked to emit one transition event per episode).
    stalled_members: FxHashSet<RaftId>,
    /// The most recent snapshot taken or installed by this node (serves
    /// restarts and outbound transfers).
    last_snapshot: Option<Snapshot>,
    /// A snapshot captured at issue time (the service has executed exactly
    /// the entries up to its index) but not yet publishable: it becomes
    /// [`Self::last_snapshot`] once `applied` catches up to it. Capturing
    /// at the moment of issue is the only point where the serialized state
    /// corresponds to a known log index — the service runs ahead of
    /// `applied` by the depth of the app-thread pipeline.
    pending_snap: Option<Snapshot>,
    /// Leader only: in-flight outbound snapshot transfers, per follower.
    xfers: FxHashMap<RaftId, OutXfer>,
    /// Follower only: the inbound snapshot transfer being reassembled.
    incoming: Option<InXfer>,
    /// Incarnation epoch: 0 for a fresh node, incremented by every
    /// successful [`HcNode::restore`]. Guards against restoring from a
    /// stale incarnation's durable state.
    epoch: u64,
    /// Reusable raft-action scratch for [`HcNode::with_raft`]: steady-state
    /// message handling produces actions without allocating a `Vec` each.
    acts: Vec<Action<Cmd>>,
}

impl<S: Service> HcNode<S> {
    /// Creates a node. `now` seeds the election timer of the underlying
    /// Raft instance.
    pub fn new(cfg: HcConfig, service: S, now: u64) -> Self {
        let raft = RaftNode::new(cfg.raft.clone(), now);
        let rng = SmallRng::seed_from_u64(cfg.raft.seed ^ 0x486f_7665_7263_5261);
        HcNode {
            cfg,
            raft,
            pool: UnorderedPool::new(),
            ledger: ReplierLedger::new(),
            service,
            rng,
            next_apply: 1,
            applied: 0,
            pending: FxHashMap::default(),
            missing: FxHashMap::default(),
            recovering: FxHashSet::default(),
            agg_confirmed: false,
            last_ae_via_agg: false,
            stats: HcStats::default(),
            events: VecDeque::new(),
            last_election_term: 0,
            last_prevote_term: 0,
            stalled_members: FxHashSet::default(),
            last_snapshot: None,
            pending_snap: None,
            xfers: FxHashMap::default(),
            incoming: None,
            epoch: 0,
            acts: Vec::new(),
        }
    }

    /// Captures the durable state a crash–restart would recover from: Raft
    /// hard state, the log suffix above the snapshot boundary, the snapshot
    /// blob, and this incarnation's epoch.
    pub fn durable_state(&self) -> DurableState {
        let log = self.raft.log();
        DurableState {
            term: self.raft.term(),
            voted_for: self.raft.voted_for(),
            snap_index: log.snapshot_index(),
            snap_term: log.snapshot_term(),
            snapshot: self
                .last_snapshot
                .as_ref()
                .map(|s| s.data.clone())
                .unwrap_or_default(),
            entries: log.range(log.first_index(), log.last_index()).to_vec(),
            epoch: self.epoch,
        }
    }

    /// Feeds the node's full protocol state into `h` for model-checker
    /// state fingerprints. Conventions: node ids pass through `rename`
    /// (identity for plain hashing, a permutation for symmetry reduction),
    /// id-keyed maps are hashed as vectors sorted by the renamed key,
    /// timestamps are hashed relative to `now`, and the rng's raw state
    /// words are included (the seeded stream is part of the deterministic
    /// system definition). Excluded as trace/observability-only: `stats`,
    /// `events`, `last_election_term`, `last_prevote_term`,
    /// `stalled_members`; `cfg` is static per model scope.
    pub fn hash_state(
        &self,
        now: u64,
        h: &mut dyn std::hash::Hasher,
        rename: &dyn Fn(RaftId) -> RaftId,
    ) {
        self.raft.hash_state(now, h, rename);
        self.pool.hash_state(now, h);
        self.ledger.hash_state(now, h, rename);
        let snap = self.service.snapshot();
        h.write_usize(snap.len());
        h.write(&snap);
        for w in self.rng.state_words() {
            h.write_u64(w);
        }
        h.write_u64(self.next_apply);
        h.write_u64(self.applied);
        let mut pend: Vec<(&LogIndex, &PendingReply)> = self.pending.iter().collect();
        pend.sort_unstable_by_key(|&(&i, _)| i);
        h.write_usize(pend.len());
        for (&idx, p) in pend {
            h.write_u64(idx);
            h.write_u32(p.client);
            h.write_u64(p.id.as_u64());
            match &p.reply {
                Some(b) => {
                    h.write_u8(1);
                    h.write(b);
                }
                None => h.write_u8(0),
            }
            h.write_u8(p.respond as u8);
        }
        let mut miss: Vec<(u64, u64)> = self
            .missing
            .iter()
            .map(|(&id, &t)| (id.as_u64(), now.saturating_sub(t)))
            .collect();
        miss.sort_unstable();
        h.write_usize(miss.len());
        for (id, age) in miss {
            h.write_u64(id);
            h.write_u64(age);
        }
        let mut rec: Vec<RaftId> = self.recovering.iter().map(|&n| rename(n)).collect();
        rec.sort_unstable();
        h.write_usize(rec.len());
        for n in rec {
            h.write_u32(n);
        }
        h.write_u8(self.agg_confirmed as u8);
        h.write_u8(self.last_ae_via_agg as u8);
        let hash_snap = |h: &mut dyn std::hash::Hasher, s: &Option<Snapshot>| match s {
            Some(s) => {
                h.write_u8(1);
                h.write_u64(s.index);
                h.write_u64(s.term);
                h.write(&s.data);
            }
            None => h.write_u8(0),
        };
        hash_snap(h, &self.last_snapshot);
        hash_snap(h, &self.pending_snap);
        let mut xf: Vec<(RaftId, &OutXfer)> =
            self.xfers.iter().map(|(&n, x)| (rename(n), x)).collect();
        xf.sort_unstable_by_key(|&(n, _)| n);
        h.write_usize(xf.len());
        for (n, x) in xf {
            h.write_u32(n);
            h.write_u64(x.snap.index);
            h.write_u64(x.snap.term);
            h.write_u64(x.acked);
            h.write_u64(now.saturating_sub(x.last_sent));
        }
        match &self.incoming {
            Some(x) => {
                h.write_u8(1);
                h.write_u64(x.snap_index);
                h.write_u64(x.snap_term);
                h.write_u64(x.total);
                h.write(&x.buf);
                h.write_u64(now.saturating_sub(x.last_progress));
            }
            None => h.write_u8(0),
        }
        h.write_u64(self.epoch);
    }

    /// Rebuilds a node after a crash–restart from its durable state.
    /// The state machine resumes from the snapshot (if any) and committed
    /// entries above it re-execute; everything volatile — the unordered
    /// pool, the replier ledger, the commit index — comes back empty, and
    /// bodies lost with the old pool are re-fetched through the recovery
    /// protocol (§5).
    ///
    /// `new_epoch` must be exactly `durable.epoch + 1`: each restart is one
    /// incarnation, and restoring from any other epoch's state (a stale
    /// copy from two crashes ago, or a future epoch that cannot exist)
    /// is rejected with [`RestoreRejected`] instead of silently
    /// reinitializing. Drivers should trace [`RestoreRejected::event`].
    pub fn restore(
        cfg: HcConfig,
        service: S,
        now: u64,
        durable: DurableState,
        new_epoch: u64,
    ) -> Result<Self, RestoreRejected> {
        if new_epoch != durable.epoch + 1 {
            return Err(RestoreRejected {
                from_epoch: durable.epoch,
                new_epoch,
            });
        }
        let mut node = HcNode::new(cfg, service, now);
        node.epoch = new_epoch;
        node.raft = RaftNode::restore(
            node.cfg.raft.clone(),
            now,
            durable.term,
            durable.voted_for,
            durable.snap_index,
            durable.snap_term,
            durable.entries,
        );
        if durable.snap_index > 0 {
            let (service_blob, covered) = decode_snapshot_blob(&durable.snapshot);
            node.service.restore(&service_blob);
            // Re-seed the snapshot's dedupe tombstones into the fresh pool:
            // late duplicates of covered requests may still be in flight
            // and must not be re-ordered by this incarnation.
            node.pool.seed_tombstones(&covered, now);
            node.applied = durable.snap_index;
            node.next_apply = durable.snap_index + 1;
            node.last_snapshot = Some(Snapshot {
                index: durable.snap_index,
                term: durable.snap_term,
                data: durable.snapshot,
            });
        }
        Ok(node)
    }

    fn push_event(&mut self, ev: ProtoEvent) {
        if self.events.len() == EVENT_BUF_CAP {
            self.events.pop_front();
        }
        self.events.push_back(ev);
    }

    // ---- accessors ---------------------------------------------------------

    /// This node's id (== its unicast network address).
    pub fn id(&self) -> RaftId {
        self.raft.id()
    }
    /// True if this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.raft.is_leader()
    }
    /// Current role.
    pub fn role(&self) -> Role {
        self.raft.role()
    }
    /// The underlying Raft instance (read-only).
    pub fn raft(&self) -> &RaftNode<Cmd> {
        &self.raft
    }
    /// Index of the last operation whose execution completed locally.
    pub fn applied_index(&self) -> LogIndex {
        self.applied
    }
    /// Protocol activity counters.
    pub fn stats(&self) -> HcStats {
        self.stats
    }
    /// The node's configuration.
    pub fn config(&self) -> &HcConfig {
        &self.cfg
    }
    /// The application service (e.g. to inspect state in tests).
    pub fn service(&self) -> &S {
        &self.service
    }
    /// Mutable access to the application service.
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }
    /// Whether the aggregator is confirmed live for this term (HC++).
    pub fn aggregator_confirmed(&self) -> bool {
        self.agg_confirmed
    }
    /// This node's incarnation epoch (0 = never restarted).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
    /// Index covered by the last snapshot taken or installed (0 = none).
    pub fn snapshot_index(&self) -> LogIndex {
        self.last_snapshot.as_ref().map_or(0, |s| s.index)
    }
    /// The unordered pool (read-only; tests and figures inspect retained
    /// bodies and tombstones to chart the dual compaction schedule).
    pub fn pool(&self) -> &UnorderedPool {
        &self.pool
    }
    /// Outstanding replier-queue depth for `node` (leader only; §3.6).
    pub fn queue_depth(&self, node: RaftId) -> usize {
        self.ledger.depth(node)
    }
    /// Takes the protocol events recorded since the last call, oldest
    /// first, without allocating. Drivers that trace should consume this
    /// after every entry point; events past an internal bound are dropped
    /// oldest-first.
    pub fn drain_events(&mut self) -> impl Iterator<Item = ProtoEvent> + '_ {
        self.events.drain(..)
    }
    /// Mutable access to the underlying Raft instance.
    ///
    /// This exists for fault-injection and invariant-checker meta-tests
    /// (e.g. corrupting a replier field to prove the checker fires); the
    /// protocol itself never needs it.
    #[doc(hidden)]
    pub fn raft_mut(&mut self) -> &mut RaftNode<Cmd> {
        &mut self.raft
    }
    /// Mutable access to the replier ledger — test support, like
    /// [`HcNode::raft_mut`].
    #[doc(hidden)]
    pub fn ledger_mut(&mut self) -> &mut ReplierLedger {
        &mut self.ledger
    }

    // ---- entry points ------------------------------------------------------

    /// Handles one incoming message; `src` is the sender's network address.
    /// Handles one incoming message; `src` is the sender's network address.
    /// Outputs are appended to `out`, a caller-owned scratch buffer reused
    /// across calls so the steady state never allocates for outputs.
    pub fn on_message(
        &mut self,
        src: u32,
        msg: WireMsg,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        match msg {
            WireMsg::Request { id, kind, body } => {
                self.on_request(id, kind, body, now, out, arena);
            }
            WireMsg::Raft(m) => self.on_raft(src, m, now, out, arena),
            WireMsg::RecoveryReq { id } => {
                if let Some((kind, body)) = self.pool.get(id).map(|r| (r.kind, r.body.clone())) {
                    self.stats.recoveries_served += 1;
                    self.push_event(ProtoEvent::RecoveryServed { id, to: src });
                    out.push(Output::Send {
                        dst: src,
                        msg: WireMsg::RecoveryRep { id, kind, body },
                    });
                } else if (self.last_snapshot.is_some() || self.raft.log().snapshot_index() > 0)
                    && src != self.id()
                    && self.cfg.raft.members.contains(&src)
                {
                    // The body is gone — compacted below the snapshot
                    // horizon (everywhere, if it is gone here). Per-request
                    // recovery can never serve this requester again; stream
                    // the snapshot instead, which jumps it past the horizon
                    // entirely. Any replica can serve this (§5): snapshots
                    // are taken at identical indexes from an identical
                    // deterministic apply sequence, so a follower's snapshot
                    // is as good as the leader's — and the requester may
                    // *be* the leader (a rejoined node can win an election
                    // on log completeness while still missing compacted
                    // bodies; only its peers can heal it). A requester that
                    // turns out to be already caught up acks the transfer
                    // complete immediately.
                    self.ensure_transfer(src, now, out);
                }
            }
            WireMsg::RecoveryRep { id, kind, body } => {
                if self.missing.remove(&id).is_some() {
                    self.push_event(ProtoEvent::RecoveryCompleted { id });
                }
                self.pool.insert_recovered(id, kind, body, now);
                self.try_apply(now, out, arena);
            }
            WireMsg::AggCommit {
                term,
                commit,
                status,
            } => self.on_agg_commit(term, commit, status, now, out, arena),
            WireMsg::VoteProbeRep { term } => {
                if self.is_leader() && term == self.raft.term() {
                    self.agg_confirmed = true;
                }
            }
            WireMsg::SnapChunk {
                term,
                from,
                snap_index,
                snap_term,
                offset,
                total,
                data,
            } => {
                self.on_snap_chunk(
                    term, from, snap_index, snap_term, offset, total, data, now, out, arena,
                );
            }
            WireMsg::SnapAck {
                term,
                snap_index,
                next_offset,
                from,
            } => {
                self.on_snap_ack(term, snap_index, next_offset, from, now, out, arena);
            }
            // Servers are not the audience for these.
            WireMsg::Response { .. }
            | WireMsg::Nack { .. }
            | WireMsg::Feedback
            | WireMsg::VoteProbe { .. } => {}
        }
    }

    /// Periodic maintenance: Raft ticks (elections/heartbeats), pool GC,
    /// recovery retries, and announcement retries. Call a few times per
    /// Raft heartbeat interval.
    pub fn tick(&mut self, now: u64, out: &mut Vec<Output>, arena: &mut ByteArena) {
        self.with_raft(|r, a| r.tick_into(now, a), now, out, arena);
        self.pool.gc(now, self.cfg.gc_timeout_ns);
        self.retry_recoveries(now, out);
        self.retry_transfers(now, out);
        // An inbound transfer overtaken by ordinary replication (we applied
        // past its horizon) will never install; drop the buffer.
        if self
            .incoming
            .as_ref()
            .is_some_and(|x| x.snap_index <= self.applied)
        {
            self.incoming = None;
        }
        self.try_announce(now, out, arena);
    }

    /// The application thread finished executing entry `index`. Outputs are
    /// appended to `out` (see [`HcNode::on_message`]).
    pub fn on_exec_done(
        &mut self,
        index: LogIndex,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        if index <= self.applied {
            // A snapshot install jumped the applied cursor past this
            // execution while it sat on the app thread. Its effects are
            // subsumed by the restored snapshot and its reply duty was
            // voided by the install; completing it must not regress
            // `applied` (or re-answer).
            return;
        }
        debug_assert_eq!(index, self.applied + 1, "app thread must be FIFO");
        self.applied = index;
        self.raft.set_applied(index);
        if self.is_leader() {
            self.ledger.observe_applied(self.id(), index);
            self.try_announce(now, out, arena);
        }
        if let Some(p) = self.pending.remove(&index) {
            if p.respond {
                self.stats.responses += 1;
                self.push_event(ProtoEvent::ReplySent {
                    index,
                    id: p.id,
                    to: p.client,
                });
                out.push(Output::Send {
                    dst: p.client,
                    msg: WireMsg::Response {
                        id: p.id,
                        body: p.reply.unwrap_or_default(),
                    },
                });
                if let Some(fc) = self.cfg.flowctl_addr {
                    self.push_event(ProtoEvent::FeedbackSent { index });
                    out.push(Output::Send {
                        dst: fc,
                        msg: WireMsg::Feedback,
                    });
                }
            }
        }
        self.maybe_snapshot(now);
    }

    // ---- client requests ---------------------------------------------------

    fn on_request(
        &mut self,
        id: ReqId,
        kind: OpKind,
        body: Bytes,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        self.stats.requests += 1;
        let hash = body_hash(&body);
        match self.cfg.mode {
            Mode::Vanilla => {
                if !self.is_leader() {
                    // Clients are expected to target the leader; NACK so the
                    // client can rediscover it.
                    self.push_event(ProtoEvent::NackSent { id });
                    out.push(Output::Send {
                        dst: id.src_ip,
                        msg: WireMsg::Nack { id },
                    });
                    return;
                }
                // Client retransmissions must not be ordered twice; the
                // archive doubles as the leader's dedupe set in this mode.
                if self.pool.is_archived(id) {
                    return;
                }
                let mut desc = EntryDesc::new(id, hash, kind);
                // Vanilla Raft: the leader answers everything.
                desc.replier = Some(self.id());
                if let Ok(index) = self.raft.propose(Cmd::full(desc, body.clone())) {
                    self.push_event(ProtoEvent::Proposed { index, id });
                    self.pool.insert(id, kind, body, now);
                    self.pool.mark_ordered(id);
                    self.with_raft(|r, a| r.pump_into(now, a), now, out, arena);
                }
            }
            Mode::Hovercraft | Mode::HovercraftPp => {
                // Duplicate suppression: a request already bound to a log
                // slot lives in the archive.
                if self.pool.is_archived(id) {
                    return;
                }
                // Every node parks the multicast request; only the leader
                // orders it.
                self.pool.insert(id, kind, body, now);
                if self.is_leader() {
                    let desc = EntryDesc::new(id, hash, kind);
                    if let Ok(index) = self.raft.propose(Cmd::meta(desc)) {
                        self.push_event(ProtoEvent::Proposed { index, id });
                        self.pool.mark_ordered(id);
                        self.try_announce(now, out, arena);
                    }
                }
            }
        }
    }

    // ---- raft plumbing ------------------------------------------------------

    fn on_raft(
        &mut self,
        src: u32,
        m: Message<Cmd>,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        // Guard: ignore echoes of our own AppendEntries (safety against any
        // reflected copy of a message we originated).
        if let Message::AppendEntries { leader, .. } = &m {
            if *leader == self.id() {
                return;
            }
            // Remember the fan-out path so successful replies retrace it
            // (aggregator vs direct, §4).
            self.last_ae_via_agg = Some(src) == self.cfg.agg_addr;
        }
        // Follower side, HovercRaft modes: entries are metadata-only; check
        // body availability and fire recovery for gaps (§3.2/§5).
        if self.cfg.mode.is_hovercraft() {
            if let Message::AppendEntries {
                entries, leader, ..
            } = &m
            {
                for e in entries {
                    let id = e.cmd.desc.id;
                    if !self.pool.mark_ordered(id) && !self.missing.contains_key(&id) {
                        self.stats.recoveries_sent += 1;
                        self.missing.insert(id, now);
                        self.push_event(ProtoEvent::RecoveryRequested { id, to: *leader });
                        out.push(Output::Send {
                            dst: *leader,
                            msg: WireMsg::RecoveryReq { id },
                        });
                    }
                }
            }
        }
        // Leader side: fold the applied index and recovery bookkeeping out
        // of replies before the core consumes them.
        if let Message::AppendEntriesReply {
            success,
            match_index,
            applied_index,
            from,
            term,
            ..
        } = &m
        {
            if self.is_leader() && *term == self.raft.term() {
                self.ledger.observe_applied(*from, *applied_index);
                self.ledger.note_heard(*from, now);
                self.push_event(ProtoEvent::AppendAcked {
                    from: *from,
                    success: *success,
                    match_index: *match_index,
                });
                if self.cfg.mode == Mode::HovercraftPp {
                    if !*success {
                        self.recovering.insert(*from);
                    } else if *match_index >= self.raft.announced_index() {
                        self.recovering.remove(from);
                    }
                }
            }
        }
        let from = Self::raft_peer_of(src, &m);
        self.with_raft(|r, a| r.step_into(from, m, now, a), now, out, arena);
        self.try_announce(now, out, arena);
    }

    /// The Raft-level peer a message is from. Replies carry an explicit
    /// `from` (they may arrive via the aggregator); requests are attributed
    /// to their protocol-level originator.
    fn raft_peer_of(src: u32, m: &Message<Cmd>) -> RaftId {
        match m {
            Message::AppendEntriesReply { from, .. } => *from,
            Message::AppendEntries { leader, .. } => *leader,
            Message::RequestVote { candidate, .. } => *candidate,
            Message::PreVote { candidate, .. } => *candidate,
            Message::RequestVoteReply { .. } | Message::PreVoteReply { .. } => src,
        }
    }

    fn on_agg_commit(
        &mut self,
        term: u64,
        commit: LogIndex,
        status: Vec<AggStatus>,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        if term != self.raft.term() {
            return;
        }
        if self.is_leader() {
            // Fold the register snapshot back into Raft as the per-follower
            // replies the aggregator absorbed (§6.4: the aggregator is part
            // of the leader; this reconstruction costs no wire messages).
            for s in status {
                self.ledger.observe_applied(s.node, s.applied_index);
                self.ledger.note_heard(s.node, now);
                self.push_event(ProtoEvent::AppendAcked {
                    from: s.node,
                    success: true,
                    match_index: s.match_index,
                });
                let synthetic: Message<Cmd> = Message::AppendEntriesReply {
                    term,
                    success: true,
                    match_index: s.match_index,
                    conflict_index: 0,
                    applied_index: s.applied_index,
                    from: s.node,
                };
                self.with_raft(
                    |r, a| r.step_into(s.node, synthetic, now, a),
                    now,
                    out,
                    arena,
                );
            }
            self.try_announce(now, out, arena);
        } else {
            self.with_raft(|r, a| r.observe_commit_into(commit, a), now, out, arena);
        }
    }

    /// Runs `f` against the raft core with the node's reusable action
    /// scratch, then drains the produced actions. Re-entrant paths
    /// (drain → became-leader → announce → pump) see an empty buffer via
    /// `std::mem::take` and fall back to a fresh allocation — rare enough
    /// (role changes only) that steady state never allocates here.
    fn with_raft(
        &mut self,
        f: impl FnOnce(&mut RaftNode<Cmd>, &mut Vec<Action<Cmd>>),
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        let mut acts = std::mem::take(&mut self.acts);
        f(&mut self.raft, &mut acts);
        self.drain(&mut acts, now, out, arena);
        acts.clear();
        self.acts = acts;
    }

    /// Applies raft actions: routes sends (aggregator vs point-to-point),
    /// reacts to commits and role changes.
    fn drain(
        &mut self,
        actions: &mut Vec<Action<Cmd>>,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        // Collect AppendEntries so HC++ can deduplicate the fan-out.
        let mut appends: Vec<(RaftId, Message<Cmd>)> = Vec::new();
        for a in actions.drain(..) {
            match a {
                Action::Send { to, msg } => {
                    match &msg {
                        Message::RequestVote { term, .. } if *term != self.last_election_term => {
                            // One event per election, not per solicited peer.
                            self.last_election_term = *term;
                            self.push_event(ProtoEvent::ElectionStarted { term: *term });
                        }
                        Message::PreVote { term, .. } if *term != self.last_prevote_term => {
                            self.last_prevote_term = *term;
                            self.push_event(ProtoEvent::PreVoteStarted { term: *term });
                        }
                        Message::AppendEntries {
                            entries,
                            leader_commit,
                            ..
                        } if !self.use_aggregator(to) => {
                            self.push_event(ProtoEvent::AppendSent {
                                dst: to,
                                entries: entries.len() as u64,
                                commit: *leader_commit,
                            });
                        }
                        _ => {}
                    }
                    match &msg {
                        Message::AppendEntries { .. } if self.use_aggregator(to) => {
                            appends.push((to, msg));
                        }
                        Message::AppendEntriesReply { success, .. }
                            if self.reply_via_aggregator(*success) =>
                        {
                            out.push(Output::Send {
                                dst: self.cfg.agg_addr.expect("checked by predicate"),
                                msg: WireMsg::Raft(msg),
                            });
                        }
                        _ => out.push(Output::Send {
                            dst: to,
                            msg: WireMsg::Raft(msg),
                        }),
                    }
                }
                Action::Commit { upto } => {
                    self.push_event(ProtoEvent::CommitAdvanced { to: upto });
                    self.try_apply(now, out, arena);
                }
                Action::BecameLeader { term } => {
                    self.push_event(ProtoEvent::BecameLeader { term });
                    self.on_became_leader(now, out, arena);
                }
                Action::BecameFollower { term } => {
                    self.push_event(ProtoEvent::BecameFollower { term });
                    self.ledger.reset();
                    self.stalled_members.clear();
                    self.recovering.clear();
                    self.agg_confirmed = false;
                    self.xfers.clear();
                }
                Action::NeedsSnapshot { to } => {
                    self.ensure_transfer(to, now, out);
                }
                Action::SaveHardState { .. } => {}
            }
        }
        self.route_appends(appends, out);
    }

    /// True when an AppendEntries to `to` should go through the aggregator.
    fn use_aggregator(&self, to: RaftId) -> bool {
        self.cfg.mode == Mode::HovercraftPp
            && self.agg_confirmed
            && self.cfg.agg_addr.is_some()
            && !self.recovering.contains(&to)
            && self.commit_settled_in_term()
    }

    /// Aggregator safety gate: the device commits by counting matches and
    /// cannot see entry terms, so the leader only routes through it once its
    /// commit index points at an entry of its own term (or the log is
    /// empty). Above such a point every entry is current-term, which makes
    /// match-counting equivalent to Raft's commit rule (§5.4.2 restriction).
    fn commit_settled_in_term(&self) -> bool {
        let c = self.raft.commit_index();
        (c == 0 && self.raft.log().last_index() == 0)
            || self.raft.log().term_at(c) == Some(self.raft.term())
    }

    /// Followers return successful AppendEntries replies to whatever device
    /// fanned the request out; failures always go straight to the leader so
    /// it can repair us point-to-point (§5).
    fn reply_via_aggregator(&self, success: bool) -> bool {
        self.cfg.mode == Mode::HovercraftPp
            && success
            && self.last_ae_via_agg
            && self.cfg.agg_addr.is_some()
    }

    /// Sends collected AppendEntries: one aggregator copy when every healthy
    /// follower would receive an identical message, individual unicasts
    /// otherwise (divergent followers fail the append and enter recovery,
    /// which is safe — appends are idempotent).
    fn route_appends(&mut self, appends: Vec<(RaftId, Message<Cmd>)>, out: &mut Vec<Output>) {
        if appends.is_empty() {
            return;
        }
        let identical = appends.windows(2).all(|w| w[0].1 == w[1].1);
        if identical {
            let (_, msg) = appends.into_iter().next().expect("nonempty");
            let agg = self.cfg.agg_addr.expect("HC++ mode");
            if let Message::AppendEntries {
                entries,
                leader_commit,
                ..
            } = &msg
            {
                self.push_event(ProtoEvent::AppendSent {
                    dst: agg,
                    entries: entries.len() as u64,
                    commit: *leader_commit,
                });
            }
            out.push(Output::Send {
                dst: agg,
                msg: WireMsg::Raft(msg),
            });
        } else {
            for (to, msg) in appends {
                if let Message::AppendEntries {
                    entries,
                    leader_commit,
                    ..
                } = &msg
                {
                    self.push_event(ProtoEvent::AppendSent {
                        dst: to,
                        entries: entries.len() as u64,
                        commit: *leader_commit,
                    });
                }
                out.push(Output::Send {
                    dst: to,
                    msg: WireMsg::Raft(msg),
                });
            }
        }
    }

    fn on_became_leader(&mut self, now: u64, out: &mut Vec<Output>, arena: &mut ByteArena) {
        self.ledger.reset();
        self.stalled_members.clear();
        self.xfers.clear();
        self.incoming = None;
        // The election instant counts as hearing from everyone: stall
        // detection starts with a full timeout of grace, like check-quorum.
        for m in self.cfg.raft.members.clone() {
            self.ledger.note_heard(m, now);
        }
        self.recovering.clear();
        self.agg_confirmed = false;
        if self.cfg.mode.is_hovercraft() {
            // Entries inherited from previous terms keep their immutable
            // replier assignment; rebuild the ledger from them (§5).
            let last = self.raft.log().last_index();
            for idx in (self.applied + 1)..=last {
                if let Some(e) = self.raft.log().get(idx) {
                    if let Some(r) = e.cmd.desc.replier {
                        self.ledger.assign(r, idx);
                    }
                }
            }
            // Freeze announcements at the inherited horizon; entries above
            // it (our own un-announced proposals, if any) go through
            // replier assignment first.
            self.raft.set_ceiling(self.last_assigned_index());
            // §5: requests the failed leader received but never ordered are
            // still parked in our unordered set (the multicast reached us
            // directly). Order them now, deterministically.
            for id in self.pool.unordered_ids() {
                let (kind, hash) = {
                    let r = self.pool.get(id).expect("listed id present");
                    (r.kind, body_hash(&r.body))
                };
                let desc = EntryDesc::new(id, hash, kind);
                if let Ok(index) = self.raft.propose(Cmd::meta(desc)) {
                    self.push_event(ProtoEvent::Proposed { index, id });
                    self.pool.mark_ordered(id);
                }
            }
        }
        if self.cfg.mode == Mode::HovercraftPp {
            if let Some(agg) = self.cfg.agg_addr {
                out.push(Output::Send {
                    dst: agg,
                    msg: WireMsg::VoteProbe {
                        term: self.raft.term(),
                    },
                });
            }
        }
        self.try_announce(now, out, arena);
    }

    /// Highest contiguous log index whose replier is already assigned.
    fn last_assigned_index(&self) -> LogIndex {
        let mut idx = self.raft.log().last_index();
        while idx >= self.raft.log().first_index() {
            match self.raft.log().get(idx) {
                Some(e) if e.cmd.desc.replier.is_none() => idx -= 1,
                _ => break,
            }
        }
        idx
    }

    /// §3.3–3.4: stamp repliers into fresh entries (bounded queues + policy)
    /// and raise the replication ceiling over them, then ship.
    fn try_announce(&mut self, now: u64, out: &mut Vec<Output>, arena: &mut ByteArena) {
        if !self.is_leader() {
            return;
        }
        if !self.cfg.mode.is_hovercraft() {
            // Vanilla mode replicates unconditionally (infinite ceiling).
            self.with_raft(|r, a| r.pump_into(now, a), now, out, arena);
            return;
        }
        let last = self.raft.log().last_index();
        let mut ceiling = self.raft.ceiling().min(last);
        let members: Vec<RaftId> = self.cfg.raft.members.clone();
        let me = self.id();
        // The leader is trivially alive; never let it self-stall.
        self.ledger.note_heard(me, now);
        self.note_stall_transitions(&members, now);
        let mut advanced = false;
        while ceiling < last {
            let idx = ceiling + 1;
            let needs_assignment = self
                .raft
                .log()
                .get(idx)
                .map(|e| e.cmd.desc.replier.is_none())
                .unwrap_or(false);
            if needs_assignment {
                let candidates: Vec<RaftId> = if self.cfg.lb_replies {
                    members.clone()
                } else {
                    vec![me]
                };
                let Some(r) = self.ledger.pick(
                    &candidates,
                    self.cfg.bound,
                    self.cfg.policy,
                    &mut self.rng,
                    now,
                    self.cfg.stall_timeout_ns,
                ) else {
                    break; // no eligible node: wait (§3.4 — liveness preserved)
                };
                if let Some(e) = self.raft.log_mut().get_mut(idx) {
                    e.cmd.desc.replier = Some(r);
                }
                self.ledger.assign(r, idx);
                self.push_event(ProtoEvent::ReplierAssigned {
                    index: idx,
                    replier: r,
                });
            }
            ceiling = idx;
            advanced = true;
        }
        if advanced {
            self.raft.set_ceiling(ceiling);
            self.push_event(ProtoEvent::Announced { upto: ceiling });
        }
        self.with_raft(|r, a| r.pump_into(now, a), now, out, arena);
    }

    /// Emits one [`ProtoEvent::ReplierStalled`] / [`ProtoEvent::ReplierRecovered`]
    /// pair per stall episode by diffing the current stall verdicts against
    /// the remembered set (leader only).
    fn note_stall_transitions(&mut self, members: &[RaftId], now: u64) {
        for &m in members {
            let stalled = self.ledger.is_stalled(m, now, self.cfg.stall_timeout_ns);
            if stalled && self.stalled_members.insert(m) {
                self.push_event(ProtoEvent::ReplierStalled { node: m });
            } else if !stalled && self.stalled_members.remove(&m) {
                self.push_event(ProtoEvent::ReplierRecovered { node: m });
            }
        }
    }

    // ---- apply path ---------------------------------------------------------

    /// Hands committed entries to the application thread in log order,
    /// stopping at the first entry whose body is still missing.
    fn try_apply(&mut self, now: u64, out: &mut Vec<Output>, arena: &mut ByteArena) {
        while self.next_apply <= self.raft.commit_index() {
            let idx = self.next_apply;
            let Some(entry) = self.raft.log().get(idx) else {
                break;
            };
            let desc = entry.cmd.desc;
            let inline_body = entry.cmd.body.clone();
            let body = match inline_body {
                Some(b) => b,
                None => match self.pool.get(desc.id) {
                    Some(r) => r.body.clone(),
                    None => {
                        // Committed but body still in flight: recovery is
                        // already running (or starts now); apply stalls.
                        self.stats.apply_stalls += 1;
                        if !self.missing.contains_key(&desc.id) {
                            self.push_event(ProtoEvent::ApplyStalled {
                                index: idx,
                                id: desc.id,
                            });
                        }
                        self.request_missing_window(idx, now, out);
                        return;
                    }
                },
            };
            // Committed entries were always announced, hence assigned; fall
            // back to the leader for defence in depth.
            let replier = desc
                .replier
                .or(self.raft.leader_hint())
                .unwrap_or_else(|| self.id());
            let am_replier = replier == self.id();
            let execute = match desc.kind {
                OpKind::ReadWrite => true,
                OpKind::ReadOnly => {
                    if self.cfg.lb_reads && self.cfg.mode.is_hovercraft() {
                        am_replier
                    } else {
                        true
                    }
                }
            };
            let (reply, cost) = if execute {
                self.stats.executed += 1;
                self.push_event(ProtoEvent::Executed {
                    index: idx,
                    id: desc.id,
                });
                let r = self.service.execute(&body, desc.kind.is_read_only(), arena);
                (Some(r.reply), r.cost_ns)
            } else {
                self.stats.ro_skipped += 1;
                self.push_event(ProtoEvent::RoSkipped {
                    index: idx,
                    id: desc.id,
                });
                (None, 0)
            };
            self.pending.insert(
                idx,
                PendingReply {
                    client: desc.id.src_ip,
                    id: desc.id,
                    reply,
                    respond: am_replier && execute,
                },
            );
            out.push(Output::Execute {
                index: idx,
                cost_ns: cost,
            });
            self.next_apply += 1;
            // Capture the snapshot blob *here*, where the service state is
            // exactly the prefix through `idx`; it is published once the
            // app thread completes `idx` (see `maybe_snapshot`). If applied
            // lags more than a full interval, the unpublished capture is
            // superseded in place.
            let interval = self.cfg.snapshot_interval;
            if interval > 0
                && idx >= self.raft.log().snapshot_index() + interval
                && self
                    .pending_snap
                    .as_ref()
                    .is_none_or(|p| idx >= p.index + interval)
            {
                if let Some(term) = self.raft.log().term_at(idx) {
                    // The blob carries the ids of everything ordered at or
                    // below `idx`: the retained entries being compacted plus
                    // the live tombstones from earlier compactions (older
                    // ids have expired along with their duplicates).
                    let mut ids = self.ids_upto(idx);
                    ids.extend(self.pool.tombstone_ids());
                    self.pending_snap = Some(Snapshot {
                        index: idx,
                        term,
                        data: encode_snapshot_blob(self.service.snapshot(), ids),
                    });
                }
            }
        }
    }

    /// §5, pipelined: when apply stalls at `from`, request the bodies of
    /// *every* committed-but-missing entry in a bounded window ahead of the
    /// cursor, not just the blocking one. A restarted follower whose pool
    /// came back empty catches up in one recovery round-trip per window
    /// instead of one per entry.
    fn request_missing_window(&mut self, from: LogIndex, now: u64, out: &mut Vec<Output>) {
        /// Entries scanned past the stalled apply cursor per invocation.
        const RECOVERY_WINDOW: u64 = 64;
        let hi = self
            .raft
            .commit_index()
            .min(from.saturating_add(RECOVERY_WINDOW - 1));
        let mut wanted: Vec<ReqId> = Vec::new();
        for idx in from..=hi {
            let Some(entry) = self.raft.log().get(idx) else {
                break;
            };
            let id = entry.cmd.desc.id;
            if entry.cmd.body.is_none()
                && self.pool.get(id).is_none()
                && !self.missing.contains_key(&id)
            {
                wanted.push(id);
            }
        }
        let leader = self.raft.leader_hint().filter(|&l| l != self.id());
        for id in wanted {
            // Even without a known leader the entry lands in `missing`;
            // `retry_recoveries` will fan out to a random member shortly.
            self.missing.insert(id, now);
            if let Some(l) = leader {
                self.stats.recoveries_sent += 1;
                self.push_event(ProtoEvent::RecoveryRequested { id, to: l });
                out.push(Output::Send {
                    dst: l,
                    msg: WireMsg::RecoveryReq { id },
                });
            }
        }
    }

    fn retry_recoveries(&mut self, now: u64, out: &mut Vec<Output>) {
        if self.missing.is_empty() {
            return;
        }
        let retry = self.cfg.recovery_retry_ns;
        let leader = self.raft.leader_hint();
        let members = self.cfg.raft.members.clone();
        let me = self.id();
        let mut sent = 0u64;
        let mut evs: Vec<ProtoEvent> = Vec::new();
        for (id, last) in self.missing.iter_mut() {
            if now.saturating_sub(*last) >= retry {
                *last = now;
                // Prefer the leader; fall back to a random other member —
                // any node that saw the multicast can serve it (§5).
                let dst = match leader {
                    Some(l) if l != me => l,
                    _ => {
                        let others: Vec<RaftId> =
                            members.iter().copied().filter(|m| *m != me).collect();
                        if others.is_empty() {
                            continue;
                        }
                        others[self.rng.gen_range(0..others.len())]
                    }
                };
                sent += 1;
                evs.push(ProtoEvent::RecoveryRequested { id: *id, to: dst });
                out.push(Output::Send {
                    dst,
                    msg: WireMsg::RecoveryReq { id: *id },
                });
            }
        }
        self.stats.recoveries_sent += sent;
        for e in evs {
            self.push_event(e);
        }
    }

    // ---- snapshotting & state transfer (log compaction + InstallSnapshot) --

    /// Ids of the requests referenced by retained log entries up to `upto`
    /// (inclusive). Enumerated *before* compaction so their archived bodies
    /// can be dropped with the entries that reference them.
    fn ids_upto(&self, upto: LogIndex) -> Vec<ReqId> {
        let log = self.raft.log();
        let lo = log.first_index();
        let hi = upto.min(log.last_index());
        let mut ids = Vec::new();
        for idx in lo..=hi {
            if let Some(e) = log.get(idx) {
                ids.push(e.cmd.desc.id);
            }
        }
        ids
    }

    /// Takes a snapshot at the configured horizon: every
    /// `snapshot_interval` applied entries (0 disables snapshotting
    /// entirely, preserving pre-snapshot behavior bit-for-bit).
    fn maybe_snapshot(&mut self, now: u64) {
        if self
            .pending_snap
            .as_ref()
            .is_none_or(|p| p.index > self.applied)
        {
            return;
        }
        let snap = self.pending_snap.take().expect("checked above");
        self.commit_snapshot(snap, now);
    }

    /// Serializes the state machine immediately at the applied index — only
    /// sound when the app pipeline is drained (the service holds the effects
    /// of every *issued* entry, which runs ahead of `applied`; with issues
    /// outstanding this refuses rather than capture a blob that is ahead of
    /// its claimed index). Fallback for restored nodes that own a compacted
    /// log without a snapshot in memory, and for drivers that want a
    /// snapshot at a quiescent point (e.g. before persisting
    /// [`HcNode::durable_state`]); the steady-state path captures at issue
    /// time instead (`try_apply`). A no-op when there is nothing to
    /// snapshot: an empty log, an applied cursor still at 0, or a horizon
    /// at or below the existing snapshot boundary.
    pub fn take_snapshot(&mut self, now: u64) {
        if self.next_apply != self.applied + 1 {
            return;
        }
        let index = self.applied;
        if index == 0 || index <= self.raft.log().snapshot_index() {
            return;
        }
        let Some(term) = self.raft.log().term_at(index) else {
            return;
        };
        let mut ids = self.ids_upto(index);
        ids.extend(self.pool.tombstone_ids());
        let data = encode_snapshot_blob(self.service.snapshot(), ids);
        self.commit_snapshot(Snapshot { index, term, data }, now);
    }

    /// Publishes a snapshot whose blob is known to correspond exactly to
    /// its index: compacts the ordering log below it and drops the archived
    /// bodies the compacted entries referenced (leaving dedupe tombstones —
    /// the dual compaction schedule: bodies and ordering metadata compact
    /// independently).
    fn commit_snapshot(&mut self, snap: Snapshot, now: u64) {
        if snap.index == 0 || snap.index <= self.raft.log().snapshot_index() {
            return;
        }
        let ids = self.ids_upto(snap.index);
        let dropped = self.pool.compact_archive(&ids, now);
        self.raft.compact_to(snap.index);
        self.stats.snapshots += 1;
        self.push_event(ProtoEvent::SnapshotTaken {
            index: snap.index,
            bytes: snap.data.len() as u64,
        });
        if dropped > 0 {
            self.push_event(ProtoEvent::BodiesCompacted {
                upto: snap.index,
                dropped: dropped as u64,
            });
        }
        self.last_snapshot = Some(snap);
    }

    /// Starts streaming the latest snapshot to `to` unless a transfer to it
    /// is already running. Entered from [`raft::Action::NeedsSnapshot`]
    /// (leader replication fell below the compaction horizon) or from a
    /// RecoveryReq for a body that was compacted away — the latter on any
    /// replica, leader or follower (peer-served recovery, §5).
    fn ensure_transfer(&mut self, to: RaftId, now: u64, out: &mut Vec<Output>) {
        if to == self.id() || self.xfers.contains_key(&to) {
            return;
        }
        if self.last_snapshot.is_none() {
            // Restored leaders can own a compacted log without holding the
            // snapshot in memory yet; re-serialize at the applied index.
            self.take_snapshot(now);
        }
        let Some(snap) = self.last_snapshot.clone() else {
            return;
        };
        self.stats.transfers += 1;
        self.push_event(ProtoEvent::TransferStarted {
            to,
            index: snap.index,
            bytes: snap.data.len() as u64,
        });
        self.xfers.insert(
            to,
            OutXfer {
                snap,
                acked: 0,
                last_sent: now,
            },
        );
        self.send_chunk(to, now, out);
    }

    /// Sends the next stop-and-wait chunk of the transfer to `to`, starting
    /// at the cumulatively acked offset.
    fn send_chunk(&mut self, to: RaftId, now: u64, out: &mut Vec<Output>) {
        let term = self.raft.term();
        let me = self.id();
        let chunk_bytes = self.cfg.snap_chunk_bytes.max(1) as u64;
        let Some(x) = self.xfers.get_mut(&to) else {
            return;
        };
        let total = x.snap.data.len() as u64;
        let offset = x.acked.min(total);
        let end = (offset + chunk_bytes).min(total);
        let data = x.snap.data.slice(offset as usize..end as usize);
        let snap_index = x.snap.index;
        let snap_term = x.snap.term;
        x.last_sent = now;
        self.stats.chunks_sent += 1;
        self.push_event(ProtoEvent::ChunkSent {
            to,
            index: snap_index,
            offset,
        });
        out.push(Output::Send {
            dst: to,
            msg: WireMsg::SnapChunk {
                term,
                from: me,
                snap_index,
                snap_term,
                offset,
                total,
                data,
            },
        });
    }

    /// Retransmits the current chunk of every transfer that has gone one
    /// recovery-retry interval without an ack (lost chunk or lost ack; also
    /// how a transfer reaches a follower that restarted mid-stream).
    fn retry_transfers(&mut self, now: u64, out: &mut Vec<Output>) {
        if self.xfers.is_empty() {
            return;
        }
        let retry = self.cfg.recovery_retry_ns.max(1);
        let mut due: Vec<RaftId> = self
            .xfers
            .iter()
            .filter(|(_, x)| now.saturating_sub(x.last_sent) >= retry)
            .map(|(&peer, _)| peer)
            .collect();
        due.sort_unstable();
        for peer in due {
            self.send_chunk(peer, now, out);
        }
    }

    /// Receiving side: one snapshot chunk arrived from a serving peer.
    /// Chunks are offset-addressed, so duplicates and reorderings are
    /// idempotent; the ack is cumulative (`next_offset` = first byte still
    /// missing). A restarted node naturally acks 0, rewinding the sender
    /// cleanly across incarnation epochs.
    #[allow(clippy::too_many_arguments)]
    fn on_snap_chunk(
        &mut self,
        term: u64,
        from: RaftId,
        snap_index: LogIndex,
        snap_term: u64,
        offset: u64,
        total: u64,
        data: Bytes,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        if term < self.raft.term() {
            return;
        }
        // A chunk is proof of a live peer streaming to us: it must suppress
        // elections for the whole (possibly long) transfer, since no
        // AppendEntries can be built for us below the sender's compaction
        // horizon. Peer contact, not leader contact: the sender may be a
        // follower healing us (§5), and a leader receiving a chunk must not
        // depose itself.
        let mut actions = self.raft.note_peer_contact(term, now);
        self.drain(&mut actions, now, out, arena);
        let me = self.id();
        if snap_index < self.next_apply {
            // Already at or past this horizon (e.g. a duplicate of the
            // final chunk, or replication overtook the transfer). The guard
            // is on the *issue* cursor, not `applied`: the service executes
            // entries when they are issued to the app thread, so a snapshot
            // landing below `next_apply` could only wipe effects of entries
            // already executing — the node provably holds every body up to
            // `next_apply - 1` and will apply past the horizon on its own.
            // Ack completion so the sender stops streaming.
            out.push(Output::Send {
                dst: from,
                msg: WireMsg::SnapAck {
                    term: self.raft.term(),
                    snap_index,
                    next_offset: total,
                    from: me,
                },
            });
            return;
        }
        // With several peers serving concurrently (round-robin RecoveryReqs
        // fan out), transfers at the *same* index merge idempotently below.
        // A transfer at a different index must not thrash the single
        // reassembly buffer: prefer the higher horizon, and ignore the
        // lower-index stream (unacked, it retries once per retry interval)
        // — unless the preferred stream itself has stalled for a full retry
        // interval (its server died), in which case fail over.
        let replace = match &self.incoming {
            Some(x) => {
                x.snap_index != snap_index
                    && (snap_index > x.snap_index
                        || now.saturating_sub(x.last_progress) >= self.cfg.recovery_retry_ns.max(1))
            }
            None => true,
        };
        if let Some(x) = &self.incoming {
            if !replace && x.snap_index != snap_index {
                return;
            }
        }
        if replace {
            self.incoming = Some(InXfer {
                snap_index,
                snap_term,
                total,
                buf: Vec::with_capacity(total.min(1 << 22) as usize),
                last_progress: now,
            });
        }
        let (next, complete) = {
            let x = self.incoming.as_mut().expect("ensured above");
            if offset == x.buf.len() as u64 && offset < x.total {
                let want = ((x.total - offset) as usize).min(data.len());
                x.buf.extend_from_slice(&data[..want]);
                x.last_progress = now;
            }
            let next = (x.buf.len() as u64).min(x.total);
            (next, next >= x.total)
        };
        self.push_event(ProtoEvent::ChunkAcked {
            index: snap_index,
            next,
        });
        if complete {
            let x = self.incoming.take().expect("present");
            self.finish_install(
                x.snap_index,
                x.snap_term,
                Bytes::from(x.buf),
                now,
                out,
                arena,
            );
        }
        out.push(Output::Send {
            dst: from,
            msg: WireMsg::SnapAck {
                term: self.raft.term(),
                snap_index,
                next_offset: next,
                from: me,
            },
        });
    }

    /// Serving side: a cumulative transfer ack arrived.
    #[allow(clippy::too_many_arguments)]
    fn on_snap_ack(
        &mut self,
        term: u64,
        snap_index: LogIndex,
        next_offset: u64,
        from: RaftId,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        if term != self.raft.term() {
            return;
        }
        // Acks feed check-quorum: a leader spending many election timeouts
        // streaming to its only reachable follower must not self-depose.
        // (Both calls degrade to liveness bookkeeping on a follower server.)
        self.raft.note_peer_heard(from, now);
        self.ledger.note_heard(from, now);
        let Some(x) = self.xfers.get_mut(&from) else {
            return;
        };
        if x.snap.index != snap_index {
            // Ack for a superseded transfer; the retransmit timer keeps the
            // live one moving.
            return;
        }
        let total = x.snap.data.len() as u64;
        if next_offset >= total {
            self.xfers.remove(&from);
            self.push_event(ProtoEvent::TransferDone {
                to: from,
                index: snap_index,
            });
            let mut actions = self.raft.on_snapshot_installed(from, snap_index, now);
            self.drain(&mut actions, now, out, arena);
            self.try_announce(now, out, arena);
        } else {
            // Cumulative: a lower-than-acked offset legitimately rewinds
            // the stream (the follower restarted and lost its buffer).
            x.acked = next_offset;
            self.send_chunk(from, now, out);
        }
    }

    /// Fully received a snapshot: restore the state machine, jump the Raft
    /// log/commit/applied cursors past the horizon, and drop bookkeeping
    /// for everything the snapshot covers.
    fn finish_install(
        &mut self,
        snap_index: LogIndex,
        snap_term: u64,
        data: Bytes,
        now: u64,
        out: &mut Vec<Output>,
        arena: &mut ByteArena,
    ) {
        // Guard on the issue cursor, not `applied`: entries in
        // `(applied, next_apply)` have already executed against the service
        // (completion only moves the cursor), so restoring a snapshot below
        // `next_apply` would silently wipe their effects while their
        // completions still advance `applied` past the restored state.
        if snap_index < self.next_apply {
            return;
        }
        // Bodies referenced by entries the install will discard leave the
        // archive with them (enumerated before the log changes).
        let ids = self.ids_upto(snap_index);
        let mut dropped = self.pool.compact_archive(&ids, now);
        // The snapshot carries the ids of *every* request it covers —
        // including entries this node never received, which its own log
        // cannot enumerate. Seeding them as tombstones purges parked
        // unordered copies so a later leader election cannot re-propose
        // (and re-execute) a request the snapshot already ordered.
        let (service_blob, covered) = decode_snapshot_blob(&data);
        dropped += self.pool.seed_tombstones(&covered, now);
        self.service.restore(&service_blob);
        let mut actions = self.raft.install_snapshot(snap_index, snap_term);
        self.applied = snap_index;
        self.next_apply = self.next_apply.max(snap_index + 1);
        // Any unpublished capture predates the install horizon (installs
        // are refused below `next_apply`, and captures sit below it too).
        self.pending_snap = None;
        // Replies for entries the install jumped over are void: their
        // repliers re-elect elsewhere, bounded by B per episode (§3.4).
        self.pending.retain(|&i, _| i > snap_index);
        // Outstanding body recoveries survive only if a retained log entry
        // still references them.
        let retained: FxHashSet<ReqId> = self
            .ids_upto(self.raft.log().last_index())
            .into_iter()
            .collect();
        self.missing.retain(|id, _| retained.contains(id));
        self.last_snapshot = Some(Snapshot {
            index: snap_index,
            term: snap_term,
            data,
        });
        self.stats.installs += 1;
        self.push_event(ProtoEvent::SnapshotInstalled {
            index: snap_index,
            term: snap_term,
        });
        if dropped > 0 {
            self.push_event(ProtoEvent::BodiesCompacted {
                upto: snap_index,
                dropped: dropped as u64,
            });
        }
        self.drain(&mut actions, now, out, arena);
        self.try_apply(now, out, arena);
    }
}

#[cfg(test)]
mod snapshot_blob_tests {
    use super::*;

    #[test]
    fn blob_round_trips_service_and_ids() {
        let service = Bytes::from_static(b"state-machine-bytes");
        let ids = vec![
            ReqId::new(5, 1000, 994),
            ReqId::new(1, 2, 3),
            ReqId::new(1, 2, 3),
        ];
        let blob = encode_snapshot_blob(service.clone(), ids);
        let (svc, got) = decode_snapshot_blob(&blob);
        assert_eq!(svc, service);
        assert_eq!(got, vec![ReqId::new(1, 2, 3), ReqId::new(5, 1000, 994)]);
    }

    #[test]
    fn empty_service_and_empty_ids_round_trip() {
        let blob = encode_snapshot_blob(Bytes::new(), Vec::new());
        let (svc, ids) = decode_snapshot_blob(&blob);
        assert!(svc.is_empty());
        assert!(ids.is_empty());
    }

    #[test]
    fn unframed_blob_degrades_to_plain_service_state() {
        // The empty default of a node that never snapshotted, and any
        // short unframed blob, decode as service state with no ids.
        let (svc, ids) = decode_snapshot_blob(&Bytes::new());
        assert!(svc.is_empty());
        assert!(ids.is_empty());
        let raw = Bytes::from_static(b"abc");
        let (svc, ids) = decode_snapshot_blob(&raw);
        assert_eq!(svc, raw);
        assert!(ids.is_empty());
    }
}
