//! The HovercRaft node: the SMR-aware RPC layer (§3).
//!
//! [`HcNode`] wraps a [`raft::RaftNode`] and implements every HovercRaft
//! mechanism on top of it without touching the consensus core:
//!
//! * client requests arrive over the multicast group and are parked in the
//!   unordered pool; the leader orders them by proposing metadata-only
//!   commands (§3.2);
//! * the leader stamps a designated replier into every entry before first
//!   transmission, honouring the bounded-queue invariant, and only then
//!   raises the raft replication ceiling (§3.3–3.4, §3.6);
//! * committed entries are executed in log order on the application thread;
//!   read-only entries execute only on their replier (§3.5); the replier
//!   sends the client response and a flow-control FEEDBACK;
//! * missing request bodies trigger the recovery protocol (§5);
//! * in HovercRaft++ mode, AppendEntries are routed through the in-network
//!   aggregator and `AGG_COMMIT` messages are folded back into Raft (§4).
//!
//! Like the raft layer, the node is sans-io: every entry point returns
//! [`Output`]s — packets to transmit and work to schedule on the
//! application thread. The simulation harness (or a real runtime) owns the
//! clock and the wires.

use std::collections::VecDeque;

use fxhash::{FxHashMap, FxHashSet};

use bytes::Bytes;
use r2p2::{body_hash, ReqId};
use raft::{Action, LogIndex, Message, RaftId, RaftNode, Role};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cmd::{Cmd, EntryDesc, OpKind};
use crate::config::{HcConfig, Mode};
use crate::msg::{AggStatus, WireMsg};
use crate::policy::ReplierLedger;
use crate::pool::UnorderedPool;
use crate::service::Service;
use crate::trace::ProtoEvent;

/// Bound on the internal protocol-event buffer. Drivers that trace drain it
/// after every entry point, so it stays tiny; drivers that don't (unit
/// tests, benches) must not leak memory, so the oldest events are dropped
/// past this point.
const EVENT_BUF_CAP: usize = 8192;

/// An effect the driver must carry out for the node.
#[derive(Clone, Debug)]
pub enum Output {
    /// Transmit `msg` to network address `dst` (a node or group address in
    /// the deployment's address space).
    Send {
        /// Destination address.
        dst: u32,
        /// The message.
        msg: WireMsg,
    },
    /// Charge `cost_ns` to the application thread, then call
    /// [`HcNode::on_exec_done`] with `index`.
    Execute {
        /// The log entry being applied.
        index: LogIndex,
        /// Application CPU cost.
        cost_ns: u64,
    },
}

/// Counters a node keeps about its own protocol activity (inspected by
/// tests and experiments).
#[derive(Clone, Copy, Debug, Default)]
pub struct HcStats {
    /// Client requests received.
    pub requests: u64,
    /// Client responses sent by this node.
    pub responses: u64,
    /// Operations executed on the application thread.
    pub executed: u64,
    /// Read-only operations skipped because another node is the replier.
    pub ro_skipped: u64,
    /// Recovery requests sent.
    pub recoveries_sent: u64,
    /// Recovery replies served to peers.
    pub recoveries_served: u64,
    /// Entries whose apply stalled on a missing body at least once.
    pub apply_stalls: u64,
}

struct PendingReply {
    client: u32,
    id: ReqId,
    reply: Option<Bytes>,
    respond: bool,
}

/// A full HovercRaft (or VanillaRaft) server node.
pub struct HcNode<S> {
    cfg: HcConfig,
    raft: RaftNode<Cmd>,
    pool: UnorderedPool,
    ledger: ReplierLedger,
    service: S,
    rng: SmallRng,
    /// Next log index to hand to the application thread.
    next_apply: LogIndex,
    /// Last log index whose execution completed.
    applied: LogIndex,
    pending: FxHashMap<LogIndex, PendingReply>,
    /// Outstanding body recoveries: id → last request time.
    missing: FxHashMap<ReqId, u64>,
    /// HovercRaft++ leader: followers being repaired over direct
    /// point-to-point AppendEntries after a failed append (§5).
    recovering: FxHashSet<RaftId>,
    /// HovercRaft++ leader: the aggregator answered our VoteProbe.
    agg_confirmed: bool,
    /// HovercRaft++ follower: the last AppendEntries arrived via the
    /// aggregator, so successful replies retrace that path.
    last_ae_via_agg: bool,
    stats: HcStats,
    /// Protocol events since the last [`HcNode::drain_events`] call.
    events: VecDeque<ProtoEvent>,
    /// Term of the last election we recorded a trace event for (dedupes the
    /// per-peer RequestVote fan-out into one event).
    last_election_term: u64,
    /// Term of the last Pre-Vote probe we recorded a trace event for
    /// (dedupes the per-peer PreVote fan-out, like `last_election_term`).
    last_prevote_term: u64,
    /// Leader only: members currently considered stalled by the replier
    /// selector (tracked to emit one transition event per episode).
    stalled_members: FxHashSet<RaftId>,
}

impl<S: Service> HcNode<S> {
    /// Creates a node. `now` seeds the election timer of the underlying
    /// Raft instance.
    pub fn new(cfg: HcConfig, service: S, now: u64) -> Self {
        let raft = RaftNode::new(cfg.raft.clone(), now);
        let rng = SmallRng::seed_from_u64(cfg.raft.seed ^ 0x486f_7665_7263_5261);
        HcNode {
            cfg,
            raft,
            pool: UnorderedPool::new(),
            ledger: ReplierLedger::new(),
            service,
            rng,
            next_apply: 1,
            applied: 0,
            pending: FxHashMap::default(),
            missing: FxHashMap::default(),
            recovering: FxHashSet::default(),
            agg_confirmed: false,
            last_ae_via_agg: false,
            stats: HcStats::default(),
            events: VecDeque::new(),
            last_election_term: 0,
            last_prevote_term: 0,
            stalled_members: FxHashSet::default(),
        }
    }

    /// Rebuilds a node after a crash–restart from its durable Raft state
    /// (current term, vote, and log). Everything volatile — the unordered
    /// pool, the replier ledger, the apply cursor, the commit index — comes
    /// back empty: committed entries re-execute from index 1 against the
    /// freshly constructed `service`, and bodies lost with the old pool are
    /// re-fetched through the recovery protocol (§5).
    pub fn restore(
        cfg: HcConfig,
        service: S,
        now: u64,
        term: u64,
        voted_for: Option<RaftId>,
        entries: Vec<raft::Entry<Cmd>>,
    ) -> Self {
        let mut node = HcNode::new(cfg, service, now);
        node.raft = RaftNode::restore(node.cfg.raft.clone(), now, term, voted_for, entries);
        node
    }

    fn push_event(&mut self, ev: ProtoEvent) {
        if self.events.len() == EVENT_BUF_CAP {
            self.events.pop_front();
        }
        self.events.push_back(ev);
    }

    // ---- accessors ---------------------------------------------------------

    /// This node's id (== its unicast network address).
    pub fn id(&self) -> RaftId {
        self.raft.id()
    }
    /// True if this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.raft.is_leader()
    }
    /// Current role.
    pub fn role(&self) -> Role {
        self.raft.role()
    }
    /// The underlying Raft instance (read-only).
    pub fn raft(&self) -> &RaftNode<Cmd> {
        &self.raft
    }
    /// Index of the last operation whose execution completed locally.
    pub fn applied_index(&self) -> LogIndex {
        self.applied
    }
    /// Protocol activity counters.
    pub fn stats(&self) -> HcStats {
        self.stats
    }
    /// The node's configuration.
    pub fn config(&self) -> &HcConfig {
        &self.cfg
    }
    /// The application service (e.g. to inspect state in tests).
    pub fn service(&self) -> &S {
        &self.service
    }
    /// Mutable access to the application service.
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }
    /// Whether the aggregator is confirmed live for this term (HC++).
    pub fn aggregator_confirmed(&self) -> bool {
        self.agg_confirmed
    }
    /// Outstanding replier-queue depth for `node` (leader only; §3.6).
    pub fn queue_depth(&self, node: RaftId) -> usize {
        self.ledger.depth(node)
    }
    /// Takes the protocol events recorded since the last call, oldest
    /// first, without allocating. Drivers that trace should consume this
    /// after every entry point; events past an internal bound are dropped
    /// oldest-first.
    pub fn drain_events(&mut self) -> impl Iterator<Item = ProtoEvent> + '_ {
        self.events.drain(..)
    }
    /// Mutable access to the underlying Raft instance.
    ///
    /// This exists for fault-injection and invariant-checker meta-tests
    /// (e.g. corrupting a replier field to prove the checker fires); the
    /// protocol itself never needs it.
    #[doc(hidden)]
    pub fn raft_mut(&mut self) -> &mut RaftNode<Cmd> {
        &mut self.raft
    }
    /// Mutable access to the replier ledger — test support, like
    /// [`HcNode::raft_mut`].
    #[doc(hidden)]
    pub fn ledger_mut(&mut self) -> &mut ReplierLedger {
        &mut self.ledger
    }

    // ---- entry points ------------------------------------------------------

    /// Handles one incoming message; `src` is the sender's network address.
    pub fn on_message(&mut self, src: u32, msg: WireMsg, now: u64) -> Vec<Output> {
        let mut out = Vec::new();
        match msg {
            WireMsg::Request { id, kind, body } => {
                self.on_request(id, kind, body, now, &mut out);
            }
            WireMsg::Raft(m) => self.on_raft(src, m, now, &mut out),
            WireMsg::RecoveryReq { id } => {
                if let Some((kind, body)) = self.pool.get(id).map(|r| (r.kind, r.body.clone())) {
                    self.stats.recoveries_served += 1;
                    self.push_event(ProtoEvent::RecoveryServed { id, to: src });
                    out.push(Output::Send {
                        dst: src,
                        msg: WireMsg::RecoveryRep { id, kind, body },
                    });
                }
            }
            WireMsg::RecoveryRep { id, kind, body } => {
                if self.missing.remove(&id).is_some() {
                    self.push_event(ProtoEvent::RecoveryCompleted { id });
                }
                self.pool.insert_recovered(id, kind, body, now);
                self.try_apply(now, &mut out);
            }
            WireMsg::AggCommit {
                term,
                commit,
                status,
            } => self.on_agg_commit(term, commit, status, now, &mut out),
            WireMsg::VoteProbeRep { term } => {
                if self.is_leader() && term == self.raft.term() {
                    self.agg_confirmed = true;
                }
            }
            // Servers are not the audience for these.
            WireMsg::Response { .. }
            | WireMsg::Nack { .. }
            | WireMsg::Feedback
            | WireMsg::VoteProbe { .. } => {}
        }
        out
    }

    /// Periodic maintenance: Raft ticks (elections/heartbeats), pool GC,
    /// recovery retries, and announcement retries. Call a few times per
    /// Raft heartbeat interval.
    pub fn tick(&mut self, now: u64) -> Vec<Output> {
        let mut out = Vec::new();
        let actions = self.raft.tick(now);
        self.drain(actions, now, &mut out);
        self.pool.gc(now, self.cfg.gc_timeout_ns);
        self.retry_recoveries(now, &mut out);
        self.try_announce(now, &mut out);
        out
    }

    /// The application thread finished executing entry `index`.
    pub fn on_exec_done(&mut self, index: LogIndex, now: u64) -> Vec<Output> {
        let mut out = Vec::new();
        debug_assert_eq!(index, self.applied + 1, "app thread must be FIFO");
        self.applied = index;
        self.raft.set_applied(index);
        if self.is_leader() {
            self.ledger.observe_applied(self.id(), index);
            self.try_announce(now, &mut out);
        }
        if let Some(p) = self.pending.remove(&index) {
            if p.respond {
                self.stats.responses += 1;
                self.push_event(ProtoEvent::ReplySent {
                    index,
                    id: p.id,
                    to: p.client,
                });
                out.push(Output::Send {
                    dst: p.client,
                    msg: WireMsg::Response {
                        id: p.id,
                        body: p.reply.unwrap_or_default(),
                    },
                });
                if let Some(fc) = self.cfg.flowctl_addr {
                    self.push_event(ProtoEvent::FeedbackSent { index });
                    out.push(Output::Send {
                        dst: fc,
                        msg: WireMsg::Feedback,
                    });
                }
            }
        }
        out
    }

    // ---- client requests ---------------------------------------------------

    fn on_request(
        &mut self,
        id: ReqId,
        kind: OpKind,
        body: Bytes,
        now: u64,
        out: &mut Vec<Output>,
    ) {
        self.stats.requests += 1;
        let hash = body_hash(&body);
        match self.cfg.mode {
            Mode::Vanilla => {
                if !self.is_leader() {
                    // Clients are expected to target the leader; NACK so the
                    // client can rediscover it.
                    self.push_event(ProtoEvent::NackSent { id });
                    out.push(Output::Send {
                        dst: id.src_ip,
                        msg: WireMsg::Nack { id },
                    });
                    return;
                }
                // Client retransmissions must not be ordered twice; the
                // archive doubles as the leader's dedupe set in this mode.
                if self.pool.is_archived(id) {
                    return;
                }
                let mut desc = EntryDesc::new(id, hash, kind);
                // Vanilla Raft: the leader answers everything.
                desc.replier = Some(self.id());
                if let Ok(index) = self.raft.propose(Cmd::full(desc, body.clone())) {
                    self.push_event(ProtoEvent::Proposed { index, id });
                    self.pool.insert(id, kind, body, now);
                    self.pool.mark_ordered(id);
                    let actions = self.raft.pump(now);
                    self.drain(actions, now, out);
                }
            }
            Mode::Hovercraft | Mode::HovercraftPp => {
                // Duplicate suppression: a request already bound to a log
                // slot lives in the archive.
                if self.pool.is_archived(id) {
                    return;
                }
                // Every node parks the multicast request; only the leader
                // orders it.
                self.pool.insert(id, kind, body, now);
                if self.is_leader() {
                    let desc = EntryDesc::new(id, hash, kind);
                    if let Ok(index) = self.raft.propose(Cmd::meta(desc)) {
                        self.push_event(ProtoEvent::Proposed { index, id });
                        self.pool.mark_ordered(id);
                        self.try_announce(now, out);
                    }
                }
            }
        }
    }

    // ---- raft plumbing ------------------------------------------------------

    fn on_raft(&mut self, src: u32, m: Message<Cmd>, now: u64, out: &mut Vec<Output>) {
        // Guard: ignore echoes of our own AppendEntries (safety against any
        // reflected copy of a message we originated).
        if let Message::AppendEntries { leader, .. } = &m {
            if *leader == self.id() {
                return;
            }
            // Remember the fan-out path so successful replies retrace it
            // (aggregator vs direct, §4).
            self.last_ae_via_agg = Some(src) == self.cfg.agg_addr;
        }
        // Follower side, HovercRaft modes: entries are metadata-only; check
        // body availability and fire recovery for gaps (§3.2/§5).
        if self.cfg.mode.is_hovercraft() {
            if let Message::AppendEntries {
                entries, leader, ..
            } = &m
            {
                for e in entries {
                    let id = e.cmd.desc.id;
                    if !self.pool.mark_ordered(id) && !self.missing.contains_key(&id) {
                        self.stats.recoveries_sent += 1;
                        self.missing.insert(id, now);
                        self.push_event(ProtoEvent::RecoveryRequested { id, to: *leader });
                        out.push(Output::Send {
                            dst: *leader,
                            msg: WireMsg::RecoveryReq { id },
                        });
                    }
                }
            }
        }
        // Leader side: fold the applied index and recovery bookkeeping out
        // of replies before the core consumes them.
        if let Message::AppendEntriesReply {
            success,
            match_index,
            applied_index,
            from,
            term,
            ..
        } = &m
        {
            if self.is_leader() && *term == self.raft.term() {
                self.ledger.observe_applied(*from, *applied_index);
                self.ledger.note_heard(*from, now);
                self.push_event(ProtoEvent::AppendAcked {
                    from: *from,
                    success: *success,
                    match_index: *match_index,
                });
                if self.cfg.mode == Mode::HovercraftPp {
                    if !*success {
                        self.recovering.insert(*from);
                    } else if *match_index >= self.raft.announced_index() {
                        self.recovering.remove(from);
                    }
                }
            }
        }
        let from = Self::raft_peer_of(src, &m);
        let actions = self.raft.step(from, m, now);
        self.drain(actions, now, out);
        self.try_announce(now, out);
    }

    /// The Raft-level peer a message is from. Replies carry an explicit
    /// `from` (they may arrive via the aggregator); requests are attributed
    /// to their protocol-level originator.
    fn raft_peer_of(src: u32, m: &Message<Cmd>) -> RaftId {
        match m {
            Message::AppendEntriesReply { from, .. } => *from,
            Message::AppendEntries { leader, .. } => *leader,
            Message::RequestVote { candidate, .. } => *candidate,
            Message::PreVote { candidate, .. } => *candidate,
            Message::RequestVoteReply { .. } | Message::PreVoteReply { .. } => src,
        }
    }

    fn on_agg_commit(
        &mut self,
        term: u64,
        commit: LogIndex,
        status: Vec<AggStatus>,
        now: u64,
        out: &mut Vec<Output>,
    ) {
        if term != self.raft.term() {
            return;
        }
        if self.is_leader() {
            // Fold the register snapshot back into Raft as the per-follower
            // replies the aggregator absorbed (§6.4: the aggregator is part
            // of the leader; this reconstruction costs no wire messages).
            for s in status {
                self.ledger.observe_applied(s.node, s.applied_index);
                self.ledger.note_heard(s.node, now);
                self.push_event(ProtoEvent::AppendAcked {
                    from: s.node,
                    success: true,
                    match_index: s.match_index,
                });
                let synthetic: Message<Cmd> = Message::AppendEntriesReply {
                    term,
                    success: true,
                    match_index: s.match_index,
                    conflict_index: 0,
                    applied_index: s.applied_index,
                    from: s.node,
                };
                let actions = self.raft.step(s.node, synthetic, now);
                self.drain(actions, now, out);
            }
            self.try_announce(now, out);
        } else {
            let actions = self.raft.observe_commit(commit);
            self.drain(actions, now, out);
        }
    }

    /// Applies raft actions: routes sends (aggregator vs point-to-point),
    /// reacts to commits and role changes.
    fn drain(&mut self, actions: Vec<Action<Cmd>>, now: u64, out: &mut Vec<Output>) {
        // Collect AppendEntries so HC++ can deduplicate the fan-out.
        let mut appends: Vec<(RaftId, Message<Cmd>)> = Vec::new();
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    match &msg {
                        Message::RequestVote { term, .. } if *term != self.last_election_term => {
                            // One event per election, not per solicited peer.
                            self.last_election_term = *term;
                            self.push_event(ProtoEvent::ElectionStarted { term: *term });
                        }
                        Message::PreVote { term, .. } if *term != self.last_prevote_term => {
                            self.last_prevote_term = *term;
                            self.push_event(ProtoEvent::PreVoteStarted { term: *term });
                        }
                        Message::AppendEntries {
                            entries,
                            leader_commit,
                            ..
                        } if !self.use_aggregator(to) => {
                            self.push_event(ProtoEvent::AppendSent {
                                dst: to,
                                entries: entries.len() as u64,
                                commit: *leader_commit,
                            });
                        }
                        _ => {}
                    }
                    match &msg {
                        Message::AppendEntries { .. } if self.use_aggregator(to) => {
                            appends.push((to, msg));
                        }
                        Message::AppendEntriesReply { success, .. }
                            if self.reply_via_aggregator(*success) =>
                        {
                            out.push(Output::Send {
                                dst: self.cfg.agg_addr.expect("checked by predicate"),
                                msg: WireMsg::Raft(msg),
                            });
                        }
                        _ => out.push(Output::Send {
                            dst: to,
                            msg: WireMsg::Raft(msg),
                        }),
                    }
                }
                Action::Commit { upto } => {
                    self.push_event(ProtoEvent::CommitAdvanced { to: upto });
                    self.try_apply(now, out);
                }
                Action::BecameLeader { term } => {
                    self.push_event(ProtoEvent::BecameLeader { term });
                    self.on_became_leader(now, out);
                }
                Action::BecameFollower { term } => {
                    self.push_event(ProtoEvent::BecameFollower { term });
                    self.ledger.reset();
                    self.stalled_members.clear();
                    self.recovering.clear();
                    self.agg_confirmed = false;
                }
                Action::SaveHardState { .. } => {}
            }
        }
        self.route_appends(appends, out);
    }

    /// True when an AppendEntries to `to` should go through the aggregator.
    fn use_aggregator(&self, to: RaftId) -> bool {
        self.cfg.mode == Mode::HovercraftPp
            && self.agg_confirmed
            && self.cfg.agg_addr.is_some()
            && !self.recovering.contains(&to)
            && self.commit_settled_in_term()
    }

    /// Aggregator safety gate: the device commits by counting matches and
    /// cannot see entry terms, so the leader only routes through it once its
    /// commit index points at an entry of its own term (or the log is
    /// empty). Above such a point every entry is current-term, which makes
    /// match-counting equivalent to Raft's commit rule (§5.4.2 restriction).
    fn commit_settled_in_term(&self) -> bool {
        let c = self.raft.commit_index();
        (c == 0 && self.raft.log().last_index() == 0)
            || self.raft.log().term_at(c) == Some(self.raft.term())
    }

    /// Followers return successful AppendEntries replies to whatever device
    /// fanned the request out; failures always go straight to the leader so
    /// it can repair us point-to-point (§5).
    fn reply_via_aggregator(&self, success: bool) -> bool {
        self.cfg.mode == Mode::HovercraftPp
            && success
            && self.last_ae_via_agg
            && self.cfg.agg_addr.is_some()
    }

    /// Sends collected AppendEntries: one aggregator copy when every healthy
    /// follower would receive an identical message, individual unicasts
    /// otherwise (divergent followers fail the append and enter recovery,
    /// which is safe — appends are idempotent).
    fn route_appends(&mut self, appends: Vec<(RaftId, Message<Cmd>)>, out: &mut Vec<Output>) {
        if appends.is_empty() {
            return;
        }
        let identical = appends.windows(2).all(|w| w[0].1 == w[1].1);
        if identical {
            let (_, msg) = appends.into_iter().next().expect("nonempty");
            let agg = self.cfg.agg_addr.expect("HC++ mode");
            if let Message::AppendEntries {
                entries,
                leader_commit,
                ..
            } = &msg
            {
                self.push_event(ProtoEvent::AppendSent {
                    dst: agg,
                    entries: entries.len() as u64,
                    commit: *leader_commit,
                });
            }
            out.push(Output::Send {
                dst: agg,
                msg: WireMsg::Raft(msg),
            });
        } else {
            for (to, msg) in appends {
                if let Message::AppendEntries {
                    entries,
                    leader_commit,
                    ..
                } = &msg
                {
                    self.push_event(ProtoEvent::AppendSent {
                        dst: to,
                        entries: entries.len() as u64,
                        commit: *leader_commit,
                    });
                }
                out.push(Output::Send {
                    dst: to,
                    msg: WireMsg::Raft(msg),
                });
            }
        }
    }

    fn on_became_leader(&mut self, now: u64, out: &mut Vec<Output>) {
        self.ledger.reset();
        self.stalled_members.clear();
        // The election instant counts as hearing from everyone: stall
        // detection starts with a full timeout of grace, like check-quorum.
        for m in self.cfg.raft.members.clone() {
            self.ledger.note_heard(m, now);
        }
        self.recovering.clear();
        self.agg_confirmed = false;
        if self.cfg.mode.is_hovercraft() {
            // Entries inherited from previous terms keep their immutable
            // replier assignment; rebuild the ledger from them (§5).
            let last = self.raft.log().last_index();
            for idx in (self.applied + 1)..=last {
                if let Some(e) = self.raft.log().get(idx) {
                    if let Some(r) = e.cmd.desc.replier {
                        self.ledger.assign(r, idx);
                    }
                }
            }
            // Freeze announcements at the inherited horizon; entries above
            // it (our own un-announced proposals, if any) go through
            // replier assignment first.
            self.raft.set_ceiling(self.last_assigned_index());
            // §5: requests the failed leader received but never ordered are
            // still parked in our unordered set (the multicast reached us
            // directly). Order them now, deterministically.
            for id in self.pool.unordered_ids() {
                let (kind, hash) = {
                    let r = self.pool.get(id).expect("listed id present");
                    (r.kind, body_hash(&r.body))
                };
                let desc = EntryDesc::new(id, hash, kind);
                if let Ok(index) = self.raft.propose(Cmd::meta(desc)) {
                    self.push_event(ProtoEvent::Proposed { index, id });
                    self.pool.mark_ordered(id);
                }
            }
        }
        if self.cfg.mode == Mode::HovercraftPp {
            if let Some(agg) = self.cfg.agg_addr {
                out.push(Output::Send {
                    dst: agg,
                    msg: WireMsg::VoteProbe {
                        term: self.raft.term(),
                    },
                });
            }
        }
        self.try_announce(now, out);
    }

    /// Highest contiguous log index whose replier is already assigned.
    fn last_assigned_index(&self) -> LogIndex {
        let mut idx = self.raft.log().last_index();
        while idx >= self.raft.log().first_index() {
            match self.raft.log().get(idx) {
                Some(e) if e.cmd.desc.replier.is_none() => idx -= 1,
                _ => break,
            }
        }
        idx
    }

    /// §3.3–3.4: stamp repliers into fresh entries (bounded queues + policy)
    /// and raise the replication ceiling over them, then ship.
    fn try_announce(&mut self, now: u64, out: &mut Vec<Output>) {
        if !self.is_leader() {
            return;
        }
        if !self.cfg.mode.is_hovercraft() {
            // Vanilla mode replicates unconditionally (infinite ceiling).
            let actions = self.raft.pump(now);
            self.drain(actions, now, out);
            return;
        }
        let last = self.raft.log().last_index();
        let mut ceiling = self.raft.ceiling().min(last);
        let members: Vec<RaftId> = self.cfg.raft.members.clone();
        let me = self.id();
        // The leader is trivially alive; never let it self-stall.
        self.ledger.note_heard(me, now);
        self.note_stall_transitions(&members, now);
        let mut advanced = false;
        while ceiling < last {
            let idx = ceiling + 1;
            let needs_assignment = self
                .raft
                .log()
                .get(idx)
                .map(|e| e.cmd.desc.replier.is_none())
                .unwrap_or(false);
            if needs_assignment {
                let candidates: Vec<RaftId> = if self.cfg.lb_replies {
                    members.clone()
                } else {
                    vec![me]
                };
                let Some(r) = self.ledger.pick(
                    &candidates,
                    self.cfg.bound,
                    self.cfg.policy,
                    &mut self.rng,
                    now,
                    self.cfg.stall_timeout_ns,
                ) else {
                    break; // no eligible node: wait (§3.4 — liveness preserved)
                };
                if let Some(e) = self.raft.log_mut().get_mut(idx) {
                    e.cmd.desc.replier = Some(r);
                }
                self.ledger.assign(r, idx);
                self.push_event(ProtoEvent::ReplierAssigned {
                    index: idx,
                    replier: r,
                });
            }
            ceiling = idx;
            advanced = true;
        }
        if advanced {
            self.raft.set_ceiling(ceiling);
            self.push_event(ProtoEvent::Announced { upto: ceiling });
        }
        let actions = self.raft.pump(now);
        self.drain(actions, now, out);
    }

    /// Emits one [`ProtoEvent::ReplierStalled`] / [`ProtoEvent::ReplierRecovered`]
    /// pair per stall episode by diffing the current stall verdicts against
    /// the remembered set (leader only).
    fn note_stall_transitions(&mut self, members: &[RaftId], now: u64) {
        for &m in members {
            let stalled = self.ledger.is_stalled(m, now, self.cfg.stall_timeout_ns);
            if stalled && self.stalled_members.insert(m) {
                self.push_event(ProtoEvent::ReplierStalled { node: m });
            } else if !stalled && self.stalled_members.remove(&m) {
                self.push_event(ProtoEvent::ReplierRecovered { node: m });
            }
        }
    }

    // ---- apply path ---------------------------------------------------------

    /// Hands committed entries to the application thread in log order,
    /// stopping at the first entry whose body is still missing.
    fn try_apply(&mut self, now: u64, out: &mut Vec<Output>) {
        while self.next_apply <= self.raft.commit_index() {
            let idx = self.next_apply;
            let Some(entry) = self.raft.log().get(idx) else {
                break;
            };
            let desc = entry.cmd.desc;
            let inline_body = entry.cmd.body.clone();
            let body = match inline_body {
                Some(b) => b,
                None => match self.pool.get(desc.id) {
                    Some(r) => r.body.clone(),
                    None => {
                        // Committed but body still in flight: recovery is
                        // already running (or starts now); apply stalls.
                        self.stats.apply_stalls += 1;
                        if !self.missing.contains_key(&desc.id) {
                            self.push_event(ProtoEvent::ApplyStalled {
                                index: idx,
                                id: desc.id,
                            });
                        }
                        self.request_missing_window(idx, now, out);
                        return;
                    }
                },
            };
            // Committed entries were always announced, hence assigned; fall
            // back to the leader for defence in depth.
            let replier = desc
                .replier
                .or(self.raft.leader_hint())
                .unwrap_or_else(|| self.id());
            let am_replier = replier == self.id();
            let execute = match desc.kind {
                OpKind::ReadWrite => true,
                OpKind::ReadOnly => {
                    if self.cfg.lb_reads && self.cfg.mode.is_hovercraft() {
                        am_replier
                    } else {
                        true
                    }
                }
            };
            let (reply, cost) = if execute {
                self.stats.executed += 1;
                self.push_event(ProtoEvent::Executed {
                    index: idx,
                    id: desc.id,
                });
                let r = self.service.execute(&body, desc.kind.is_read_only());
                (Some(r.reply), r.cost_ns)
            } else {
                self.stats.ro_skipped += 1;
                self.push_event(ProtoEvent::RoSkipped {
                    index: idx,
                    id: desc.id,
                });
                (None, 0)
            };
            self.pending.insert(
                idx,
                PendingReply {
                    client: desc.id.src_ip,
                    id: desc.id,
                    reply,
                    respond: am_replier && execute,
                },
            );
            out.push(Output::Execute {
                index: idx,
                cost_ns: cost,
            });
            self.next_apply += 1;
        }
    }

    /// §5, pipelined: when apply stalls at `from`, request the bodies of
    /// *every* committed-but-missing entry in a bounded window ahead of the
    /// cursor, not just the blocking one. A restarted follower whose pool
    /// came back empty catches up in one recovery round-trip per window
    /// instead of one per entry.
    fn request_missing_window(&mut self, from: LogIndex, now: u64, out: &mut Vec<Output>) {
        /// Entries scanned past the stalled apply cursor per invocation.
        const RECOVERY_WINDOW: u64 = 64;
        let hi = self
            .raft
            .commit_index()
            .min(from.saturating_add(RECOVERY_WINDOW - 1));
        let mut wanted: Vec<ReqId> = Vec::new();
        for idx in from..=hi {
            let Some(entry) = self.raft.log().get(idx) else {
                break;
            };
            let id = entry.cmd.desc.id;
            if entry.cmd.body.is_none()
                && self.pool.get(id).is_none()
                && !self.missing.contains_key(&id)
            {
                wanted.push(id);
            }
        }
        let leader = self.raft.leader_hint().filter(|&l| l != self.id());
        for id in wanted {
            // Even without a known leader the entry lands in `missing`;
            // `retry_recoveries` will fan out to a random member shortly.
            self.missing.insert(id, now);
            if let Some(l) = leader {
                self.stats.recoveries_sent += 1;
                self.push_event(ProtoEvent::RecoveryRequested { id, to: l });
                out.push(Output::Send {
                    dst: l,
                    msg: WireMsg::RecoveryReq { id },
                });
            }
        }
    }

    fn retry_recoveries(&mut self, now: u64, out: &mut Vec<Output>) {
        if self.missing.is_empty() {
            return;
        }
        let retry = self.cfg.recovery_retry_ns;
        let leader = self.raft.leader_hint();
        let members = self.cfg.raft.members.clone();
        let me = self.id();
        let mut sent = 0u64;
        let mut evs: Vec<ProtoEvent> = Vec::new();
        for (id, last) in self.missing.iter_mut() {
            if now.saturating_sub(*last) >= retry {
                *last = now;
                // Prefer the leader; fall back to a random other member —
                // any node that saw the multicast can serve it (§5).
                let dst = match leader {
                    Some(l) if l != me => l,
                    _ => {
                        let others: Vec<RaftId> =
                            members.iter().copied().filter(|m| *m != me).collect();
                        if others.is_empty() {
                            continue;
                        }
                        others[self.rng.gen_range(0..others.len())]
                    }
                };
                sent += 1;
                evs.push(ProtoEvent::RecoveryRequested { id: *id, to: dst });
                out.push(Output::Send {
                    dst,
                    msg: WireMsg::RecoveryReq { id: *id },
                });
            }
        }
        self.stats.recoveries_sent += sent;
        for e in evs {
            self.push_event(e);
        }
    }
}
