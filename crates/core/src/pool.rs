//! The unordered request pool (§3.2, §5).
//!
//! With replication separated from ordering, every node receives client
//! requests directly from the multicast group and parks them here, keyed by
//! the R2P2 3-tuple, until an `append_entries` assigns them a log position.
//! Entries that never get ordered (e.g. the multicast reached this node but
//! the leader dropped the request) are garbage-collected after a timeout;
//! early GC is safe — it merely re-triggers the recovery protocol (§5).
//!
//! Bodies of *ordered* requests move to a retained archive so the node can
//! serve `recovery_request`s from peers that missed the multicast, and so
//! the applier can execute entries in log order.

use fxhash::FxHashMap;

use bytes::Bytes;
use r2p2::ReqId;

use crate::cmd::OpKind;

/// A parked client request.
#[derive(Clone, Debug)]
pub struct PooledReq {
    /// Operation kind from the request's POLICY field.
    pub kind: OpKind,
    /// Request payload.
    pub body: Bytes,
    /// Arrival time (ns), for GC.
    pub arrived: u64,
}

/// The unordered set plus the ordered-body archive.
#[derive(Default)]
pub struct UnorderedPool {
    unordered: FxHashMap<ReqId, PooledReq>,
    archive: FxHashMap<ReqId, PooledReq>,
}

impl UnorderedPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks a client request awaiting ordering. Duplicate arrivals (e.g.
    /// client retries) keep the first copy.
    pub fn insert(&mut self, id: ReqId, kind: OpKind, body: Bytes, now: u64) {
        if self.archive.contains_key(&id) {
            return;
        }
        self.unordered.entry(id).or_insert(PooledReq {
            kind,
            body,
            arrived: now,
        });
    }

    /// True if the request is available (unordered or archived).
    pub fn contains(&self, id: ReqId) -> bool {
        self.unordered.contains_key(&id) || self.archive.contains_key(&id)
    }

    /// True if the request has already been bound to a log slot (it sits in
    /// the archive). Used for duplicate suppression on the leader.
    pub fn is_archived(&self, id: ReqId) -> bool {
        self.archive.contains_key(&id)
    }

    /// Looks up a request body wherever it lives.
    pub fn get(&self, id: ReqId) -> Option<&PooledReq> {
        self.unordered.get(&id).or_else(|| self.archive.get(&id))
    }

    /// Marks a request as ordered: moves it from the unordered set to the
    /// archive (it is now referenced by a log entry and must outlive GC so
    /// peers can recover it). Returns false if the body is missing — the
    /// caller should start recovery.
    pub fn mark_ordered(&mut self, id: ReqId) -> bool {
        if self.archive.contains_key(&id) {
            return true;
        }
        match self.unordered.remove(&id) {
            Some(r) => {
                self.archive.insert(id, r);
                true
            }
            None => false,
        }
    }

    /// Inserts a body recovered from a peer directly into the archive.
    pub fn insert_recovered(&mut self, id: ReqId, kind: OpKind, body: Bytes, now: u64) {
        self.unordered.remove(&id);
        self.archive.entry(id).or_insert(PooledReq {
            kind,
            body,
            arrived: now,
        });
    }

    /// Garbage-collects unordered requests **strictly older** than
    /// `timeout` ns: an entry aged exactly `timeout` survives, one aged
    /// `timeout + 1` is collected (boundary pinned by
    /// `gc_boundary_is_strictly_older_than`).
    /// Returns how many were collected.
    pub fn gc(&mut self, now: u64, timeout: u64) -> usize {
        let before = self.unordered.len();
        self.unordered
            .retain(|_, r| now.saturating_sub(r.arrived) <= timeout);
        before - self.unordered.len()
    }

    /// Number of requests awaiting ordering.
    pub fn unordered_len(&self) -> usize {
        self.unordered.len()
    }

    /// Ids of all requests awaiting ordering, sorted (deterministic across
    /// replicas). A new leader proposes these — requests the failed leader
    /// received but never ordered (§5).
    pub fn unordered_ids(&self) -> Vec<ReqId> {
        let mut ids: Vec<ReqId> = self.unordered.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of ordered (archived) request bodies retained.
    pub fn archived_len(&self) -> usize {
        self.archive.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u16) -> ReqId {
        ReqId::new(1, 1, n)
    }

    fn body() -> Bytes {
        Bytes::from_static(b"req")
    }

    #[test]
    fn insert_then_order() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, body(), 0);
        assert!(p.contains(id(1)));
        assert_eq!(p.unordered_len(), 1);
        assert!(p.mark_ordered(id(1)));
        assert_eq!(p.unordered_len(), 0);
        assert_eq!(p.archived_len(), 1);
        assert!(p.contains(id(1)), "still serveable for recovery");
    }

    #[test]
    fn ordering_a_missing_request_fails() {
        let mut p = UnorderedPool::new();
        assert!(!p.mark_ordered(id(9)));
    }

    #[test]
    fn mark_ordered_is_idempotent() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadOnly, body(), 0);
        assert!(p.mark_ordered(id(1)));
        assert!(p.mark_ordered(id(1)));
        assert_eq!(p.archived_len(), 1);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, Bytes::from_static(b"first"), 0);
        p.insert(id(1), OpKind::ReadWrite, Bytes::from_static(b"second"), 5);
        assert_eq!(&p.get(id(1)).unwrap().body[..], b"first");
    }

    #[test]
    fn insert_after_archive_is_ignored() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, body(), 0);
        p.mark_ordered(id(1));
        p.insert(id(1), OpKind::ReadWrite, Bytes::from_static(b"late dup"), 9);
        assert_eq!(p.unordered_len(), 0);
        assert_eq!(&p.get(id(1)).unwrap().body[..], b"req");
    }

    #[test]
    fn gc_only_touches_unordered() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, body(), 0);
        p.insert(id(2), OpKind::ReadWrite, body(), 500);
        p.mark_ordered(id(1));
        let n = p.gc(1200, 600);
        assert_eq!(n, 1, "only the stale unordered one");
        assert!(p.contains(id(1)), "archived survives GC");
        assert!(!p.contains(id(2)));
    }

    #[test]
    fn gc_boundary_is_strictly_older_than() {
        // Pins the documented boundary: "older than timeout" means an entry
        // aged exactly `timeout` is still alive, and is collected one
        // nanosecond later.
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, body(), 1000);
        assert_eq!(p.gc(1000 + 600, 600), 0, "age == timeout survives");
        assert!(p.contains(id(1)));
        assert_eq!(p.gc(1000 + 601, 600), 1, "age == timeout + 1 collected");
        assert!(!p.contains(id(1)));
    }

    #[test]
    fn recovered_bodies_land_in_archive() {
        let mut p = UnorderedPool::new();
        p.insert_recovered(id(3), OpKind::ReadOnly, body(), 7);
        assert_eq!(p.unordered_len(), 0);
        assert_eq!(p.archived_len(), 1);
        assert!(p.mark_ordered(id(3)));
    }
}
