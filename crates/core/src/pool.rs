//! The unordered request pool (§3.2, §5).
//!
//! With replication separated from ordering, every node receives client
//! requests directly from the multicast group and parks them here, keyed by
//! the R2P2 3-tuple, until an `append_entries` assigns them a log position.
//! Entries that never get ordered (e.g. the multicast reached this node but
//! the leader dropped the request) are garbage-collected after a timeout;
//! early GC is safe — it merely re-triggers the recovery protocol (§5).
//!
//! Bodies of *ordered* requests move to a retained archive so the node can
//! serve `recovery_request`s from peers that missed the multicast, and so
//! the applier can execute entries in log order.

use fxhash::FxHashMap;

use bytes::Bytes;
use r2p2::ReqId;

use crate::cmd::OpKind;

/// A parked client request.
#[derive(Clone, Debug)]
pub struct PooledReq {
    /// Operation kind from the request's POLICY field.
    pub kind: OpKind,
    /// Request payload.
    pub body: Bytes,
    /// Arrival time (ns), for GC.
    pub arrived: u64,
}

/// The unordered set plus the ordered-body archive.
#[derive(Clone, Default)]
pub struct UnorderedPool {
    unordered: FxHashMap<ReqId, PooledReq>,
    archive: FxHashMap<ReqId, PooledReq>,
    /// Dedupe tombstones for bodies dropped by snapshot compaction: id →
    /// compaction time. The archive doubles as the duplicate-suppression
    /// set, so a body cannot simply vanish when its log entry is compacted
    /// — a delayed duplicate or client retry would get re-ordered and
    /// re-executed. Tombstones keep the id (16 bytes, no body) until the
    /// GC timeout expires them, which bounds memory by the request rate
    /// times the timeout instead of the full history.
    compacted: FxHashMap<ReqId, u64>,
}

impl UnorderedPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks a client request awaiting ordering. Duplicate arrivals (e.g.
    /// client retries) keep the first copy.
    pub fn insert(&mut self, id: ReqId, kind: OpKind, body: Bytes, now: u64) {
        if self.archive.contains_key(&id) || self.compacted.contains_key(&id) {
            return;
        }
        self.unordered.entry(id).or_insert(PooledReq {
            kind,
            body,
            arrived: now,
        });
    }

    /// True if the request is available (unordered or archived).
    pub fn contains(&self, id: ReqId) -> bool {
        self.unordered.contains_key(&id) || self.archive.contains_key(&id)
    }

    /// True if the request has already been bound to a log slot (it sits in
    /// the archive, or was compacted out of it by a snapshot). Used for
    /// duplicate suppression on the leader.
    pub fn is_archived(&self, id: ReqId) -> bool {
        self.archive.contains_key(&id) || self.compacted.contains_key(&id)
    }

    /// Looks up a request body wherever it lives.
    pub fn get(&self, id: ReqId) -> Option<&PooledReq> {
        self.unordered.get(&id).or_else(|| self.archive.get(&id))
    }

    /// Marks a request as ordered: moves it from the unordered set to the
    /// archive (it is now referenced by a log entry and must outlive GC so
    /// peers can recover it). Returns false if the body is missing — the
    /// caller should start recovery.
    pub fn mark_ordered(&mut self, id: ReqId) -> bool {
        if self.archive.contains_key(&id) || self.compacted.contains_key(&id) {
            return true;
        }
        match self.unordered.remove(&id) {
            Some(r) => {
                self.archive.insert(id, r);
                true
            }
            None => false,
        }
    }

    /// Inserts a body recovered from a peer directly into the archive.
    pub fn insert_recovered(&mut self, id: ReqId, kind: OpKind, body: Bytes, now: u64) {
        self.unordered.remove(&id);
        self.archive.entry(id).or_insert(PooledReq {
            kind,
            body,
            arrived: now,
        });
    }

    /// Garbage-collects unordered requests **strictly older** than
    /// `timeout` ns: an entry aged exactly `timeout` survives, one aged
    /// `timeout + 1` is collected (boundary pinned by
    /// `gc_boundary_is_strictly_older_than`).
    /// Returns how many were collected.
    pub fn gc(&mut self, now: u64, timeout: u64) -> usize {
        let before = self.unordered.len();
        self.unordered
            .retain(|_, r| now.saturating_sub(r.arrived) <= timeout);
        // Compaction tombstones expire on the same boundary: by then every
        // client retry and delayed duplicate of the request has died out.
        self.compacted
            .retain(|_, t| now.saturating_sub(*t) <= timeout);
        before - self.unordered.len()
    }

    /// Number of requests awaiting ordering.
    pub fn unordered_len(&self) -> usize {
        self.unordered.len()
    }

    /// Ids of all requests awaiting ordering, sorted (deterministic across
    /// replicas). A new leader proposes these — requests the failed leader
    /// received but never ordered (§5).
    pub fn unordered_ids(&self) -> Vec<ReqId> {
        let mut ids: Vec<ReqId> = self.unordered.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of ordered (archived) request bodies retained.
    pub fn archived_len(&self) -> usize {
        self.archive.len()
    }

    /// Ids of all live (unexpired) compaction tombstones.
    pub fn tombstone_ids(&self) -> Vec<ReqId> {
        self.compacted.keys().copied().collect()
    }

    /// Number of live (unexpired) compaction tombstones.
    pub fn tombstone_len(&self) -> usize {
        self.compacted.len()
    }

    /// Seeds the dedupe tombstones carried inside an installed snapshot:
    /// every id is marked ordered-and-compacted, and any parked unordered
    /// or archived copy this node still holds is dropped. This is what
    /// makes snapshot installation safe for exactly-one-reply: an
    /// installer that never received the log entries below the snapshot
    /// horizon has no way to enumerate their ids from its own log, so
    /// without the carried set a request covered by the snapshot could
    /// linger in its unordered pool — and a later leader election would
    /// re-propose (and re-execute) it via [`UnorderedPool::unordered_ids`].
    /// Returns how many parked bodies were dropped.
    pub fn seed_tombstones(&mut self, ids: &[ReqId], now: u64) -> usize {
        let mut dropped = 0;
        for id in ids {
            if self.unordered.remove(id).is_some() {
                dropped += 1;
            }
            if self.archive.remove(id).is_some() {
                dropped += 1;
            }
            self.compacted.entry(*id).or_insert(now);
        }
        dropped
    }

    /// Feeds the pool's full content into `h` for model-checker state
    /// fingerprints: all three maps as id-sorted vectors, arrival times as
    /// ages relative to `now` (only age drives GC behaviour).
    pub fn hash_state(&self, now: u64, h: &mut dyn std::hash::Hasher) {
        fn side(map: &FxHashMap<ReqId, PooledReq>, now: u64, h: &mut dyn std::hash::Hasher) {
            let mut reqs: Vec<(u64, &PooledReq)> =
                map.iter().map(|(id, r)| (id.as_u64(), r)).collect();
            reqs.sort_unstable_by_key(|&(id, _)| id);
            h.write_usize(reqs.len());
            for (id, r) in reqs {
                h.write_u64(id);
                h.write_u8(r.kind as u8);
                h.write(&r.body);
                h.write_u64(now.saturating_sub(r.arrived));
            }
        }
        side(&self.unordered, now, h);
        side(&self.archive, now, h);
        let mut tombs: Vec<(u64, u64)> = self
            .compacted
            .iter()
            .map(|(id, &t)| (id.as_u64(), now.saturating_sub(t)))
            .collect();
        tombs.sort_unstable();
        h.write_usize(tombs.len());
        for (id, age) in tombs {
            h.write_u64(id);
            h.write_u64(age);
        }
    }

    /// Drops the archived bodies of the given ordered requests, leaving
    /// dedupe tombstones behind (expired by [`UnorderedPool::gc`]). Called
    /// when a snapshot compacts the log entries referencing them: peers
    /// that still need those operations receive the snapshot
    /// (InstallSnapshot) instead of per-request body recovery, so the
    /// bodies can finally leave memory. This is the payload half of the
    /// dual compaction schedule — bodies and ordering metadata compact
    /// independently. Returns how many bodies were dropped.
    pub fn compact_archive(&mut self, ids: &[ReqId], now: u64) -> usize {
        let before = self.archive.len();
        for id in ids {
            if self.archive.remove(id).is_some() {
                self.compacted.insert(*id, now);
            }
        }
        before - self.archive.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u16) -> ReqId {
        ReqId::new(1, 1, n)
    }

    fn body() -> Bytes {
        Bytes::from_static(b"req")
    }

    #[test]
    fn insert_then_order() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, body(), 0);
        assert!(p.contains(id(1)));
        assert_eq!(p.unordered_len(), 1);
        assert!(p.mark_ordered(id(1)));
        assert_eq!(p.unordered_len(), 0);
        assert_eq!(p.archived_len(), 1);
        assert!(p.contains(id(1)), "still serveable for recovery");
    }

    #[test]
    fn ordering_a_missing_request_fails() {
        let mut p = UnorderedPool::new();
        assert!(!p.mark_ordered(id(9)));
    }

    #[test]
    fn mark_ordered_is_idempotent() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadOnly, body(), 0);
        assert!(p.mark_ordered(id(1)));
        assert!(p.mark_ordered(id(1)));
        assert_eq!(p.archived_len(), 1);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, Bytes::from_static(b"first"), 0);
        p.insert(id(1), OpKind::ReadWrite, Bytes::from_static(b"second"), 5);
        assert_eq!(&p.get(id(1)).unwrap().body[..], b"first");
    }

    #[test]
    fn insert_after_archive_is_ignored() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, body(), 0);
        p.mark_ordered(id(1));
        p.insert(id(1), OpKind::ReadWrite, Bytes::from_static(b"late dup"), 9);
        assert_eq!(p.unordered_len(), 0);
        assert_eq!(&p.get(id(1)).unwrap().body[..], b"req");
    }

    #[test]
    fn gc_only_touches_unordered() {
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, body(), 0);
        p.insert(id(2), OpKind::ReadWrite, body(), 500);
        p.mark_ordered(id(1));
        let n = p.gc(1200, 600);
        assert_eq!(n, 1, "only the stale unordered one");
        assert!(p.contains(id(1)), "archived survives GC");
        assert!(!p.contains(id(2)));
    }

    #[test]
    fn gc_boundary_is_strictly_older_than() {
        // Pins the documented boundary: "older than timeout" means an entry
        // aged exactly `timeout` is still alive, and is collected one
        // nanosecond later.
        let mut p = UnorderedPool::new();
        p.insert(id(1), OpKind::ReadWrite, body(), 1000);
        assert_eq!(p.gc(1000 + 600, 600), 0, "age == timeout survives");
        assert!(p.contains(id(1)));
        assert_eq!(p.gc(1000 + 601, 600), 1, "age == timeout + 1 collected");
        assert!(!p.contains(id(1)));
    }

    #[test]
    fn archive_compaction_drops_bodies_but_keeps_dedupe() {
        let mut p = UnorderedPool::new();
        for n in 1..=3 {
            p.insert(id(n), OpKind::ReadWrite, body(), 0);
            p.mark_ordered(id(n));
        }
        assert_eq!(p.compact_archive(&[id(1), id(2), id(9)], 100), 2);
        assert!(!p.contains(id(1)), "body is gone");
        assert!(p.contains(id(3)), "uncompacted body survives");
        // The tombstone still suppresses duplicates: a delayed copy or a
        // client retry of a compacted request must not be re-ordered and
        // re-executed (exactly-one-reply).
        assert!(p.is_archived(id(1)));
        p.insert(id(1), OpKind::ReadWrite, Bytes::from_static(b"dup"), 200);
        assert_eq!(p.unordered_len(), 0);
        assert!(p.mark_ordered(id(1)), "treated as already ordered");
        // Tombstones expire on the GC boundary, bounding their memory.
        p.gc(100 + 601, 600);
        assert!(!p.is_archived(id(1)));
    }

    #[test]
    fn seeded_tombstones_purge_parked_copies_and_suppress_duplicates() {
        let mut p = UnorderedPool::new();
        // A copy of a snapshot-covered request is still parked unordered
        // (this node never saw the entry that ordered it).
        p.insert(id(1), OpKind::ReadWrite, body(), 0);
        // Another covered request sits archived locally.
        p.insert(id(2), OpKind::ReadWrite, body(), 0);
        p.mark_ordered(id(2));
        assert_eq!(p.seed_tombstones(&[id(1), id(2), id(7)], 50), 2);
        assert_eq!(p.unordered_len(), 0, "no re-proposal candidate remains");
        assert_eq!(p.archived_len(), 0);
        assert!(p.is_archived(id(1)), "tombstone suppresses late duplicates");
        assert!(p.is_archived(id(7)));
        p.insert(id(1), OpKind::ReadWrite, Bytes::from_static(b"dup"), 60);
        assert_eq!(p.unordered_len(), 0);
        let mut ids = p.tombstone_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![id(1), id(2), id(7)]);
        // Seeded tombstones expire on the normal GC boundary.
        p.gc(50 + 601, 600);
        assert!(!p.is_archived(id(7)));
    }

    #[test]
    fn recovered_bodies_land_in_archive() {
        let mut p = UnorderedPool::new();
        p.insert_recovered(id(3), OpKind::ReadOnly, body(), 7);
        assert_eq!(p.unordered_len(), 0);
        assert_eq!(p.archived_len(), 1);
        assert!(p.mark_ordered(id(3)));
    }
}
