//! The on-wire message vocabulary of a HovercRaft deployment.
//!
//! Everything — client RPCs, Raft RPCs, recovery, flow-control feedback, and
//! the HovercRaft++ aggregator messages — travels over R2P2 (§3.1, §6.1);
//! [`WireMsg::r2p2_type`] gives the R2P2 message-type each variant maps to,
//! and [`WireMsg::wire_size`] its size on the wire, which every component
//! must charge identically.

use bytes::Bytes;
use r2p2::{control_wire_size, msg_wire_size, MsgType, ReqId};
use raft::{LogIndex, Message, RaftId, Term};

use crate::cmd::{Cmd, OpKind};

/// Per-follower status snapshot carried in an [`WireMsg::AggCommit`]: the
/// aggregator's `match_idx` and `completed` registers for one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggStatus {
    /// The follower.
    pub node: RaftId,
    /// Its match index (ingress register).
    pub match_index: LogIndex,
    /// Its applied index (egress "completed requests" register).
    pub applied_index: LogIndex,
}

/// A message on the simulated wire.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMsg {
    /// Client → service (unicast to the leader, the flow-control VIP, or
    /// the group multicast address depending on the deployment).
    Request {
        /// The R2P2 3-tuple.
        id: ReqId,
        /// Read-write or read-only (from the POLICY field).
        kind: OpKind,
        /// Opaque request payload, handed to the [`crate::Service`].
        body: Bytes,
    },
    /// Designated replier → client. The source address may differ from the
    /// address the client sent its request to — R2P2's key affordance.
    Response {
        /// Echo of the request's 3-tuple.
        id: ReqId,
        /// Service reply payload.
        body: Bytes,
    },
    /// Flow-control shed a request (§6.3); the client should back off.
    Nack {
        /// Echo of the request's 3-tuple.
        id: ReqId,
    },
    /// Replier → flow-control middlebox: one request left the system.
    Feedback,
    /// A Raft RPC between group members (or via the aggregator).
    Raft(Message<Cmd>),
    /// Follower → peer: resend the body of a request seen in an
    /// append_entries but missing from the unordered set (§3.2).
    RecoveryReq {
        /// The missing request.
        id: ReqId,
    },
    /// Reply carrying a recovered request body.
    RecoveryRep {
        /// The recovered request.
        id: ReqId,
        /// Its kind.
        kind: OpKind,
        /// Its payload.
        body: Bytes,
    },
    /// Aggregator → all nodes: the commit index advanced (or a pending
    /// re-announce); carries the per-follower register snapshot (§6.4).
    AggCommit {
        /// Aggregator's current term.
        term: Term,
        /// Committed log index.
        commit: LogIndex,
        /// Register snapshot per follower.
        status: Vec<AggStatus>,
    },
    /// Serving peer → recovering node: one chunk of a snapshot state
    /// transfer (InstallSnapshot, chunked so the chaos layer can kill,
    /// pause, partition, or duplicate-deliver mid-transfer). Transfers are
    /// peer-served (§5): usually the leader streams to a lagging follower,
    /// but any replica answers a RecoveryReq for a compacted body this way
    /// — including healing a rejoined *leader* that won election on log
    /// completeness while missing compacted bodies. Offsets address the
    /// snapshot blob, so duplicates and reorderings are idempotent; the
    /// receiver acks cumulatively and the sender streams stop-and-wait.
    SnapChunk {
        /// Serving peer's term.
        term: Term,
        /// Serving peer's id (counts as peer contact: suppresses elections
        /// on a catching-up follower without asserting leadership).
        from: RaftId,
        /// Log index the snapshot covers.
        snap_index: LogIndex,
        /// Term of the entry at `snap_index`.
        snap_term: Term,
        /// Byte offset of this chunk within the snapshot blob.
        offset: u64,
        /// Total snapshot size in bytes.
        total: u64,
        /// The chunk payload.
        data: Bytes,
    },
    /// Recovering node → serving peer: cumulative snapshot-transfer ack;
    /// `next_offset` is the first byte not yet received (== the blob size
    /// once the snapshot is fully received and installed). A node that
    /// restarted mid-transfer acks 0, rewinding the sender cleanly across
    /// incarnation epochs.
    SnapAck {
        /// Responder's current term.
        term: Term,
        /// Echo of the transfer's snapshot index.
        snap_index: LogIndex,
        /// First byte offset still missing.
        next_offset: u64,
        /// Responder id.
        from: RaftId,
    },
    /// New leader → aggregator: liveness probe (§6.4). The aggregator
    /// flushes and answers; it never votes.
    VoteProbe {
        /// The new leader's term.
        term: Term,
    },
    /// Aggregator → leader: probe answer.
    VoteProbeRep {
        /// Echoed term.
        term: Term,
    },
}

impl raft::HashState for WireMsg {
    fn hash_state(&self, h: &mut dyn std::hash::Hasher, rename: &dyn Fn(RaftId) -> RaftId) {
        match self {
            WireMsg::Request { id, kind, body } => {
                h.write_u8(0);
                h.write_u64(id.as_u64());
                h.write_u8(*kind as u8);
                h.write(body);
            }
            WireMsg::Response { id, body } => {
                h.write_u8(1);
                h.write_u64(id.as_u64());
                h.write(body);
            }
            WireMsg::Nack { id } => {
                h.write_u8(2);
                h.write_u64(id.as_u64());
            }
            WireMsg::Feedback => h.write_u8(3),
            WireMsg::Raft(m) => {
                h.write_u8(4);
                m.hash_state(h, rename);
            }
            WireMsg::RecoveryReq { id } => {
                h.write_u8(5);
                h.write_u64(id.as_u64());
            }
            WireMsg::RecoveryRep { id, kind, body } => {
                h.write_u8(6);
                h.write_u64(id.as_u64());
                h.write_u8(*kind as u8);
                h.write(body);
            }
            WireMsg::AggCommit {
                term,
                commit,
                status,
            } => {
                h.write_u8(7);
                h.write_u64(*term);
                h.write_u64(*commit);
                let mut st: Vec<AggStatus> = status
                    .iter()
                    .map(|s| AggStatus {
                        node: rename(s.node),
                        ..*s
                    })
                    .collect();
                st.sort_unstable_by_key(|s| s.node);
                h.write_usize(st.len());
                for s in st {
                    h.write_u32(s.node);
                    h.write_u64(s.match_index);
                    h.write_u64(s.applied_index);
                }
            }
            WireMsg::SnapChunk {
                term,
                from,
                snap_index,
                snap_term,
                offset,
                total,
                data,
            } => {
                h.write_u8(8);
                h.write_u64(*term);
                h.write_u32(rename(*from));
                h.write_u64(*snap_index);
                h.write_u64(*snap_term);
                h.write_u64(*offset);
                h.write_u64(*total);
                h.write(data);
            }
            WireMsg::SnapAck {
                term,
                snap_index,
                next_offset,
                from,
            } => {
                h.write_u8(9);
                h.write_u64(*term);
                h.write_u64(*snap_index);
                h.write_u64(*next_offset);
                h.write_u32(rename(*from));
            }
            WireMsg::VoteProbe { term } => {
                h.write_u8(10);
                h.write_u64(*term);
            }
            WireMsg::VoteProbeRep { term } => {
                h.write_u8(11);
                h.write_u64(*term);
            }
        }
    }
}

/// Fixed per-message field overhead beyond the R2P2 header for Raft RPCs
/// (terms, indices, ids).
const RAFT_FIXED: usize = 40;

impl WireMsg {
    /// The R2P2 message type this variant is carried as.
    pub fn r2p2_type(&self) -> MsgType {
        match self {
            WireMsg::Request { .. } => MsgType::Request,
            WireMsg::Response { .. } => MsgType::Response,
            WireMsg::Nack { .. } => MsgType::Nack,
            WireMsg::Feedback => MsgType::Feedback,
            WireMsg::Raft(m) => match m {
                Message::RequestVote { .. }
                | Message::PreVote { .. }
                | Message::AppendEntries { .. } => MsgType::RaftReq,
                _ => MsgType::RaftRep,
            },
            WireMsg::RecoveryReq { .. } => MsgType::RecoveryReq,
            WireMsg::RecoveryRep { .. } => MsgType::RecoveryRep,
            WireMsg::SnapChunk { .. } => MsgType::RaftReq,
            WireMsg::SnapAck { .. } => MsgType::RaftRep,
            WireMsg::AggCommit { .. } => MsgType::RaftRep,
            WireMsg::VoteProbe { .. } => MsgType::RaftReq,
            WireMsg::VoteProbeRep { .. } => MsgType::RaftRep,
        }
    }

    /// Size of this message on the wire (R2P2 headers included), using the
    /// standard 1500-byte MTU for fragmentation accounting.
    pub fn wire_size(&self) -> u32 {
        const MTU: usize = 1500;
        match self {
            WireMsg::Request { body, .. } => msg_wire_size(body.len() + 8, MTU),
            WireMsg::Response { body, .. } => msg_wire_size(body.len() + 8, MTU),
            WireMsg::Nack { .. } | WireMsg::Feedback => control_wire_size(),
            WireMsg::Raft(m) => match m {
                Message::RequestVote { .. }
                | Message::RequestVoteReply { .. }
                | Message::PreVote { .. }
                | Message::PreVoteReply { .. } => msg_wire_size(RAFT_FIXED, MTU),
                Message::AppendEntries { entries, .. } => {
                    let payload: usize = entries.iter().map(|e| e.cmd.wire_size() as usize).sum();
                    msg_wire_size(RAFT_FIXED + payload, MTU)
                }
                Message::AppendEntriesReply { .. } => msg_wire_size(RAFT_FIXED, MTU),
            },
            WireMsg::RecoveryReq { .. } => msg_wire_size(16, MTU),
            WireMsg::RecoveryRep { body, .. } => msg_wire_size(16 + body.len(), MTU),
            WireMsg::SnapChunk { data, .. } => msg_wire_size(RAFT_FIXED + data.len(), MTU),
            WireMsg::SnapAck { .. } => msg_wire_size(RAFT_FIXED, MTU),
            WireMsg::AggCommit { status, .. } => msg_wire_size(24 + 20 * status.len(), MTU),
            WireMsg::VoteProbe { .. } | WireMsg::VoteProbeRep { .. } => msg_wire_size(16, MTU),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::EntryDesc;
    use raft::Entry;

    fn id() -> ReqId {
        ReqId::new(1, 2, 3)
    }

    #[test]
    fn request_size_tracks_body() {
        let small = WireMsg::Request {
            id: id(),
            kind: OpKind::ReadWrite,
            body: Bytes::from(vec![0; 24]),
        };
        let big = WireMsg::Request {
            id: id(),
            kind: OpKind::ReadWrite,
            body: Bytes::from(vec![0; 512]),
        };
        assert!(big.wire_size() > small.wire_size() + 400);
    }

    #[test]
    fn metadata_append_entries_is_fixed_cost() {
        // The HovercRaft claim of §3.2: AE size is independent of the
        // request size because entries are metadata-only.
        let entry = |body: Option<Bytes>| Entry {
            term: 1,
            index: 1,
            cmd: Cmd {
                desc: EntryDesc::new(id(), 7, OpKind::ReadWrite),
                body,
            },
        };
        let meta = WireMsg::Raft(Message::AppendEntries {
            term: 1,
            leader: 0,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![entry(None)],
            leader_commit: 0,
        });
        let full = WireMsg::Raft(Message::AppendEntries {
            term: 1,
            leader: 0,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![entry(Some(Bytes::from(vec![0u8; 512])))],
            leader_commit: 0,
        });
        assert!(meta.wire_size() < 120);
        assert!(full.wire_size() > meta.wire_size() + 500);
    }

    #[test]
    fn control_messages_are_tiny() {
        assert_eq!(WireMsg::Feedback.wire_size(), 16);
        assert_eq!(WireMsg::Nack { id: id() }.wire_size(), 16);
    }

    #[test]
    fn r2p2_type_mapping() {
        assert_eq!(
            WireMsg::Request {
                id: id(),
                kind: OpKind::ReadOnly,
                body: Bytes::new()
            }
            .r2p2_type(),
            MsgType::Request
        );
        let ae: WireMsg = WireMsg::Raft(Message::AppendEntries {
            term: 1,
            leader: 0,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        });
        assert_eq!(ae.r2p2_type(), MsgType::RaftReq);
        let rep: WireMsg = WireMsg::Raft(Message::AppendEntriesReply {
            term: 1,
            success: true,
            match_index: 0,
            conflict_index: 0,
            applied_index: 0,
            from: 1,
        });
        assert_eq!(rep.r2p2_type(), MsgType::RaftRep);
    }

    #[test]
    fn snap_chunk_size_tracks_payload() {
        let chunk = |n: usize| WireMsg::SnapChunk {
            term: 2,
            from: 0,
            snap_index: 100,
            snap_term: 2,
            offset: 0,
            total: n as u64,
            data: Bytes::from(vec![0u8; n]),
        };
        assert!(chunk(4096).wire_size() > chunk(64).wire_size() + 4000);
        assert_eq!(chunk(0).r2p2_type(), MsgType::RaftReq);
        let ack = WireMsg::SnapAck {
            term: 2,
            snap_index: 100,
            next_offset: 64,
            from: 1,
        };
        assert_eq!(ack.r2p2_type(), MsgType::RaftRep);
        assert!(ack.wire_size() < 120, "acks are a single small packet");
    }

    #[test]
    fn agg_commit_scales_with_cluster_size() {
        let status = |n: usize| {
            (0..n)
                .map(|i| AggStatus {
                    node: i as RaftId,
                    match_index: 1,
                    applied_index: 1,
                })
                .collect::<Vec<_>>()
        };
        let s3 = WireMsg::AggCommit {
            term: 1,
            commit: 5,
            status: status(2),
        };
        let s9 = WireMsg::AggCommit {
            term: 1,
            commit: 5,
            status: status(8),
        };
        assert!(s9.wire_size() > s3.wire_size());
        assert!(s9.wire_size() < 300, "still a single small packet");
    }
}
