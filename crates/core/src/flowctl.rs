//! The multicast flow-control middlebox (§6.3).
//!
//! With replication separated from ordering, overload no longer self-limits
//! at the leader (dropping there was vanilla Raft's implicit flow control),
//! and uncoordinated drops of multicast copies would grind the cluster into
//! the recovery path. The paper's fix is a middlebox — run on the same
//! programmable switch — that fronts the fault-tolerance group behind a
//! virtual IP:
//!
//! * client requests to the VIP are **admitted** (destination rewritten to
//!   the group multicast address, in-flight counter incremented) while the
//!   counter is under the threshold, and **NACKed** back to the client
//!   otherwise, preventing throughput collapse;
//! * every R2P2 `FEEDBACK` from a replier decrements the counter — one is
//!   sent per completed request.
//!
//! An admitted request whose designated replier dies before sending
//! FEEDBACK would leak its in-flight slot forever — enough such losses
//! (e.g. a leader kill with queued assignments, the Figure 12 scenario)
//! would wedge admission permanently. The middlebox therefore keeps the
//! admission timestamps and **reclaims** any slot older than a timeout:
//! strictly an overestimate of in-flight work, never an underestimate, so
//! admission always recovers. Reclaims are counted in [`FcStats`] so tests
//! can detect leaks, and the conservation identity
//! `admitted − (feedback − spurious_feedback) − reclaimed == in_flight`
//! holds at all times (the invariant checker asserts it).
//!
//! Like the aggregator, this is a pure dataplane struct the testbed adapts
//! onto the simulated switch.

use std::collections::VecDeque;

use r2p2::ReqId;

use crate::msg::WireMsg;

/// What the middlebox decided about a packet addressed to the VIP.
#[derive(Clone, Debug, PartialEq)]
pub enum FcDecision {
    /// Forward the request, rewritten to the group address.
    Admit {
        /// The multicast group to deliver to.
        rewritten_dst: u32,
    },
    /// Shed the request; send a NACK back to the client.
    Nack {
        /// Client address to NACK.
        client: u32,
        /// The request being refused.
        id: ReqId,
    },
    /// A FEEDBACK was absorbed (counter decremented); nothing forwarded.
    Absorbed,
    /// Not a message the middlebox handles; forward unchanged.
    Pass,
}

/// Counters for observability and the Figure 12 experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct FcStats {
    /// Requests admitted into the group.
    pub admitted: u64,
    /// Requests NACKed.
    pub nacked: u64,
    /// Feedback messages absorbed.
    pub feedback: u64,
    /// Slots reclaimed: aged out past the reclaim timeout (replier died
    /// before feeding back) or wiped by a device [`reset`](FlowControl::reset).
    pub reclaimed: u64,
    /// Feedback absorbed while no slot was outstanding (e.g. the slot was
    /// already reclaimed, or arrived after a device reset). A nonzero value
    /// with zero `reclaimed` indicates double feedback — a protocol bug.
    pub spurious_feedback: u64,
}

/// Default slot-reclaim timeout: far above any healthy request's admission →
/// feedback round trip (µs–ms under load), far below experiment durations,
/// and comfortably longer than a leader election, so slots orphaned by a
/// crash come back without masking real in-flight work.
pub const DEFAULT_RECLAIM_NS: u64 = 10_000_000;

/// The flow-control middlebox program.
pub struct FlowControl {
    group: u32,
    cap: u32,
    in_flight: u32,
    /// Admission timestamps of outstanding slots, oldest first. Feedback
    /// and reclaim both retire the oldest slot — the middlebox does not
    /// match feedback to a specific request, it only counts population.
    admitted_at: VecDeque<u64>,
    /// Slots older than this are reclaimed; `None` disables reclamation
    /// (restoring leak-forever semantics, for tests that measure the leak).
    reclaim_after_ns: Option<u64>,
    stats: FcStats,
}

impl FlowControl {
    /// Creates a middlebox admitting at most `cap` in-flight requests and
    /// rewriting admitted requests to multicast address `group`, with the
    /// default reclaim timeout.
    pub fn new(group: u32, cap: u32) -> FlowControl {
        FlowControl {
            group,
            cap,
            in_flight: 0,
            admitted_at: VecDeque::new(),
            reclaim_after_ns: Some(DEFAULT_RECLAIM_NS),
            stats: FcStats::default(),
        }
    }

    /// Overrides the reclaim timeout; `None` disables reclamation.
    pub fn with_reclaim_after(mut self, ns: Option<u64>) -> FlowControl {
        self.reclaim_after_ns = ns;
        self
    }

    /// Requests currently admitted but not yet fed back or reclaimed.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Activity counters.
    pub fn stats(&self) -> FcStats {
        self.stats
    }

    /// Resets the in-flight gauge (device replacement). Wiped slots count
    /// as reclaimed so the conservation identity survives the reset.
    pub fn reset(&mut self) {
        self.stats.reclaimed += self.in_flight as u64;
        self.in_flight = 0;
        self.admitted_at.clear();
    }

    /// Retires slots whose admission is older than the reclaim timeout.
    fn reclaim(&mut self, now: u64) {
        let Some(after) = self.reclaim_after_ns else {
            return;
        };
        while let Some(&t) = self.admitted_at.front() {
            if now.saturating_sub(t) < after {
                break;
            }
            self.admitted_at.pop_front();
            self.in_flight = self.in_flight.saturating_sub(1);
            self.stats.reclaimed += 1;
        }
    }

    /// Processes one packet addressed to the VIP at virtual time `now`.
    pub fn on_packet(&mut self, msg: &WireMsg, now: u64) -> FcDecision {
        self.reclaim(now);
        match msg {
            WireMsg::Request { id, .. } => {
                if self.in_flight >= self.cap {
                    self.stats.nacked += 1;
                    FcDecision::Nack {
                        client: id.src_ip,
                        id: *id,
                    }
                } else {
                    self.in_flight += 1;
                    self.admitted_at.push_back(now);
                    self.stats.admitted += 1;
                    FcDecision::Admit {
                        rewritten_dst: self.group,
                    }
                }
            }
            WireMsg::Feedback => {
                if self.in_flight > 0 {
                    self.in_flight -= 1;
                    self.admitted_at.pop_front();
                } else {
                    self.stats.spurious_feedback += 1;
                }
                self.stats.feedback += 1;
                FcDecision::Absorbed
            }
            _ => FcDecision::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::OpKind;
    use bytes::Bytes;

    fn req(n: u16) -> WireMsg {
        WireMsg::Request {
            id: ReqId::new(77, 1, n),
            kind: OpKind::ReadWrite,
            body: Bytes::from_static(b"x"),
        }
    }

    fn conserved(fc: &FlowControl) -> bool {
        let s = fc.stats();
        s.admitted - (s.feedback - s.spurious_feedback) - s.reclaimed == fc.in_flight() as u64
    }

    #[test]
    fn admits_until_cap_then_nacks() {
        let mut fc = FlowControl::new(0x8000_0000, 2);
        assert!(matches!(fc.on_packet(&req(1), 0), FcDecision::Admit { .. }));
        assert!(matches!(fc.on_packet(&req(2), 0), FcDecision::Admit { .. }));
        match fc.on_packet(&req(3), 0) {
            FcDecision::Nack { client, id } => {
                assert_eq!(client, 77);
                assert_eq!(id.rid, 3);
            }
            other => panic!("expected NACK, got {other:?}"),
        }
        assert_eq!(fc.in_flight(), 2);
        assert_eq!(fc.stats().nacked, 1);
        assert!(conserved(&fc));
    }

    #[test]
    fn feedback_reopens_admission() {
        let mut fc = FlowControl::new(0x8000_0000, 1);
        assert!(matches!(fc.on_packet(&req(1), 0), FcDecision::Admit { .. }));
        assert!(matches!(fc.on_packet(&req(2), 0), FcDecision::Nack { .. }));
        assert_eq!(fc.on_packet(&WireMsg::Feedback, 0), FcDecision::Absorbed);
        assert!(matches!(fc.on_packet(&req(3), 0), FcDecision::Admit { .. }));
        assert!(conserved(&fc));
    }

    #[test]
    fn rewrites_to_group_address() {
        let mut fc = FlowControl::new(0x8000_0007, 8);
        match fc.on_packet(&req(1), 0) {
            FcDecision::Admit { rewritten_dst } => assert_eq!(rewritten_dst, 0x8000_0007),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn underflow_is_counted_as_spurious() {
        let mut fc = FlowControl::new(0, 1);
        assert_eq!(fc.on_packet(&WireMsg::Feedback, 0), FcDecision::Absorbed);
        assert_eq!(fc.in_flight(), 0);
        assert_eq!(fc.stats().spurious_feedback, 1);
        assert!(conserved(&fc));
    }

    #[test]
    fn other_traffic_passes() {
        let mut fc = FlowControl::new(0, 1);
        let m = WireMsg::VoteProbe { term: 1 };
        assert_eq!(fc.on_packet(&m, 0), FcDecision::Pass);
    }

    #[test]
    fn dead_replier_slot_is_reclaimed_and_admission_resumes() {
        // Fill the window, never feed back (the replier "died"), and check
        // that admission wedges until the reclaim timeout passes.
        let mut fc = FlowControl::new(0x8000_0000, 2).with_reclaim_after(Some(1_000));
        assert!(matches!(fc.on_packet(&req(1), 0), FcDecision::Admit { .. }));
        assert!(matches!(
            fc.on_packet(&req(2), 10),
            FcDecision::Admit { .. }
        ));
        assert!(matches!(
            fc.on_packet(&req(3), 500),
            FcDecision::Nack { .. }
        ));
        // First slot (t=0) ages out at t=1000; second (t=10) at t=1010.
        assert!(matches!(
            fc.on_packet(&req(4), 1_005),
            FcDecision::Admit { .. }
        ));
        assert_eq!(fc.stats().reclaimed, 1);
        assert!(matches!(
            fc.on_packet(&req(5), 1_010),
            FcDecision::Admit { .. }
        ));
        assert_eq!(fc.stats().reclaimed, 2);
        assert_eq!(fc.in_flight(), 2);
        assert!(conserved(&fc));
    }

    #[test]
    fn reclamation_disabled_leaks_forever() {
        let mut fc = FlowControl::new(0, 1).with_reclaim_after(None);
        assert!(matches!(fc.on_packet(&req(1), 0), FcDecision::Admit { .. }));
        assert!(matches!(
            fc.on_packet(&req(2), u64::MAX),
            FcDecision::Nack { .. }
        ));
        assert_eq!(fc.stats().reclaimed, 0);
    }

    #[test]
    fn late_feedback_after_reclaim_keeps_counts_conserved() {
        let mut fc = FlowControl::new(0, 4).with_reclaim_after(Some(100));
        fc.on_packet(&req(1), 0);
        // The slot ages out...
        assert!(matches!(
            fc.on_packet(&req(2), 200),
            FcDecision::Admit { .. }
        ));
        assert_eq!(fc.stats().reclaimed, 1);
        // ...then its feedback limps in; the young slot (t=200) must survive.
        fc.on_packet(&WireMsg::Feedback, 210);
        assert_eq!(fc.in_flight(), 0);
        // Population counting: the late feedback retired the young slot in
        // its place, which is fine — counts stay conserved.
        assert!(conserved(&fc));
    }

    #[test]
    fn reset_preserves_conservation() {
        let mut fc = FlowControl::new(0, 8);
        fc.on_packet(&req(1), 0);
        fc.on_packet(&req(2), 0);
        fc.reset();
        assert_eq!(fc.in_flight(), 0);
        assert_eq!(fc.stats().reclaimed, 2);
        assert!(conserved(&fc));
    }
}
