//! The multicast flow-control middlebox (§6.3).
//!
//! With replication separated from ordering, overload no longer self-limits
//! at the leader (dropping there was vanilla Raft's implicit flow control),
//! and uncoordinated drops of multicast copies would grind the cluster into
//! the recovery path. The paper's fix is a middlebox — run on the same
//! programmable switch — that fronts the fault-tolerance group behind a
//! virtual IP:
//!
//! * client requests to the VIP are **admitted** (destination rewritten to
//!   the group multicast address, in-flight counter incremented) while the
//!   counter is under the threshold, and **NACKed** back to the client
//!   otherwise, preventing throughput collapse;
//! * every R2P2 `FEEDBACK` from a replier decrements the counter — one is
//!   sent per completed request.
//!
//! Like the aggregator, this is a pure dataplane struct the testbed adapts
//! onto the simulated switch.

use r2p2::ReqId;

use crate::msg::WireMsg;

/// What the middlebox decided about a packet addressed to the VIP.
#[derive(Clone, Debug, PartialEq)]
pub enum FcDecision {
    /// Forward the request, rewritten to the group address.
    Admit {
        /// The multicast group to deliver to.
        rewritten_dst: u32,
    },
    /// Shed the request; send a NACK back to the client.
    Nack {
        /// Client address to NACK.
        client: u32,
        /// The request being refused.
        id: ReqId,
    },
    /// A FEEDBACK was absorbed (counter decremented); nothing forwarded.
    Absorbed,
    /// Not a message the middlebox handles; forward unchanged.
    Pass,
}

/// Counters for observability and the Figure 12 experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct FcStats {
    /// Requests admitted into the group.
    pub admitted: u64,
    /// Requests NACKed.
    pub nacked: u64,
    /// Feedback messages absorbed.
    pub feedback: u64,
}

/// The flow-control middlebox program.
pub struct FlowControl {
    group: u32,
    cap: u32,
    in_flight: u32,
    stats: FcStats,
}

impl FlowControl {
    /// Creates a middlebox admitting at most `cap` in-flight requests and
    /// rewriting admitted requests to multicast address `group`.
    pub fn new(group: u32, cap: u32) -> FlowControl {
        FlowControl {
            group,
            cap,
            in_flight: 0,
            stats: FcStats::default(),
        }
    }

    /// Requests currently admitted but not yet fed back.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Activity counters.
    pub fn stats(&self) -> FcStats {
        self.stats
    }

    /// Resets the counter (device replacement).
    pub fn reset(&mut self) {
        self.in_flight = 0;
    }

    /// Processes one packet addressed to the VIP.
    pub fn on_packet(&mut self, msg: &WireMsg) -> FcDecision {
        match msg {
            WireMsg::Request { id, .. } => {
                if self.in_flight >= self.cap {
                    self.stats.nacked += 1;
                    FcDecision::Nack {
                        client: id.src_ip,
                        id: *id,
                    }
                } else {
                    self.in_flight += 1;
                    self.stats.admitted += 1;
                    FcDecision::Admit {
                        rewritten_dst: self.group,
                    }
                }
            }
            WireMsg::Feedback => {
                self.in_flight = self.in_flight.saturating_sub(1);
                self.stats.feedback += 1;
                FcDecision::Absorbed
            }
            _ => FcDecision::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::OpKind;
    use bytes::Bytes;

    fn req(n: u16) -> WireMsg {
        WireMsg::Request {
            id: ReqId::new(77, 1, n),
            kind: OpKind::ReadWrite,
            body: Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn admits_until_cap_then_nacks() {
        let mut fc = FlowControl::new(0x8000_0000, 2);
        assert!(matches!(fc.on_packet(&req(1)), FcDecision::Admit { .. }));
        assert!(matches!(fc.on_packet(&req(2)), FcDecision::Admit { .. }));
        match fc.on_packet(&req(3)) {
            FcDecision::Nack { client, id } => {
                assert_eq!(client, 77);
                assert_eq!(id.rid, 3);
            }
            other => panic!("expected NACK, got {other:?}"),
        }
        assert_eq!(fc.in_flight(), 2);
        assert_eq!(fc.stats().nacked, 1);
    }

    #[test]
    fn feedback_reopens_admission() {
        let mut fc = FlowControl::new(0x8000_0000, 1);
        assert!(matches!(fc.on_packet(&req(1)), FcDecision::Admit { .. }));
        assert!(matches!(fc.on_packet(&req(2)), FcDecision::Nack { .. }));
        assert_eq!(fc.on_packet(&WireMsg::Feedback), FcDecision::Absorbed);
        assert!(matches!(fc.on_packet(&req(3)), FcDecision::Admit { .. }));
    }

    #[test]
    fn rewrites_to_group_address() {
        let mut fc = FlowControl::new(0x8000_0007, 8);
        match fc.on_packet(&req(1)) {
            FcDecision::Admit { rewritten_dst } => assert_eq!(rewritten_dst, 0x8000_0007),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn underflow_is_saturating() {
        let mut fc = FlowControl::new(0, 1);
        assert_eq!(fc.on_packet(&WireMsg::Feedback), FcDecision::Absorbed);
        assert_eq!(fc.in_flight(), 0);
    }

    #[test]
    fn other_traffic_passes() {
        let mut fc = FlowControl::new(0, 1);
        let m = WireMsg::VoteProbe { term: 1 };
        assert_eq!(fc.on_packet(&m), FcDecision::Pass);
    }
}
