//! Log commands: the unit HovercRaft replicates.
//!
//! HovercRaft's central protocol change (§3.2) is that the Raft log carries
//! **fixed-size request metadata** instead of request payloads: the R2P2
//! 3-tuple that names the RPC, a body hash to rule out collisions, the
//! operation kind (read-write vs read-only, §3.5), and the designated
//! replier stamped by the leader before first transmission (§3.3).
//! VanillaRaft mode ships the same descriptor *plus* the payload inline,
//! which is exactly what makes its AppendEntries cost scale with request
//! size (Figure 8).

use bytes::Bytes;
use r2p2::ReqId;
use raft::RaftId;

/// Whether an operation may mutate the state machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Reads and/or writes state; must execute on every replica.
    ReadWrite,
    /// Pure read; ordered in the log but executed only by the designated
    /// replier (§3.5). Clients assert this via `REPLICATED_REQ_R`; a wrong
    /// assertion is an application bug the protocol cannot detect (§5).
    ReadOnly,
}

impl OpKind {
    /// True for read-only operations.
    pub fn is_read_only(self) -> bool {
        self == OpKind::ReadOnly
    }
}

/// Fixed-size log-entry metadata (Figure 4): request identity, body hash,
/// kind, and the designated replier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EntryDesc {
    /// The R2P2 3-tuple naming the request.
    pub id: ReqId,
    /// FNV-1a hash of the request body (§5, collision guard).
    pub hash: u64,
    /// Read-only vs read-write.
    pub kind: OpKind,
    /// Designated replier; `None` until the leader announces the entry,
    /// immutable afterwards (§3.3).
    pub replier: Option<RaftId>,
}

impl EntryDesc {
    /// Builds a descriptor for a fresh, not-yet-announced request.
    pub fn new(id: ReqId, hash: u64, kind: OpKind) -> EntryDesc {
        EntryDesc {
            id,
            hash,
            kind,
            replier: None,
        }
    }

    /// Wire size of one descriptor inside an AppendEntries message:
    /// 8 (3-tuple) + 8 (hash) + 8 (term) + 8 (index) + 1 (kind) + 4
    /// (replier) + padding ≈ 40 bytes.
    pub const WIRE_SIZE: u32 = 40;
}

/// A replicated command: descriptor always, payload only in VanillaRaft
/// mode. HovercRaft resolves the payload through the unordered pool.
#[derive(Clone, Debug, PartialEq)]
pub struct Cmd {
    /// Fixed-size metadata; always replicated.
    pub desc: EntryDesc,
    /// The request payload, inlined only by VanillaRaft mode.
    pub body: Option<Bytes>,
}

impl raft::HashState for Cmd {
    fn hash_state(&self, h: &mut dyn std::hash::Hasher, rename: &dyn Fn(RaftId) -> RaftId) {
        h.write_u64(self.desc.id.as_u64());
        h.write_u64(self.desc.hash);
        h.write_u8(self.desc.kind as u8);
        match self.desc.replier {
            Some(r) => {
                h.write_u8(1);
                h.write_u32(rename(r));
            }
            None => h.write_u8(0),
        }
        match &self.body {
            Some(b) => {
                h.write_u8(1);
                h.write(b);
            }
            None => h.write_u8(0),
        }
    }
}

impl Cmd {
    /// A metadata-only command (HovercRaft mode).
    pub fn meta(desc: EntryDesc) -> Cmd {
        Cmd { desc, body: None }
    }

    /// A command carrying its payload inline (VanillaRaft mode).
    pub fn full(desc: EntryDesc, body: Bytes) -> Cmd {
        Cmd {
            desc,
            body: Some(body),
        }
    }

    /// Bytes this command occupies inside an AppendEntries message.
    pub fn wire_size(&self) -> u32 {
        EntryDesc::WIRE_SIZE + self.body.as_ref().map(|b| b.len() as u32).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> ReqId {
        ReqId::new(9, 42, 7)
    }

    #[test]
    fn meta_command_size_is_fixed() {
        let c = Cmd::meta(EntryDesc::new(id(), 1, OpKind::ReadWrite));
        assert_eq!(c.wire_size(), EntryDesc::WIRE_SIZE);
    }

    #[test]
    fn full_command_size_scales_with_body() {
        let c = Cmd::full(
            EntryDesc::new(id(), 1, OpKind::ReadWrite),
            Bytes::from(vec![0u8; 512]),
        );
        assert_eq!(c.wire_size(), EntryDesc::WIRE_SIZE + 512);
    }

    #[test]
    fn kind_predicates() {
        assert!(OpKind::ReadOnly.is_read_only());
        assert!(!OpKind::ReadWrite.is_read_only());
    }
}
