//! Structured protocol events emitted by [`HcNode`](crate::HcNode).
//!
//! Every externally meaningful protocol step — elections, append/ack
//! traffic, commit advancement, replier assignment, recovery, reply and
//! flow-control emission — is recorded as a [`ProtoEvent`] in a small
//! internal buffer that the driver drains after each entry point
//! ([`HcNode::drain_events`](crate::HcNode::drain_events)). The testbed
//! forwards the drained events into a `simnet::Tracer`, stamping them with
//! virtual time; the invariant checker consumes the same stream (e.g. the
//! exactly-one-reply-per-request check keys on [`ProtoEvent::key`]).
//!
//! Events are plain data — no strings are allocated at record time; the
//! human-readable rendering happens only when a trace is displayed or
//! dumped.

use r2p2::ReqId;
use raft::{LogIndex, RaftId};

/// Packs a request id into one `u64` trace key: `src_ip:src_port:rid`.
pub fn req_key(id: ReqId) -> u64 {
    ((id.src_ip as u64) << 32) | ((id.src_port as u64) << 16) | id.rid as u64
}

fn fmt_req(id: ReqId) -> String {
    format!("{}:{}:{}", id.src_ip, id.src_port, id.rid)
}

/// One protocol-level event in the life of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoEvent {
    /// This node started (or joined) an election for `term`.
    ElectionStarted {
        /// The term being campaigned for.
        term: u64,
    },
    /// This node started a Pre-Vote probe for `term` (its term + 1) without
    /// bumping its durable term (Ongaro's thesis §9.6).
    PreVoteStarted {
        /// The term being probed for.
        term: u64,
    },
    /// This node won the election for `term`.
    BecameLeader {
        /// The won term.
        term: u64,
    },
    /// This node stepped down / learned of a higher term.
    BecameFollower {
        /// The new term.
        term: u64,
    },
    /// Leader shipped an AppendEntries batch.
    AppendSent {
        /// Destination network address (follower or aggregator group).
        dst: u32,
        /// Number of entries in the batch (0 = heartbeat).
        entries: u64,
        /// Leader commit index carried by the message.
        commit: LogIndex,
    },
    /// Leader observed an AppendEntries reply (direct or via aggregator).
    AppendAcked {
        /// Replying follower.
        from: RaftId,
        /// Whether the append succeeded.
        success: bool,
        /// The follower's match index.
        match_index: LogIndex,
    },
    /// The local commit index advanced.
    CommitAdvanced {
        /// New commit index.
        to: LogIndex,
    },
    /// Leader ordered a client request into the log.
    Proposed {
        /// Assigned log index.
        index: LogIndex,
        /// The ordered request.
        id: ReqId,
    },
    /// Leader stamped a designated replier into an entry (§3.3).
    ReplierAssigned {
        /// The entry.
        index: LogIndex,
        /// The chosen replier.
        replier: RaftId,
    },
    /// Leader raised the replication ceiling (§3.6): entries up to `upto`
    /// are now announced.
    Announced {
        /// New announcement horizon.
        upto: LogIndex,
    },
    /// This node asked a peer for a missing request body (§5).
    RecoveryRequested {
        /// The missing request.
        id: ReqId,
        /// Peer asked.
        to: u32,
    },
    /// This node served a body recovery for a peer (§5).
    RecoveryServed {
        /// The recovered request.
        id: ReqId,
        /// Requesting peer.
        to: u32,
    },
    /// A previously missing body arrived; recovery for `id` is complete.
    RecoveryCompleted {
        /// The recovered request.
        id: ReqId,
    },
    /// Apply stalled: entry `index` is committed but its body is missing.
    ApplyStalled {
        /// The stalled entry.
        index: LogIndex,
        /// The missing request.
        id: ReqId,
    },
    /// Entry `index` was handed to the application thread for execution.
    Executed {
        /// The applied entry.
        index: LogIndex,
        /// The request it carries.
        id: ReqId,
    },
    /// Read-only entry `index` skipped locally: another node replies (§3.5).
    RoSkipped {
        /// The skipped entry.
        index: LogIndex,
        /// The request it carries.
        id: ReqId,
    },
    /// This node (the designated replier) answered the client.
    ReplySent {
        /// The answered entry.
        index: LogIndex,
        /// The answered request.
        id: ReqId,
        /// Client address.
        to: u32,
    },
    /// This node emitted a flow-control FEEDBACK after replying (§6.3).
    FeedbackSent {
        /// The entry whose reply freed the slot.
        index: LogIndex,
    },
    /// Vanilla mode: a non-leader NACKed a misdirected client request.
    NackSent {
        /// The rejected request.
        id: ReqId,
    },
    /// Leader stopped routing replier assignments to `node`: no applied
    /// progress heard from it within the stall timeout (§3.4).
    ReplierStalled {
        /// The node now considered stalled.
        node: RaftId,
    },
    /// Previously stalled `node` reported progress again and is back in the
    /// replier-selection candidate set.
    ReplierRecovered {
        /// The recovered node.
        node: RaftId,
    },
}

impl ProtoEvent {
    /// Static tag naming the event type (stable across runs; checkers and
    /// trace filters match on it).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtoEvent::ElectionStarted { .. } => "election_started",
            ProtoEvent::PreVoteStarted { .. } => "prevote_started",
            ProtoEvent::BecameLeader { .. } => "became_leader",
            ProtoEvent::BecameFollower { .. } => "became_follower",
            ProtoEvent::AppendSent { .. } => "append_sent",
            ProtoEvent::AppendAcked { .. } => "append_acked",
            ProtoEvent::CommitAdvanced { .. } => "commit_advance",
            ProtoEvent::Proposed { .. } => "proposed",
            ProtoEvent::ReplierAssigned { .. } => "replier_assigned",
            ProtoEvent::Announced { .. } => "announced",
            ProtoEvent::RecoveryRequested { .. } => "recovery_req",
            ProtoEvent::RecoveryServed { .. } => "recovery_served",
            ProtoEvent::RecoveryCompleted { .. } => "recovery_done",
            ProtoEvent::ApplyStalled { .. } => "apply_stalled",
            ProtoEvent::Executed { .. } => "executed",
            ProtoEvent::RoSkipped { .. } => "ro_skipped",
            ProtoEvent::ReplySent { .. } => "reply",
            ProtoEvent::FeedbackSent { .. } => "feedback",
            ProtoEvent::NackSent { .. } => "nack",
            ProtoEvent::ReplierStalled { .. } => "replier_stalled",
            ProtoEvent::ReplierRecovered { .. } => "replier_recovered",
        }
    }

    /// Primary numeric identifier: the packed request id for request-scoped
    /// events, the log index or term otherwise.
    pub fn key(&self) -> u64 {
        match *self {
            ProtoEvent::ElectionStarted { term }
            | ProtoEvent::PreVoteStarted { term }
            | ProtoEvent::BecameLeader { term }
            | ProtoEvent::BecameFollower { term } => term,
            ProtoEvent::ReplierStalled { node } | ProtoEvent::ReplierRecovered { node } => {
                node as u64
            }
            ProtoEvent::AppendSent { commit, .. } => commit,
            ProtoEvent::AppendAcked { match_index, .. } => match_index,
            ProtoEvent::CommitAdvanced { to } => to,
            ProtoEvent::ReplierAssigned { index, .. }
            | ProtoEvent::Announced { upto: index }
            | ProtoEvent::FeedbackSent { index } => index,
            ProtoEvent::Proposed { id, .. }
            | ProtoEvent::RecoveryRequested { id, .. }
            | ProtoEvent::RecoveryServed { id, .. }
            | ProtoEvent::RecoveryCompleted { id }
            | ProtoEvent::ApplyStalled { id, .. }
            | ProtoEvent::Executed { id, .. }
            | ProtoEvent::RoSkipped { id, .. }
            | ProtoEvent::ReplySent { id, .. }
            | ProtoEvent::NackSent { id } => req_key(id),
        }
    }

    /// Human-readable rendering of the event payload.
    pub fn detail(&self) -> String {
        match *self {
            ProtoEvent::ElectionStarted { term } => format!("term={term}"),
            ProtoEvent::PreVoteStarted { term } => format!("term={term}"),
            ProtoEvent::BecameLeader { term } => format!("term={term}"),
            ProtoEvent::BecameFollower { term } => format!("term={term}"),
            ProtoEvent::AppendSent {
                dst,
                entries,
                commit,
            } => format!("dst={dst:#x} entries={entries} commit={commit}"),
            ProtoEvent::AppendAcked {
                from,
                success,
                match_index,
            } => format!("from=n{from} success={success} match={match_index}"),
            ProtoEvent::CommitAdvanced { to } => format!("to={to}"),
            ProtoEvent::Proposed { index, id } => {
                format!("index={index} id={}", fmt_req(id))
            }
            ProtoEvent::ReplierAssigned { index, replier } => {
                format!("index={index} replier=n{replier}")
            }
            ProtoEvent::Announced { upto } => format!("upto={upto}"),
            ProtoEvent::RecoveryRequested { id, to } => {
                format!("id={} to=n{to}", fmt_req(id))
            }
            ProtoEvent::RecoveryServed { id, to } => {
                format!("id={} to=n{to}", fmt_req(id))
            }
            ProtoEvent::RecoveryCompleted { id } => format!("id={}", fmt_req(id)),
            ProtoEvent::ApplyStalled { index, id } => {
                format!("index={index} id={}", fmt_req(id))
            }
            ProtoEvent::Executed { index, id } => {
                format!("index={index} id={}", fmt_req(id))
            }
            ProtoEvent::RoSkipped { index, id } => {
                format!("index={index} id={}", fmt_req(id))
            }
            ProtoEvent::ReplySent { index, id, to } => {
                format!("index={index} id={} to=n{to}", fmt_req(id))
            }
            ProtoEvent::FeedbackSent { index } => format!("index={index}"),
            ProtoEvent::NackSent { id } => format!("id={}", fmt_req(id)),
            ProtoEvent::ReplierStalled { node } => format!("node=n{node}"),
            ProtoEvent::ReplierRecovered { node } => format!("node=n{node}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_key_is_injective_over_fields() {
        let a = req_key(ReqId::new(5, 9000, 17));
        let b = req_key(ReqId::new(5, 9000, 18));
        let c = req_key(ReqId::new(5, 9001, 17));
        let d = req_key(ReqId::new(6, 9000, 17));
        assert_eq!(a, (5u64 << 32) | (9000u64 << 16) | 17);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn kinds_are_distinct_for_reply_and_execute() {
        let id = ReqId::new(1, 2, 3);
        let r = ProtoEvent::ReplySent {
            index: 4,
            id,
            to: 1,
        };
        let e = ProtoEvent::Executed { index: 4, id };
        assert_eq!(r.kind(), "reply");
        assert_eq!(e.kind(), "executed");
        assert_eq!(r.key(), e.key());
        assert!(r.detail().contains("index=4"));
    }
}
