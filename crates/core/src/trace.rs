//! Structured protocol events emitted by [`HcNode`](crate::HcNode).
//!
//! Every externally meaningful protocol step — elections, append/ack
//! traffic, commit advancement, replier assignment, recovery, reply and
//! flow-control emission — is recorded as a [`ProtoEvent`] in a small
//! internal buffer that the driver drains after each entry point
//! ([`HcNode::drain_events`](crate::HcNode::drain_events)). The testbed
//! forwards the drained events into a `simnet::Tracer`, stamping them with
//! virtual time; the invariant checker consumes the same stream (e.g. the
//! exactly-one-reply-per-request check keys on [`ProtoEvent::key`]).
//!
//! Events are plain data — no strings are allocated at record time; the
//! human-readable rendering happens only when a trace is displayed or
//! dumped.

use std::fmt;

use r2p2::ReqId;
use raft::{LogIndex, RaftId};

/// Packs a request id into one `u64` trace key: `src_ip:src_port:rid`.
pub fn req_key(id: ReqId) -> u64 {
    ((id.src_ip as u64) << 32) | ((id.src_port as u64) << 16) | id.rid as u64
}

/// Renders a lazily recorded detail payload from up to three raw words.
///
/// Structurally identical to `simnet::DetailFn` — declared here with std
/// types only, so the protocol crate stays independent of the simulator
/// while drivers can pass [`ProtoEvent::detail_parts`] straight into
/// `Tracer::record_lazy`.
pub type DetailRender = fn(&mut fmt::Formatter<'_>, u64, u64, u64) -> fmt::Result;

/// Writes a packed [`req_key`] back out as `src_ip:src_port:rid`.
fn w_req(f: &mut fmt::Formatter<'_>, key: u64) -> fmt::Result {
    write!(f, "{}:{}:{}", key >> 32, (key >> 16) & 0xffff, key & 0xffff)
}

// Lazy renderers, one per payload shape. Each must produce exactly the
// text the eager `detail()` historically produced — `detail()` is now
// implemented *through* these, so they cannot drift apart.
fn d_term(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    write!(f, "term={a}")
}
fn d_append_sent(f: &mut fmt::Formatter<'_>, a: u64, b: u64, c: u64) -> fmt::Result {
    write!(f, "dst={a:#x} entries={b} commit={c}")
}
fn d_append_acked(f: &mut fmt::Formatter<'_>, a: u64, b: u64, c: u64) -> fmt::Result {
    write!(f, "from=n{a} success={} match={c}", b != 0)
}
fn d_to(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    write!(f, "to={a}")
}
fn d_index_id(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "index={a} id=")?;
    w_req(f, b)
}
fn d_replier_assigned(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "index={a} replier=n{b}")
}
fn d_upto(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    write!(f, "upto={a}")
}
fn d_id_to(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    f.write_str("id=")?;
    w_req(f, a)?;
    write!(f, " to=n{b}")
}
fn d_id(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    f.write_str("id=")?;
    w_req(f, a)
}
fn d_reply(f: &mut fmt::Formatter<'_>, a: u64, b: u64, c: u64) -> fmt::Result {
    write!(f, "index={a} id=")?;
    w_req(f, b)?;
    write!(f, " to=n{c}")
}
fn d_index(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    write!(f, "index={a}")
}
fn d_node(f: &mut fmt::Formatter<'_>, a: u64, _b: u64, _c: u64) -> fmt::Result {
    write!(f, "node=n{a}")
}
fn d_index_bytes(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "index={a} bytes={b}")
}
fn d_index_term(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "index={a} term={b}")
}
fn d_upto_dropped(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "upto={a} dropped={b}")
}
fn d_to_index_bytes(f: &mut fmt::Formatter<'_>, a: u64, b: u64, c: u64) -> fmt::Result {
    write!(f, "to=n{a} index={b} bytes={c}")
}
fn d_to_index_off(f: &mut fmt::Formatter<'_>, a: u64, b: u64, c: u64) -> fmt::Result {
    write!(f, "to=n{a} index={b} offset={c}")
}
fn d_to_index(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "to=n{a} index={b}")
}
fn d_index_next(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "index={a} next={b}")
}
fn d_epochs(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
    write!(f, "from_epoch={a} new_epoch={b}")
}

/// One protocol-level event in the life of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoEvent {
    /// This node started (or joined) an election for `term`.
    ElectionStarted {
        /// The term being campaigned for.
        term: u64,
    },
    /// This node started a Pre-Vote probe for `term` (its term + 1) without
    /// bumping its durable term (Ongaro's thesis §9.6).
    PreVoteStarted {
        /// The term being probed for.
        term: u64,
    },
    /// This node won the election for `term`.
    BecameLeader {
        /// The won term.
        term: u64,
    },
    /// This node stepped down / learned of a higher term.
    BecameFollower {
        /// The new term.
        term: u64,
    },
    /// Leader shipped an AppendEntries batch.
    AppendSent {
        /// Destination network address (follower or aggregator group).
        dst: u32,
        /// Number of entries in the batch (0 = heartbeat).
        entries: u64,
        /// Leader commit index carried by the message.
        commit: LogIndex,
    },
    /// Leader observed an AppendEntries reply (direct or via aggregator).
    AppendAcked {
        /// Replying follower.
        from: RaftId,
        /// Whether the append succeeded.
        success: bool,
        /// The follower's match index.
        match_index: LogIndex,
    },
    /// The local commit index advanced.
    CommitAdvanced {
        /// New commit index.
        to: LogIndex,
    },
    /// Leader ordered a client request into the log.
    Proposed {
        /// Assigned log index.
        index: LogIndex,
        /// The ordered request.
        id: ReqId,
    },
    /// Leader stamped a designated replier into an entry (§3.3).
    ReplierAssigned {
        /// The entry.
        index: LogIndex,
        /// The chosen replier.
        replier: RaftId,
    },
    /// Leader raised the replication ceiling (§3.6): entries up to `upto`
    /// are now announced.
    Announced {
        /// New announcement horizon.
        upto: LogIndex,
    },
    /// This node asked a peer for a missing request body (§5).
    RecoveryRequested {
        /// The missing request.
        id: ReqId,
        /// Peer asked.
        to: u32,
    },
    /// This node served a body recovery for a peer (§5).
    RecoveryServed {
        /// The recovered request.
        id: ReqId,
        /// Requesting peer.
        to: u32,
    },
    /// A previously missing body arrived; recovery for `id` is complete.
    RecoveryCompleted {
        /// The recovered request.
        id: ReqId,
    },
    /// Apply stalled: entry `index` is committed but its body is missing.
    ApplyStalled {
        /// The stalled entry.
        index: LogIndex,
        /// The missing request.
        id: ReqId,
    },
    /// Entry `index` was handed to the application thread for execution.
    Executed {
        /// The applied entry.
        index: LogIndex,
        /// The request it carries.
        id: ReqId,
    },
    /// Read-only entry `index` skipped locally: another node replies (§3.5).
    RoSkipped {
        /// The skipped entry.
        index: LogIndex,
        /// The request it carries.
        id: ReqId,
    },
    /// This node (the designated replier) answered the client.
    ReplySent {
        /// The answered entry.
        index: LogIndex,
        /// The answered request.
        id: ReqId,
        /// Client address.
        to: u32,
    },
    /// This node emitted a flow-control FEEDBACK after replying (§6.3).
    FeedbackSent {
        /// The entry whose reply freed the slot.
        index: LogIndex,
    },
    /// Vanilla mode: a non-leader NACKed a misdirected client request.
    NackSent {
        /// The rejected request.
        id: ReqId,
    },
    /// Leader stopped routing replier assignments to `node`: no applied
    /// progress heard from it within the stall timeout (§3.4).
    ReplierStalled {
        /// The node now considered stalled.
        node: RaftId,
    },
    /// Previously stalled `node` reported progress again and is back in the
    /// replier-selection candidate set.
    ReplierRecovered {
        /// The recovered node.
        node: RaftId,
    },
    /// This node serialized its state machine and compacted the ordering
    /// log up to `index`.
    SnapshotTaken {
        /// Applied index the snapshot covers.
        index: LogIndex,
        /// Snapshot blob size.
        bytes: u64,
    },
    /// Snapshot compaction dropped archived request bodies — the payload
    /// half of the dual compaction schedule.
    BodiesCompacted {
        /// Log horizon whose bodies were dropped.
        upto: LogIndex,
        /// Number of bodies dropped from the archive.
        dropped: u64,
    },
    /// Leader began streaming a snapshot to a behind-horizon follower.
    TransferStarted {
        /// The receiving follower.
        to: RaftId,
        /// Snapshot index being transferred.
        index: LogIndex,
        /// Snapshot blob size.
        bytes: u64,
    },
    /// Leader sent one snapshot chunk.
    ChunkSent {
        /// The receiving follower.
        to: RaftId,
        /// Snapshot index being transferred.
        index: LogIndex,
        /// Byte offset of the chunk.
        offset: u64,
    },
    /// Follower acked transfer progress: bytes below `next` are on hand.
    /// Within one (incarnation, snapshot index) this is monotone — the
    /// invariant checker enforces transfer-resume monotonicity on it.
    ChunkAcked {
        /// Snapshot index being transferred.
        index: LogIndex,
        /// First byte offset still missing.
        next: u64,
    },
    /// Follower received the full snapshot and installed it: the state
    /// machine was restored, the log reset/compacted to `index`.
    SnapshotInstalled {
        /// The installed snapshot's index.
        index: LogIndex,
        /// The installed snapshot's term.
        term: u64,
    },
    /// Leader saw the transfer to `to` complete; replication resumes from
    /// `index + 1`.
    TransferDone {
        /// The follower that finished installing.
        to: RaftId,
        /// The installed snapshot's index.
        index: LogIndex,
    },
    /// A restart-restore was rejected: the durable state came from a stale
    /// incarnation epoch (satellite: `HcNode::restore` must never silently
    /// reinitialize from old state).
    RestoreRejected {
        /// Epoch of the durable state offered for restore.
        from_epoch: u64,
        /// The incarnation epoch the restore was attempted for.
        new_epoch: u64,
    },
}

impl ProtoEvent {
    /// Static tag naming the event type (stable across runs; checkers and
    /// trace filters match on it).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtoEvent::ElectionStarted { .. } => "election_started",
            ProtoEvent::PreVoteStarted { .. } => "prevote_started",
            ProtoEvent::BecameLeader { .. } => "became_leader",
            ProtoEvent::BecameFollower { .. } => "became_follower",
            ProtoEvent::AppendSent { .. } => "append_sent",
            ProtoEvent::AppendAcked { .. } => "append_acked",
            ProtoEvent::CommitAdvanced { .. } => "commit_advance",
            ProtoEvent::Proposed { .. } => "proposed",
            ProtoEvent::ReplierAssigned { .. } => "replier_assigned",
            ProtoEvent::Announced { .. } => "announced",
            ProtoEvent::RecoveryRequested { .. } => "recovery_req",
            ProtoEvent::RecoveryServed { .. } => "recovery_served",
            ProtoEvent::RecoveryCompleted { .. } => "recovery_done",
            ProtoEvent::ApplyStalled { .. } => "apply_stalled",
            ProtoEvent::Executed { .. } => "executed",
            ProtoEvent::RoSkipped { .. } => "ro_skipped",
            ProtoEvent::ReplySent { .. } => "reply",
            ProtoEvent::FeedbackSent { .. } => "feedback",
            ProtoEvent::NackSent { .. } => "nack",
            ProtoEvent::ReplierStalled { .. } => "replier_stalled",
            ProtoEvent::ReplierRecovered { .. } => "replier_recovered",
            ProtoEvent::SnapshotTaken { .. } => "snapshot_taken",
            ProtoEvent::BodiesCompacted { .. } => "bodies_compacted",
            ProtoEvent::TransferStarted { .. } => "transfer_started",
            ProtoEvent::ChunkSent { .. } => "chunk_sent",
            ProtoEvent::ChunkAcked { .. } => "chunk_acked",
            ProtoEvent::SnapshotInstalled { .. } => "snapshot_installed",
            ProtoEvent::TransferDone { .. } => "transfer_done",
            ProtoEvent::RestoreRejected { .. } => "restore_rejected",
        }
    }

    /// Primary numeric identifier: the packed request id for request-scoped
    /// events, the log index or term otherwise.
    pub fn key(&self) -> u64 {
        match *self {
            ProtoEvent::ElectionStarted { term }
            | ProtoEvent::PreVoteStarted { term }
            | ProtoEvent::BecameLeader { term }
            | ProtoEvent::BecameFollower { term } => term,
            ProtoEvent::ReplierStalled { node } | ProtoEvent::ReplierRecovered { node } => {
                node as u64
            }
            ProtoEvent::AppendSent { commit, .. } => commit,
            ProtoEvent::AppendAcked { match_index, .. } => match_index,
            ProtoEvent::CommitAdvanced { to } => to,
            ProtoEvent::ReplierAssigned { index, .. }
            | ProtoEvent::Announced { upto: index }
            | ProtoEvent::FeedbackSent { index } => index,
            ProtoEvent::Proposed { id, .. }
            | ProtoEvent::RecoveryRequested { id, .. }
            | ProtoEvent::RecoveryServed { id, .. }
            | ProtoEvent::RecoveryCompleted { id }
            | ProtoEvent::ApplyStalled { id, .. }
            | ProtoEvent::Executed { id, .. }
            | ProtoEvent::RoSkipped { id, .. }
            | ProtoEvent::ReplySent { id, .. }
            | ProtoEvent::NackSent { id } => req_key(id),
            ProtoEvent::SnapshotTaken { index, .. }
            | ProtoEvent::TransferStarted { index, .. }
            | ProtoEvent::ChunkSent { index, .. }
            | ProtoEvent::ChunkAcked { index, .. }
            | ProtoEvent::SnapshotInstalled { index, .. }
            | ProtoEvent::TransferDone { index, .. } => index,
            ProtoEvent::BodiesCompacted { upto, .. } => upto,
            ProtoEvent::RestoreRejected { new_epoch, .. } => new_epoch,
        }
    }

    /// The event's detail payload in deferred form: a renderer plus up to
    /// three raw words. Recording this instead of [`ProtoEvent::detail`]
    /// keeps the hot path allocation- and formatting-free; the renderer
    /// produces the identical text when (if ever) the event is displayed.
    pub fn detail_parts(&self) -> (DetailRender, u64, u64, u64) {
        match *self {
            ProtoEvent::ElectionStarted { term }
            | ProtoEvent::PreVoteStarted { term }
            | ProtoEvent::BecameLeader { term }
            | ProtoEvent::BecameFollower { term } => (d_term, term, 0, 0),
            ProtoEvent::AppendSent {
                dst,
                entries,
                commit,
            } => (d_append_sent, dst as u64, entries, commit),
            ProtoEvent::AppendAcked {
                from,
                success,
                match_index,
            } => (d_append_acked, from as u64, success as u64, match_index),
            ProtoEvent::CommitAdvanced { to } => (d_to, to, 0, 0),
            ProtoEvent::Proposed { index, id } => (d_index_id, index, req_key(id), 0),
            ProtoEvent::ReplierAssigned { index, replier } => {
                (d_replier_assigned, index, replier as u64, 0)
            }
            ProtoEvent::Announced { upto } => (d_upto, upto, 0, 0),
            ProtoEvent::RecoveryRequested { id, to } | ProtoEvent::RecoveryServed { id, to } => {
                (d_id_to, req_key(id), to as u64, 0)
            }
            ProtoEvent::RecoveryCompleted { id } => (d_id, req_key(id), 0, 0),
            ProtoEvent::ApplyStalled { index, id }
            | ProtoEvent::Executed { index, id }
            | ProtoEvent::RoSkipped { index, id } => (d_index_id, index, req_key(id), 0),
            ProtoEvent::ReplySent { index, id, to } => (d_reply, index, req_key(id), to as u64),
            ProtoEvent::FeedbackSent { index } => (d_index, index, 0, 0),
            ProtoEvent::NackSent { id } => (d_id, req_key(id), 0, 0),
            ProtoEvent::ReplierStalled { node } | ProtoEvent::ReplierRecovered { node } => {
                (d_node, node as u64, 0, 0)
            }
            ProtoEvent::SnapshotTaken { index, bytes } => (d_index_bytes, index, bytes, 0),
            ProtoEvent::BodiesCompacted { upto, dropped } => (d_upto_dropped, upto, dropped, 0),
            ProtoEvent::TransferStarted { to, index, bytes } => {
                (d_to_index_bytes, to as u64, index, bytes)
            }
            ProtoEvent::ChunkSent { to, index, offset } => {
                (d_to_index_off, to as u64, index, offset)
            }
            ProtoEvent::ChunkAcked { index, next } => (d_index_next, index, next, 0),
            ProtoEvent::SnapshotInstalled { index, term } => (d_index_term, index, term, 0),
            ProtoEvent::TransferDone { to, index } => (d_to_index, to as u64, index, 0),
            ProtoEvent::RestoreRejected {
                from_epoch,
                new_epoch,
            } => (d_epochs, from_epoch, new_epoch, 0),
        }
    }

    /// Human-readable rendering of the event payload. Implemented through
    /// [`ProtoEvent::detail_parts`], so the eager and lazy forms can never
    /// diverge.
    pub fn detail(&self) -> String {
        struct D((DetailRender, u64, u64, u64));
        impl fmt::Display for D {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let (render, a, b, c) = self.0;
                render(f, a, b, c)
            }
        }
        D(self.detail_parts()).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_key_is_injective_over_fields() {
        let a = req_key(ReqId::new(5, 9000, 17));
        let b = req_key(ReqId::new(5, 9000, 18));
        let c = req_key(ReqId::new(5, 9001, 17));
        let d = req_key(ReqId::new(6, 9000, 17));
        assert_eq!(a, (5u64 << 32) | (9000u64 << 16) | 17);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn kinds_are_distinct_for_reply_and_execute() {
        let id = ReqId::new(1, 2, 3);
        let r = ProtoEvent::ReplySent {
            index: 4,
            id,
            to: 1,
        };
        let e = ProtoEvent::Executed { index: 4, id };
        assert_eq!(r.kind(), "reply");
        assert_eq!(e.kind(), "executed");
        assert_eq!(r.key(), e.key());
        assert!(r.detail().contains("index=4"));
    }

    #[test]
    fn lazy_renderers_produce_the_historical_text() {
        // Golden strings from the pre-lazy eager formatter; the deferred
        // renderers must reproduce them byte for byte (trace dumps and
        // replay comparisons match on this text).
        let id = ReqId::new(7, 9003, 42);
        let cases: &[(ProtoEvent, &str)] = &[
            (ProtoEvent::ElectionStarted { term: 3 }, "term=3"),
            (
                ProtoEvent::AppendSent {
                    dst: 0x8000_0001,
                    entries: 5,
                    commit: 17,
                },
                "dst=0x80000001 entries=5 commit=17",
            ),
            (
                ProtoEvent::AppendAcked {
                    from: 2,
                    success: true,
                    match_index: 9,
                },
                "from=n2 success=true match=9",
            ),
            (
                ProtoEvent::AppendAcked {
                    from: 4,
                    success: false,
                    match_index: 0,
                },
                "from=n4 success=false match=0",
            ),
            (ProtoEvent::CommitAdvanced { to: 11 }, "to=11"),
            (
                ProtoEvent::Proposed { index: 8, id },
                "index=8 id=7:9003:42",
            ),
            (
                ProtoEvent::ReplierAssigned {
                    index: 8,
                    replier: 1,
                },
                "index=8 replier=n1",
            ),
            (ProtoEvent::Announced { upto: 20 }, "upto=20"),
            (
                ProtoEvent::RecoveryRequested { id, to: 3 },
                "id=7:9003:42 to=n3",
            ),
            (ProtoEvent::RecoveryCompleted { id }, "id=7:9003:42"),
            (
                ProtoEvent::ReplySent {
                    index: 8,
                    id,
                    to: 7,
                },
                "index=8 id=7:9003:42 to=n7",
            ),
            (ProtoEvent::FeedbackSent { index: 8 }, "index=8"),
            (ProtoEvent::ReplierStalled { node: 2 }, "node=n2"),
            (
                ProtoEvent::SnapshotTaken {
                    index: 640,
                    bytes: 4096,
                },
                "index=640 bytes=4096",
            ),
            (
                ProtoEvent::BodiesCompacted {
                    upto: 640,
                    dropped: 512,
                },
                "upto=640 dropped=512",
            ),
            (
                ProtoEvent::TransferStarted {
                    to: 2,
                    index: 640,
                    bytes: 4096,
                },
                "to=n2 index=640 bytes=4096",
            ),
            (
                ProtoEvent::ChunkSent {
                    to: 2,
                    index: 640,
                    offset: 1024,
                },
                "to=n2 index=640 offset=1024",
            ),
            (
                ProtoEvent::ChunkAcked {
                    index: 640,
                    next: 2048,
                },
                "index=640 next=2048",
            ),
            (
                ProtoEvent::SnapshotInstalled {
                    index: 640,
                    term: 3,
                },
                "index=640 term=3",
            ),
            (
                ProtoEvent::TransferDone { to: 2, index: 640 },
                "to=n2 index=640",
            ),
            (
                ProtoEvent::RestoreRejected {
                    from_epoch: 1,
                    new_epoch: 3,
                },
                "from_epoch=1 new_epoch=3",
            ),
        ];
        for (ev, want) in cases {
            assert_eq!(ev.detail(), *want, "renderer drift for {:?}", ev.kind());
        }
    }
}
