//! The application-facing service abstraction.
//!
//! HovercRaft's promise (§1, §3.1) is *application-agnostic* fault
//! tolerance: any deterministic RPC service plugs in unmodified, because the
//! SMR machinery lives in the transport underneath it. [`Service`] is that
//! plug point — the same trait object runs unreplicated, under VanillaRaft,
//! or under HovercRaft/++ without changes, which is exactly the experiment
//! of §7.5 (unmodified Redis under all four setups).
//!
//! Determinism contract: given the same sequence of `execute` calls with the
//! same bodies, every replica must produce the same state and replies. The
//! service reports the CPU cost of each operation so the testbed can charge
//! it to the simulated application thread.

use bytes::{ByteArena, Bytes};

/// Result of executing one request.
#[derive(Clone, Debug, PartialEq)]
pub struct Executed {
    /// The reply payload to return to the client.
    pub reply: Bytes,
    /// CPU time the operation consumed, in nanoseconds (charged to the
    /// application thread by the simulation harness).
    pub cost_ns: u64,
}

/// A deterministic RPC application running on top of the SMR layer.
pub trait Service: 'static {
    /// Executes one request against the state machine. `read_only` is the
    /// client's POLICY claim; a well-behaved service must not mutate state
    /// when it is set (§3.5: a wrong claim is a catastrophic application
    /// bug, not a protocol failure).
    ///
    /// `arena` is the world's recycling buffer pool; services should build
    /// reply payloads through it (`arena.alloc*`) so steady-state execution
    /// does not hit the global allocator per request. Determinism is
    /// unaffected: pooled and fresh buffers are byte-identical.
    fn execute(&mut self, body: &[u8], read_only: bool, arena: &mut ByteArena) -> Executed;

    /// Serializes the full state machine into a snapshot blob, enabling
    /// log compaction and follower state transfer. Must be deterministic:
    /// replicas that applied the same mutation prefix must produce
    /// byte-identical blobs. The default (empty blob) suits services whose
    /// state the SMR layer never needs to move — snapshotting still
    /// compacts the log, and a restored/transferred replica starts from
    /// the blank state `restore` leaves behind.
    fn snapshot(&self) -> Bytes {
        Bytes::new()
    }

    /// Replaces the state machine's state with `snap`, a blob produced by
    /// [`Service::snapshot`] on a replica of the same service type. The
    /// default ignores the blob (matching the default `snapshot`).
    fn restore(&mut self, snap: &[u8]) {
        let _ = snap;
    }
}

impl Service for Box<dyn Service> {
    fn execute(&mut self, body: &[u8], read_only: bool, arena: &mut ByteArena) -> Executed {
        (**self).execute(body, read_only, arena)
    }
    fn snapshot(&self) -> Bytes {
        (**self).snapshot()
    }
    fn restore(&mut self, snap: &[u8]) {
        (**self).restore(snap)
    }
}

/// A trivial echo service with a fixed per-op cost; used by tests.
#[derive(Clone, Debug, Default)]
pub struct EchoService {
    /// Cost charged per operation, ns.
    pub cost_ns: u64,
    /// Number of operations executed (mutations only, to stay
    /// deterministic under read-only skipping).
    pub writes: u64,
}

impl Service for EchoService {
    fn execute(&mut self, body: &[u8], read_only: bool, arena: &mut ByteArena) -> Executed {
        if !read_only {
            self.writes += 1;
        }
        Executed {
            reply: arena.alloc(body),
            cost_ns: self.cost_ns,
        }
    }
    fn snapshot(&self) -> Bytes {
        Bytes::copy_from_slice(&self.writes.to_le_bytes())
    }
    fn restore(&mut self, snap: &[u8]) {
        if let Ok(b) = <[u8; 8]>::try_from(snap) {
            self.writes = u64::from_le_bytes(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_reflects_body_and_counts_writes() {
        let mut arena = ByteArena::new();
        let mut s = EchoService {
            cost_ns: 100,
            writes: 0,
        };
        let r = s.execute(b"ping", false, &mut arena);
        assert_eq!(&r.reply[..], b"ping");
        assert_eq!(r.cost_ns, 100);
        s.execute(b"ro", true, &mut arena);
        assert_eq!(s.writes, 1, "read-only ops do not count as writes");
    }

    #[test]
    fn echo_snapshot_round_trips() {
        let mut arena = ByteArena::new();
        let mut a = EchoService::default();
        a.execute(b"w", false, &mut arena);
        a.execute(b"w", false, &mut arena);
        let snap = a.snapshot();
        let mut b = EchoService::default();
        b.restore(&snap);
        assert_eq!(b.writes, 2);
        assert_eq!(b.snapshot(), snap, "deterministic re-serialization");
    }
}
