//! Latency recording and tail statistics.
//!
//! Lancet's defining feature is *accurate* tail reporting: it keeps enough
//! per-request samples to report order-statistics percentiles rather than
//! histogram approximations. We do the same — simulation runs are bounded,
//! so exact samples are affordable.

/// A collection of per-request latency samples (ns).
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_ns: u64) {
        self.samples.push(latency_ns);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency, ns (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// The exact `p`-th percentile (0 < p ≤ 100) by the nearest-rank
    /// method Lancet reports; `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!(p > 0.0 && p <= 100.0);
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        Some(self.samples[rank.clamp(1, self.samples.len()) - 1])
    }

    /// The 99th percentile (the paper's SLO metric), ns.
    pub fn p99(&mut self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Clears all samples (e.g. after warm-up).
    pub fn reset(&mut self) {
        self.samples.clear();
        self.sorted = false;
    }

    /// Moves the raw samples out (order unspecified), leaving the recorder
    /// empty. Used to merge recorders across client agents.
    pub fn take_samples(&mut self) -> Vec<u64> {
        self.sorted = false;
        std::mem::take(&mut self.samples)
    }
}

/// Per-second (or arbitrary-window) time series of throughput and tail
/// latency — the instrument behind the Figure 12 failover timeline.
#[derive(Clone, Debug)]
pub struct WindowedSeries {
    window_ns: u64,
    windows: Vec<LatencyRecorder>,
}

/// Summary of one time window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowSummary {
    /// Window start, ns.
    pub start_ns: u64,
    /// Completed requests in the window.
    pub count: usize,
    /// Throughput, requests/second.
    pub rps: f64,
    /// 99th-percentile latency in the window, ns (0 if empty).
    pub p99_ns: u64,
}

impl WindowedSeries {
    /// A series with the given window width.
    pub fn new(window_ns: u64) -> WindowedSeries {
        assert!(window_ns > 0);
        WindowedSeries {
            window_ns,
            windows: Vec::new(),
        }
    }

    /// Records a completion at absolute time `now_ns` with the given
    /// request latency.
    pub fn record(&mut self, now_ns: u64, latency_ns: u64) {
        let idx = (now_ns / self.window_ns) as usize;
        if idx >= self.windows.len() {
            self.windows.resize_with(idx + 1, LatencyRecorder::new);
        }
        self.windows[idx].record(latency_ns);
    }

    /// Summarizes every window.
    pub fn summarize(&mut self) -> Vec<WindowSummary> {
        let w = self.window_ns;
        self.windows
            .iter_mut()
            .enumerate()
            .map(|(i, rec)| WindowSummary {
                start_ns: i as u64 * w,
                count: rec.count(),
                rps: rec.count() as f64 / (w as f64 / 1e9),
                p99_ns: rec.p99().unwrap_or(0),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_by_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for v in 1..=100u64 {
            r.record(v);
        }
        assert_eq!(r.percentile(50.0), Some(50));
        assert_eq!(r.percentile(99.0), Some(99));
        assert_eq!(r.percentile(100.0), Some(100));
        assert_eq!(r.percentile(1.0), Some(1));
        assert_eq!(r.max(), Some(100));
        assert!((r.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_recorder_yields_none() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.p99(), None);
        assert_eq!(r.max(), None);
        assert_eq!(r.mean(), 0.0);
        assert!(r.is_empty());
    }

    #[test]
    fn recording_after_percentile_is_fine() {
        let mut r = LatencyRecorder::new();
        r.record(10);
        assert_eq!(r.p99(), Some(10));
        r.record(5);
        assert_eq!(r.percentile(50.0), Some(5));
    }

    #[test]
    fn p99_catches_the_tail() {
        let mut r = LatencyRecorder::new();
        for _ in 0..990 {
            r.record(100);
        }
        for _ in 0..10 {
            r.record(10_000);
        }
        assert_eq!(r.p99(), Some(100));
        assert_eq!(r.percentile(99.5), Some(10_000));
    }

    #[test]
    fn windowed_series_buckets_by_time() {
        let mut s = WindowedSeries::new(1_000_000_000); // 1s windows
        s.record(100, 10);
        s.record(999_999_999, 20);
        s.record(1_500_000_000, 30);
        s.record(3_200_000_000, 40);
        let sum = s.summarize();
        assert_eq!(sum.len(), 4);
        assert_eq!(sum[0].count, 2);
        assert_eq!(sum[1].count, 1);
        assert_eq!(sum[2].count, 0);
        assert_eq!(sum[3].count, 1);
        assert!((sum[0].rps - 2.0).abs() < 1e-9);
        assert_eq!(sum[1].p99_ns, 30);
    }

    #[test]
    fn reset_clears() {
        let mut r = LatencyRecorder::new();
        r.record(1);
        r.reset();
        assert!(r.is_empty());
    }
}
