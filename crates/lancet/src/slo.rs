//! SLO analysis: "achieved throughput under a 500µs 99th-percentile SLO",
//! the headline metric of Figures 8, 9, and 13.

/// Result of one measured load point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadPoint {
    /// Offered load, requests/second.
    pub offered_rps: f64,
    /// Achieved goodput, requests/second.
    pub achieved_rps: f64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
}

impl LoadPoint {
    /// True if this point meets the SLO *and* actually kept up with the
    /// offered load (goodput within 2% — an overloaded open-loop system can
    /// show a low p99 over the few requests it completed early while
    /// arbitrarily many are still queued).
    pub fn meets(&self, slo_ns: u64) -> bool {
        self.p99_ns <= slo_ns && self.achieved_rps >= self.offered_rps * 0.98
    }
}

/// Sweeps `loads` (RPS, ascending) through `run`, returning every measured
/// point and the highest *achieved* throughput whose point meets `slo_ns`.
///
/// This mirrors how the paper reports "max kRPS under 500µs SLO": offered
/// load increases until the knee, and the best conforming point is quoted.
pub fn max_throughput_under_slo(
    loads: &[f64],
    slo_ns: u64,
    mut run: impl FnMut(f64) -> LoadPoint,
) -> (f64, Vec<LoadPoint>) {
    let mut best = 0.0f64;
    let mut points = Vec::with_capacity(loads.len());
    for &l in loads {
        let p = run(l);
        if p.meets(slo_ns) {
            best = best.max(p.achieved_rps);
        }
        points.push(p);
    }
    (best, points)
}

/// Builds a geometric load ladder from `lo` to `hi` RPS with `steps` rungs —
/// a convenient sweep for latency-throughput curves.
pub fn load_ladder(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 2 && hi > lo && lo > 0.0);
    let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|i| lo * ratio.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_knee() {
        // Model: p99 explodes past 800k RPS.
        let loads: Vec<f64> = (1..=10).map(|i| i as f64 * 100_000.0).collect();
        let (best, pts) = max_throughput_under_slo(&loads, 500_000, |l| LoadPoint {
            offered_rps: l,
            achieved_rps: l.min(850_000.0),
            p99_ns: if l <= 800_000.0 { 100_000 } else { 5_000_000 },
        });
        assert_eq!(best, 800_000.0);
        assert_eq!(pts.len(), 10);
    }

    #[test]
    fn overload_with_low_p99_is_rejected() {
        // A system that only completed 10% of offered load cannot claim its
        // p99.
        let p = LoadPoint {
            offered_rps: 1_000_000.0,
            achieved_rps: 100_000.0,
            p99_ns: 50_000,
        };
        assert!(!p.meets(500_000));
    }

    #[test]
    fn ladder_is_geometric_and_covers_range() {
        let l = load_ladder(100.0, 1_000.0, 5);
        assert_eq!(l.len(), 5);
        assert!((l[0] - 100.0).abs() < 1e-6);
        assert!((l[4] - 1_000.0).abs() < 1e-6);
        let r1 = l[1] / l[0];
        let r2 = l[3] / l[2];
        assert!((r1 - r2).abs() < 1e-9, "constant ratio");
    }

    #[test]
    fn no_conforming_point_returns_zero() {
        let (best, _) = max_throughput_under_slo(&[100.0], 1, |l| LoadPoint {
            offered_rps: l,
            achieved_rps: l,
            p99_ns: 1_000_000,
        });
        assert_eq!(best, 0.0);
    }
}
