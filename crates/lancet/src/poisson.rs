//! Open-loop Poisson arrival processes.
//!
//! Lancet (Kogias et al., ATC '19) drives systems with an *open-loop*
//! Poisson arrival process: request send times are drawn independently of
//! the system's responses, which is what exposes queueing behaviour and
//! makes tail-latency measurements honest. Closed-loop generators (wait for
//! the reply, then send) hide overload; the paper's entire evaluation is
//! open-loop.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An open-loop Poisson arrival schedule: an infinite iterator of absolute
/// send times in nanoseconds.
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rate_rps: f64,
    next_ns: f64,
    rng: SmallRng,
}

impl PoissonArrivals {
    /// Arrivals at `rate_rps` requests per second starting around `start_ns`.
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate_rps: f64, start_ns: u64, seed: u64) -> PoissonArrivals {
        assert!(rate_rps > 0.0 && rate_rps.is_finite());
        PoissonArrivals {
            rate_rps,
            next_ns: start_ns as f64,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The configured mean rate.
    pub fn rate_rps(&self) -> f64 {
        self.rate_rps
    }

    /// Absolute time of the next arrival, ns.
    pub fn next_arrival(&mut self) -> u64 {
        let t = self.next_ns as u64;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap_ns = -u.ln() / self.rate_rps * 1e9;
        self.next_ns += gap_ns;
        t
    }
}

impl Iterator for PoissonArrivals {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_is_respected() {
        let mut p = PoissonArrivals::new(100_000.0, 0, 7);
        let n = 200_000;
        let mut last = 0;
        for _ in 0..n {
            last = p.next_arrival();
        }
        let measured = n as f64 / (last as f64 / 1e9);
        assert!(
            (measured - 100_000.0).abs() < 2_000.0,
            "measured rate {measured:.0}"
        );
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut p = PoissonArrivals::new(1_000.0, 500, 1);
        let mut prev = 0;
        for t in p.by_ref().take(10_000) {
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn interarrivals_are_memoryless_ish() {
        // CV (σ/µ) of exponential inter-arrivals ≈ 1.
        let mut p = PoissonArrivals::new(1_000_000.0, 0, 3);
        let times: Vec<u64> = p.by_ref().take(100_000).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((0.95..1.05).contains(&cv), "cv = {cv}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = PoissonArrivals::new(5_000.0, 0, 9).take(100).collect();
        let b: Vec<u64> = PoissonArrivals::new(5_000.0, 0, 9).take(100).collect();
        assert_eq!(a, b);
    }
}
