//! # lancet — open-loop load generation and tail-latency measurement
//!
//! A software model of the Lancet load generator (Kogias, Mallon & Bugnion,
//! USENIX ATC '19) that drives every experiment in the HovercRaft paper:
//! an **open-loop Poisson arrival process** ([`PoissonArrivals`]) so
//! queueing is exposed honestly, exact order-statistics percentiles
//! ([`LatencyRecorder`]) for trustworthy 99th-percentile reporting, a
//! windowed time series ([`WindowedSeries`]) for failure timelines
//! (Figure 12), and the "max throughput under an SLO" sweep
//! ([`max_throughput_under_slo`]) behind Figures 8, 9, and 13.
//!
//! The crate is clock-agnostic: times are plain nanoseconds supplied by the
//! caller, so the same instruments run against the simulator's virtual
//! clock or a real one.

#![warn(missing_docs)]

mod poisson;
mod slo;
mod stats;

pub use poisson::PoissonArrivals;
pub use slo::{load_ladder, max_throughput_under_slo, LoadPoint};
pub use stats::{LatencyRecorder, WindowSummary, WindowedSeries};
