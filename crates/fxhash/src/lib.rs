//! Deterministic FxHash-style hashing for the simulator's hot-path maps.
//!
//! The std `HashMap` default (`RandomState`/SipHash) is wrong for this
//! codebase twice over:
//!
//! * **Cost** — SipHash burns ~1–2 ns per word on keys that are almost
//!   always a single integer (`NodeId`, `LogIndex`, `TimerId`, a packed
//!   `ReqId`). The engine and protocol layers probe these maps on every
//!   simulated packet.
//! * **Determinism** — `RandomState` is seeded per process, so *iteration
//!   order* differs from run to run. Any code path that iterates a map and
//!   acts on the order (recovery retransmission fan-out, for instance)
//!   silently breaks the simulator's bit-exact replay contract across
//!   processes, even though each single process is self-consistent.
//!
//! [`FxHasher`] is the multiply-rotate hash used by rustc (Firefox
//! heritage), reimplemented here from the published algorithm. It is not
//! DoS-resistant — irrelevant inside a closed simulation — and with
//! [`BuildHasherDefault`] it is zero-seeded, so map iteration order is a
//! pure function of the insertion/removal history: identical in every
//! process, which is exactly the property the determinism guard pins.
//!
//! Use the [`FxHashMap`]/[`FxHashSet`] aliases; they are drop-in
//! replacements (`FxHashMap::default()` instead of `HashMap::new()`).

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The 64-bit multiplier from splitmix64 / rustc's FxHasher: odd, with a
/// good avalanche profile when combined with the 5-bit rotate below.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast, deterministic, non-cryptographic hasher (rustc's FxHash scheme:
/// rotate-xor-multiply per word).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the byte count in so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&(1u32, 2u16)), hash_of(&(2u32, 1u16)));
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let build = || {
            let mut m = FxHashMap::default();
            for i in (0..100u64).rev() {
                m.insert(i * 7919, i);
            }
            for i in 0..50u64 {
                m.remove(&(i * 2 * 7919));
            }
            m.into_iter().collect::<Vec<_>>()
        };
        // Same history => same order; std RandomState would differ between
        // these two instances, let alone between processes.
        assert_eq!(build(), build());
    }

    #[test]
    fn spreads_small_integers() {
        // The hasher must not map consecutive small keys onto consecutive
        // buckets' worth of identical low bits.
        let hashes: Vec<u64> = (0..64u64).map(|i| hash_of(&i)).collect();
        let mut low7 = hashes.iter().map(|h| h >> 57).collect::<Vec<_>>();
        low7.sort_unstable();
        low7.dedup();
        assert!(low7.len() > 32, "top bits collapse: {}", low7.len());
    }
}
