//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of proptest's API it uses: the `proptest!`
//! test macro, `prop_assert*` macros, range/`Just`/tuple/`prop_oneof!`/
//! `collection::vec` strategies, `any::<T>()`, `prop::sample::Index`, and
//! `ProptestConfig { cases, parallel }`.
//!
//! Differences from the real crate, by design:
//! * **No shrinking.** A failing case reports its case number and the test's
//!   deterministic RNG seed; the repo's own trace/replay tooling (DESIGN §5,
//!   "Debugging a failing seed") is the intended minimization workflow.
//! * **Optional parallel case execution.** `ProptestConfig { parallel: true }`
//!   pre-generates every case's inputs from the single serial RNG stream,
//!   then runs the case bodies on the workspace work-stealing pool
//!   (`HC_JOBS` workers, DESIGN §13). Outcomes are merged in case order, so
//!   which case fails — and its message — is identical to a serial run.
//! * **Deterministic by default.** Each test's RNG is seeded from the hash
//!   of its fully-qualified name, so failures reproduce without a
//!   `proptest-regressions` file. Set `PROPTEST_SEED=<u64>` to override.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (subset: `cases`, `parallel`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
        /// Accepted-but-ignored knob kept for struct-update compatibility.
        pub max_shrink_iters: u32,
        /// Run case bodies on the workspace work-stealing pool (`HC_JOBS`
        /// workers). Inputs are still generated serially from the single
        /// deterministic RNG stream, so the generated cases — and which case
        /// is reported on failure — are identical to a serial run.
        pub parallel: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                parallel: false,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (not a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (discarded) case.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic generator driving strategy sampling
    /// (SplitMix64 — tiny and statistically fine for test-data generation).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an explicit value.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Seeds deterministically from a test's fully-qualified name, or
        /// from `PROPTEST_SEED` if set in the environment.
        pub fn deterministic(test_name: &str) -> TestRng {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.trim().parse::<u64>() {
                    return TestRng::from_seed(seed);
                }
            }
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::from_seed(h)
        }

        /// The seed this generator started from (for failure reports).
        pub fn seed(&self) -> u64 {
            self.state
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty range");
            lo + self.next_u64() % (hi - lo)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of `Value` from a [`TestRng`].
    ///
    /// Unlike the real crate there is no value tree / shrinking: `generate`
    /// produces a final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy producing a single (cloned) value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let off = (rng.next_u64() as u128 % span) as $t;
                    self.start + off
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(0, self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.min as u64, self.size.max as u64 + 1) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `0..len`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

#[doc(hidden)]
pub mod rt {
    //! Macro support: runs pre-generated cases on the workspace pool.
    //! Not part of the public proptest-compatible API surface.

    use crate::test_runner::{TestCaseError, TestCaseResult};
    use std::any::Any;

    pub use pool::default_jobs;

    /// What one case did when run on the pool.
    pub enum CaseOutcome {
        Pass,
        Reject,
        Fail(String),
        Panic(Box<dyn Any + Send + 'static>),
    }

    /// Runs every case body on a scoped pool and returns the outcomes in
    /// case order. Panics are caught per case so the caller can report the
    /// lowest-index failure exactly as the serial loop would; the first
    /// panic payload is re-raised by the caller via `resume_unwind`.
    pub fn run_parallel<I, F>(inputs: Vec<I>, run_one: F) -> Vec<CaseOutcome>
    where
        I: Send + 'static,
        F: Fn(I) -> TestCaseResult + Send + Sync + 'static,
    {
        let jobs = default_jobs().min(inputs.len().max(1));
        let pool = pool::Pool::new(jobs);
        pool.scope(|s| {
            s.join_map(inputs, move |_, _, input| {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(input))) {
                    Ok(Ok(())) => CaseOutcome::Pass,
                    Ok(Err(TestCaseError::Reject(_))) => CaseOutcome::Reject,
                    Ok(Err(TestCaseError::Fail(msg))) => CaseOutcome::Fail(msg),
                    Err(payload) => CaseOutcome::Panic(payload),
                }
            })
        })
    }
}

/// Defines deterministic property tests over generated inputs.
///
/// Supports the block form used across this workspace:
/// an optional `#![proptest_config(...)]` inner attribute followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items. The body may
/// use `prop_assert*` and `?` over [`test_runner::TestCaseResult`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_runner::TestRng::deterministic(test_name);
            let seed = rng.seed();
            if cfg.parallel && $crate::rt::default_jobs() > 1 {
                // Inputs come off the same single RNG stream as the serial
                // loop; only the case *bodies* run on the pool. Outcomes are
                // merged in case order, so the reported failure (lowest
                // index) and its message match the serial run exactly.
                let mut inputs = ::std::vec::Vec::with_capacity(cfg.cases as usize);
                for _ in 0..cfg.cases {
                    inputs.push((
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    ));
                }
                let outcomes = $crate::rt::run_parallel(
                    inputs,
                    move |($($binding,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
                for (case, outcome) in outcomes.into_iter().enumerate() {
                    match outcome {
                        $crate::rt::CaseOutcome::Pass | $crate::rt::CaseOutcome::Reject => {}
                        $crate::rt::CaseOutcome::Fail(msg) => {
                            panic!(
                                "proptest {test_name}: case {}/{} failed (seed {seed}): {msg}",
                                case + 1,
                                cfg.cases,
                            );
                        }
                        $crate::rt::CaseOutcome::Panic(payload) => {
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            } else {
                for case in 0..cfg.cases {
                    $(let $binding = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {test_name}: case {}/{} failed (seed {seed}): {msg}",
                                case + 1,
                                cfg.cases,
                            );
                        }
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current test case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: `{:?}`",
            format!($($fmt)+), l
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat),)+];
        $crate::strategy::Union::new(options)
    }};
}

pub mod prelude {
    //! The usual glob import, mirroring the real crate's prelude.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper_using_question_mark(x: u64) -> TestCaseResult {
        prop_assert!(x < 1_000_000, "x out of range: {x}");
        Ok(())
    }

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b, c) in (0u64..10, 1u8..3, 0usize..5), f in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((1..3).contains(&b));
            prop_assert!(c < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_oneof(
            v in prop::collection::vec(any::<u8>(), 2..6),
            pick in prop_oneof![Just(1u32), Just(2u32)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(idx.index(v.len()) < v.len());
            helper_using_question_mark(v.len() as u64)?;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_is_respected(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let mut r1 = crate::test_runner::TestRng::from_seed(99);
        let mut r2 = crate::test_runner::TestRng::from_seed(99);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, parallel: true, ..ProptestConfig::default() })]
        #[test]
        fn parallel_cases_pass(x in 0u64..1000, v in prop::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!(x < 1000);
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }

    // Declared without `#[test]` so the test below can invoke it directly
    // and inspect the panic it raises.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, parallel: true, ..ProptestConfig::default() })]
        fn parallel_failing_run(x in 0u64..100) {
            prop_assert!(x < 40, "x too large: {x}");
        }
    }

    #[test]
    fn parallel_reports_lowest_failing_case_like_serial() {
        use crate::strategy::Strategy;
        // Reconstruct the generated stream to find the first case the
        // property rejects, exactly as the serial loop would encounter it.
        let test_name = concat!(module_path!(), "::", "parallel_failing_run");
        let mut rng = crate::test_runner::TestRng::deterministic(test_name);
        let seed = rng.seed();
        let strat = 0u64..100;
        let mut first_fail = None;
        for case in 0..32u32 {
            let x = strat.generate(&mut rng);
            if x >= 40 {
                first_fail = Some((case, x));
                break;
            }
        }
        let (case, x) = first_fail.expect("32 draws from 0..100 should exceed 40");
        let expected = format!(
            "proptest {test_name}: case {}/32 failed (seed {seed}): x too large: {x}",
            case + 1
        );
        let err = std::panic::catch_unwind(parallel_failing_run)
            .expect_err("failing property must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload should be a formatted String");
        assert_eq!(msg, expected);
    }

    // Same shape as above but panicking (not prop_assert-failing): the pool
    // path must re-raise the original payload via resume_unwind.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, parallel: true, ..ProptestConfig::default() })]
        fn parallel_panicking_run(x in 0u64..100) {
            if x >= 40 {
                panic!("boom at {x}");
            }
            prop_assert!(x < 40);
        }
    }

    #[test]
    fn rt_run_parallel_merges_outcomes_in_case_order() {
        use crate::rt::{run_parallel, CaseOutcome};
        let outcomes = run_parallel((0..50u64).collect::<Vec<_>>(), |x| {
            if x == 7 {
                Err(TestCaseError::fail(format!("seven {x}")))
            } else if x == 9 {
                Err(TestCaseError::reject("nine"))
            } else {
                Ok(())
            }
        });
        assert_eq!(outcomes.len(), 50);
        for (i, outcome) in outcomes.iter().enumerate() {
            match (i, outcome) {
                (7, CaseOutcome::Fail(msg)) => assert_eq!(msg, "seven 7"),
                (9, CaseOutcome::Reject) => {}
                (7 | 9, _) => panic!("case {i} produced the wrong outcome"),
                (_, CaseOutcome::Pass) => {}
                (_, _) => panic!("case {i} should have passed"),
            }
        }
    }

    #[test]
    fn parallel_propagates_body_panic_payload() {
        let err = std::panic::catch_unwind(parallel_panicking_run)
            .expect_err("panicking property must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload should be the body's String");
        assert!(msg.starts_with("boom at "), "unexpected payload: {msg}");
    }
}
