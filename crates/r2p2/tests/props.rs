//! Property-based tests for the R2P2 codec and reassembly invariants.

use proptest::prelude::*;

use r2p2::{
    body_hash, msg_wire_size, packetize, Header, MsgType, Policy, Reassembler, ReqId, HEADER_LEN,
};

fn arb_msg_type() -> impl Strategy<Value = MsgType> {
    prop_oneof![
        Just(MsgType::Request),
        Just(MsgType::Response),
        Just(MsgType::Feedback),
        Just(MsgType::Nack),
        Just(MsgType::Ack),
        Just(MsgType::RaftReq),
        Just(MsgType::RaftRep),
        Just(MsgType::RecoveryReq),
        Just(MsgType::RecoveryRep),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Unrestricted),
        Just(Policy::Sticky),
        Just(Policy::Replicated),
        Just(Policy::ReplicatedRo),
    ]
}

proptest! {
    /// Every well-formed header survives an encode/decode round trip.
    #[test]
    fn header_roundtrip(
        ty in arb_msg_type(),
        policy in arb_policy(),
        flags in 0u8..4,
        rid in any::<u16>(),
        pkt_id in any::<u16>(),
        n_pkts in any::<u16>(),
        src_port in any::<u16>(),
    ) {
        let h = Header { ty, policy, flags, rid, pkt_id, n_pkts, src_port };
        prop_assert_eq!(Header::decode(&h.encode()).unwrap(), h);
    }

    /// Packetize → shuffle → reassemble reproduces the body exactly, once.
    #[test]
    fn packetize_reassemble_roundtrip(
        body in proptest::collection::vec(any::<u8>(), 0..20_000),
        mtu in (HEADER_LEN + 1)..4096usize,
        order in any::<u64>(),
        ip in any::<u32>(),
        port in any::<u16>(),
        rid in any::<u16>(),
    ) {
        let id = ReqId::new(ip, port, rid);
        let mut frags = packetize(MsgType::Request, Policy::Replicated, id, &body, mtu);
        // Deterministic pseudo-shuffle driven by `order`.
        let n = frags.len();
        for i in 0..n {
            let j = (order as usize).wrapping_mul(i + 1) % n;
            frags.swap(i, j);
        }
        let mut r = Reassembler::new();
        let mut delivered = Vec::new();
        for f in frags {
            if let Some(m) = r.push(ip, f).unwrap() {
                delivered.push(m);
            }
        }
        prop_assert_eq!(delivered.len(), 1);
        prop_assert_eq!(&delivered[0].body[..], &body[..]);
        prop_assert_eq!(delivered[0].id, id);
        prop_assert_eq!(r.pending(), 0);
    }

    /// Wire size is body + one header per fragment and is monotone in body
    /// length for a fixed MTU.
    #[test]
    fn wire_size_invariants(len in 0usize..50_000, mtu in 64usize..9000) {
        let s = msg_wire_size(len, mtu);
        prop_assert!(s as usize >= len + HEADER_LEN);
        prop_assert!(msg_wire_size(len + 1, mtu) >= s);
    }

    /// Hash equality implies (with overwhelming probability) body equality;
    /// we check the contrapositive on small perturbations.
    #[test]
    fn body_hash_sensitive_to_single_byte(
        mut body in proptest::collection::vec(any::<u8>(), 1..1000),
        idx in any::<prop::sample::Index>(),
    ) {
        let h0 = body_hash(&body);
        let i = idx.index(body.len());
        body[i] = body[i].wrapping_add(1);
        prop_assert_ne!(h0, body_hash(&body));
    }
}
