//! Wire-size accounting helpers.
//!
//! The simulator carries whole messages (the NIC model fragments them for
//! cost accounting), so protocol layers need a single answer to "how many
//! bytes does this message occupy on the wire?". Centralizing the arithmetic
//! here keeps every component — clients, servers, the aggregator — charging
//! identical sizes for identical messages.

use crate::header::HEADER_LEN;

/// Wire size of an R2P2 message with `body_len` bytes of payload: one R2P2
/// header per fragment. `mtu` bounds the per-fragment wire size.
pub fn msg_wire_size(body_len: usize, mtu: usize) -> u32 {
    assert!(mtu > HEADER_LEN);
    let room = mtu - HEADER_LEN;
    let n_pkts = body_len.div_ceil(room).max(1);
    (body_len + n_pkts * HEADER_LEN) as u32
}

/// Wire size of a minimal control message (FEEDBACK, NACK, ACK): just the
/// header.
pub fn control_wire_size() -> u32 {
    HEADER_LEN as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_message_is_header_plus_body() {
        assert_eq!(msg_wire_size(24, 1500), 24 + 16);
        assert_eq!(msg_wire_size(0, 1500), 16);
    }

    #[test]
    fn multi_fragment_pays_one_header_per_fragment() {
        // 6000 bytes with 1484 of room per fragment → 5 fragments.
        assert_eq!(msg_wire_size(6000, 1500), (6000 + 5 * 16) as u32);
    }

    #[test]
    fn control_is_bare_header() {
        assert_eq!(control_wire_size(), 16);
    }
}
