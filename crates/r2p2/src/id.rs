//! Request identity: the R2P2 3-tuple.
//!
//! R2P2 uniquely identifies an RPC by `(req_id, src_port, src_ip)` (§3.2).
//! HovercRaft's separation of replication from ordering hangs off this:
//! the leader's `append_entries` carries only these identifiers (plus a
//! body hash to rule out collisions) and followers use them to look up the
//! payload in their unordered set.

/// The unique identity of one RPC: R2P2's `(req_id, src_port, src_ip)`.
///
/// Clients are responsible for uniqueness (§5); the namespace — 16-bit rid
/// per (ip, port) pair with ports cycling — is large enough in practice, and
/// the leader additionally propagates a body hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ReqId {
    /// Client node address (stands in for the source IP).
    pub src_ip: u32,
    /// Client-chosen source port.
    pub src_port: u16,
    /// Per-(ip, port) request counter.
    pub rid: u16,
}

impl ReqId {
    /// Builds a request id.
    pub fn new(src_ip: u32, src_port: u16, rid: u16) -> ReqId {
        ReqId {
            src_ip,
            src_port,
            rid,
        }
    }

    /// Packs the 3-tuple into a single u64 (useful as a map key or token).
    pub fn as_u64(self) -> u64 {
        ((self.src_ip as u64) << 32) | ((self.src_port as u64) << 16) | self.rid as u64
    }

    /// Unpacks a value produced by [`ReqId::as_u64`].
    pub fn from_u64(v: u64) -> ReqId {
        ReqId {
            src_ip: (v >> 32) as u32,
            src_port: (v >> 16) as u16,
            rid: v as u16,
        }
    }
}

/// Allocates unique request ids for one client endpoint, cycling the rid
/// counter and stepping the port when it wraps so ids stay unique far beyond
/// 2^16 outstanding requests.
#[derive(Debug, Clone)]
pub struct ReqIdAlloc {
    src_ip: u32,
    port: u16,
    rid: u16,
}

impl ReqIdAlloc {
    /// Creates an allocator for a client with address `src_ip`, starting at
    /// `base_port`.
    pub fn new(src_ip: u32, base_port: u16) -> ReqIdAlloc {
        ReqIdAlloc {
            src_ip,
            port: base_port,
            rid: 0,
        }
    }

    /// Returns the next unique id.
    pub fn allocate(&mut self) -> ReqId {
        let id = ReqId::new(self.src_ip, self.port, self.rid);
        let (rid, wrapped) = self.rid.overflowing_add(1);
        self.rid = rid;
        if wrapped {
            self.port = self.port.wrapping_add(1);
        }
        id
    }
}

/// FNV-1a hash of a request body; carried next to the [`ReqId`] in
/// HovercRaft metadata to rule out identifier collisions (§5: "the leader
/// can also include a hash of the request body").
pub fn body_hash(body: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in body {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn u64_roundtrip() {
        let id = ReqId::new(0xdead_beef, 9999, 12345);
        assert_eq!(ReqId::from_u64(id.as_u64()), id);
    }

    #[test]
    fn allocator_produces_unique_ids_past_u16_wrap() {
        let mut alloc = ReqIdAlloc::new(7, 1000);
        let mut seen = HashSet::new();
        for _ in 0..70_000 {
            assert!(seen.insert(alloc.allocate()), "duplicate id");
        }
    }

    #[test]
    fn allocators_on_different_ips_never_collide() {
        let mut a = ReqIdAlloc::new(1, 1000);
        let mut b = ReqIdAlloc::new(2, 1000);
        for _ in 0..100 {
            assert_ne!(a.allocate(), b.allocate());
        }
    }

    #[test]
    fn body_hash_discriminates() {
        assert_ne!(body_hash(b"hello"), body_hash(b"hellp"));
        assert_eq!(body_hash(b""), body_hash(b""));
        assert_ne!(body_hash(b"a"), body_hash(b"aa"));
    }
}
