//! The R2P2 packet header and its wire format.
//!
//! R2P2 (Kogias et al., ATC '19) is a UDP-based transport that exposes
//! request/response semantics to the network so that policies can be
//! enforced *inside* it. HovercRaft (§6.1) extends two header fields:
//!
//! * the **POLICY** field gains `REPLICATED_REQ` and `REPLICATED_REQ_R`,
//!   with which clients mark requests that must be totally ordered by the
//!   SMR layer (read-write and read-only respectively);
//! * the **message type** field gains Raft request/response types so that
//!   consensus messages — which are themselves RPCs — can be classified by
//!   both endpoints and in-network devices (the aggregator keys off these).
//!
//! The header is 16 bytes, fixed:
//!
//! ```text
//!  0      1      2      3      4      6      8     10     12     16
//!  +------+------+------+------+------+------+------+------+------+
//!  |magic |type/ |flags |rsvd  |rid   |pkt_id|n_pkts|src_port     |
//!  |      |policy|      |      |      |      |      | + seed      |
//!  +------+------+------+------+------+------+------+------+------+
//! ```
//!
//! (`rid`, `pkt_id`, `n_pkts` are u16 big-endian; the final 4 bytes carry
//! the 16-bit source port used in the request-identifying 3-tuple plus a
//! 16-bit checksum-seed we keep reserved.)

use crate::{R2p2Error, Result};

/// Protocol magic byte (first header byte of every R2P2 packet).
pub const MAGIC: u8 = 0x52; // ASCII 'R'

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 16;

/// R2P2 message types, including the Raft extensions of HovercRaft §6.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum MsgType {
    /// First (or only) packet of a client request.
    Request = 0,
    /// First (or only) packet of a server response.
    Response = 1,
    /// Flow-control / scheduling feedback (repurposable, §6.3).
    Feedback = 2,
    /// Negative acknowledgement: the request was rejected (e.g. flow
    /// control shed it); the client should back off and retry.
    Nack = 3,
    /// Acknowledgement used by request-expecting-feedback exchanges.
    Ack = 4,
    /// A consensus-protocol request (append_entries, request_vote, ...).
    RaftReq = 5,
    /// A consensus-protocol response.
    RaftRep = 6,
    /// HovercRaft recovery: ask a peer for a missing client request (§3.2).
    RecoveryReq = 7,
    /// HovercRaft recovery: carry a recovered client request.
    RecoveryRep = 8,
}

impl MsgType {
    /// Decodes a message type from its 4-bit wire value.
    pub fn from_wire(v: u8) -> Result<MsgType> {
        Ok(match v {
            0 => MsgType::Request,
            1 => MsgType::Response,
            2 => MsgType::Feedback,
            3 => MsgType::Nack,
            4 => MsgType::Ack,
            5 => MsgType::RaftReq,
            6 => MsgType::RaftRep,
            7 => MsgType::RecoveryReq,
            8 => MsgType::RecoveryRep,
            _ => return Err(R2p2Error::BadMsgType(v)),
        })
    }

    /// True for the two consensus message types, which in-network devices
    /// (the HovercRaft++ aggregator) treat specially.
    pub fn is_consensus(self) -> bool {
        matches!(self, MsgType::RaftReq | MsgType::RaftRep)
    }
}

/// Request routing/consistency policies carried in the POLICY field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[repr(u8)]
pub enum Policy {
    /// Any server may answer; no ordering (plain R2P2 load balancing).
    #[default]
    Unrestricted = 0,
    /// Stick to the server the router picked (JBSQ bookkeeping).
    Sticky = 1,
    /// HovercRaft: totally ordered read-write request (`REPLICATED_REQ`).
    Replicated = 2,
    /// HovercRaft: totally ordered read-only request (`REPLICATED_REQ_R`);
    /// ordered in the log but executed only by the designated replier §3.5.
    ReplicatedRo = 3,
}

impl Policy {
    /// Decodes a policy from its 4-bit wire value.
    pub fn from_wire(v: u8) -> Result<Policy> {
        Ok(match v {
            0 => Policy::Unrestricted,
            1 => Policy::Sticky,
            2 => Policy::Replicated,
            3 => Policy::ReplicatedRo,
            _ => return Err(R2p2Error::BadPolicy(v)),
        })
    }

    /// True if the request must be totally ordered by the SMR layer.
    pub fn is_replicated(self) -> bool {
        matches!(self, Policy::Replicated | Policy::ReplicatedRo)
    }

    /// True if the request is read-only (never modifies the state machine).
    pub fn is_read_only(self) -> bool {
        self == Policy::ReplicatedRo
    }
}

/// Decoded R2P2 packet header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Message type.
    pub ty: MsgType,
    /// Routing/consistency policy.
    pub policy: Policy,
    /// Flags (bit 0: FIRST, bit 1: LAST — both set for single-packet
    /// messages).
    pub flags: u8,
    /// Per-(client, port) request identifier; with the source ip/port it
    /// forms the unique 3-tuple of §3.2.
    pub rid: u16,
    /// Index of this packet within the message (0 = REQ0).
    pub pkt_id: u16,
    /// Total number of packets in the message.
    pub n_pkts: u16,
    /// Client-chosen source port, part of the identifying 3-tuple.
    pub src_port: u16,
}

/// FIRST flag: this is the opening packet of a message.
pub const FLAG_FIRST: u8 = 0x01;
/// LAST flag: this is the final packet of a message.
pub const FLAG_LAST: u8 = 0x02;

impl Header {
    /// Builds a header for a single-packet message.
    pub fn single(ty: MsgType, policy: Policy, rid: u16, src_port: u16) -> Header {
        Header {
            ty,
            policy,
            flags: FLAG_FIRST | FLAG_LAST,
            rid,
            pkt_id: 0,
            n_pkts: 1,
            src_port,
        }
    }

    /// Encodes into the fixed 16-byte wire representation.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0] = MAGIC;
        b[1] = ((self.ty as u8) << 4) | (self.policy as u8);
        b[2] = self.flags;
        b[3] = 0; // reserved
        b[4..6].copy_from_slice(&self.rid.to_be_bytes());
        b[6..8].copy_from_slice(&self.pkt_id.to_be_bytes());
        b[8..10].copy_from_slice(&self.n_pkts.to_be_bytes());
        b[10..12].copy_from_slice(&self.src_port.to_be_bytes());
        // b[12..16] reserved (checksum seed).
        b
    }

    /// Decodes from wire bytes; `buf` must hold at least [`HEADER_LEN`].
    pub fn decode(buf: &[u8]) -> Result<Header> {
        if buf.len() < HEADER_LEN {
            return Err(R2p2Error::Truncated {
                need: HEADER_LEN,
                have: buf.len(),
            });
        }
        if buf[0] != MAGIC {
            return Err(R2p2Error::BadMagic(buf[0]));
        }
        let ty = MsgType::from_wire(buf[1] >> 4)?;
        let policy = Policy::from_wire(buf[1] & 0x0f)?;
        Ok(Header {
            ty,
            policy,
            flags: buf[2],
            rid: u16::from_be_bytes([buf[4], buf[5]]),
            pkt_id: u16::from_be_bytes([buf[6], buf[7]]),
            n_pkts: u16::from_be_bytes([buf[8], buf[9]]),
            src_port: u16::from_be_bytes([buf[10], buf[11]]),
        })
    }

    /// True if the FIRST flag is set.
    pub fn is_first(&self) -> bool {
        self.flags & FLAG_FIRST != 0
    }

    /// True if the LAST flag is set.
    pub fn is_last(&self) -> bool {
        self.flags & FLAG_LAST != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_header_roundtrip() {
        let h = Header::single(MsgType::Request, Policy::Replicated, 42, 9000);
        let d = Header::decode(&h.encode()).unwrap();
        assert_eq!(h, d);
        assert!(d.is_first() && d.is_last());
    }

    #[test]
    fn all_types_and_policies_roundtrip() {
        for ty in [
            MsgType::Request,
            MsgType::Response,
            MsgType::Feedback,
            MsgType::Nack,
            MsgType::Ack,
            MsgType::RaftReq,
            MsgType::RaftRep,
            MsgType::RecoveryReq,
            MsgType::RecoveryRep,
        ] {
            for pol in [
                Policy::Unrestricted,
                Policy::Sticky,
                Policy::Replicated,
                Policy::ReplicatedRo,
            ] {
                let h = Header {
                    ty,
                    policy: pol,
                    flags: FLAG_FIRST,
                    rid: 7,
                    pkt_id: 3,
                    n_pkts: 9,
                    src_port: 555,
                };
                assert_eq!(Header::decode(&h.encode()).unwrap(), h);
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let h = Header::single(MsgType::Request, Policy::Unrestricted, 1, 2);
        let mut b = h.encode();
        b[0] = 0x00;
        assert!(matches!(Header::decode(&b), Err(R2p2Error::BadMagic(0))));
    }

    #[test]
    fn rejects_truncated_buffer() {
        let h = Header::single(MsgType::Request, Policy::Unrestricted, 1, 2);
        let b = h.encode();
        assert!(matches!(
            Header::decode(&b[..10]),
            Err(R2p2Error::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_unknown_type_and_policy() {
        let h = Header::single(MsgType::Request, Policy::Unrestricted, 1, 2);
        let mut b = h.encode();
        b[1] = 0xf0; // type nibble 15
        assert!(matches!(Header::decode(&b), Err(R2p2Error::BadMsgType(15))));
        b[1] = 0x0f; // policy nibble 15
        assert!(matches!(Header::decode(&b), Err(R2p2Error::BadPolicy(15))));
    }

    #[test]
    fn policy_predicates() {
        assert!(Policy::Replicated.is_replicated());
        assert!(Policy::ReplicatedRo.is_replicated());
        assert!(Policy::ReplicatedRo.is_read_only());
        assert!(!Policy::Replicated.is_read_only());
        assert!(!Policy::Unrestricted.is_replicated());
        assert!(MsgType::RaftReq.is_consensus());
        assert!(!MsgType::Request.is_consensus());
    }
}
