//! # r2p2 — Request/Response Pair Protocol for datacenter RPCs
//!
//! A simulation-grade reimplementation of R2P2 (Kogias et al., USENIX ATC
//! '19): a UDP-based transport that makes RPCs first-class network citizens
//! so that policy — load balancing, and with HovercRaft, state-machine
//! replication — can be enforced *inside* the transport, below the
//! application.
//!
//! The pieces HovercRaft builds on (paper §3.1, §6.1):
//!
//! * **Request identity**: every RPC is named by the 3-tuple
//!   `(req_id, src_port, src_ip)` ([`ReqId`]), independent of which server
//!   answers. This is what lets the reply source differ from the request
//!   destination — the mechanism behind reply load balancing.
//! * **POLICY field**: clients tag requests [`Policy::Replicated`] /
//!   [`Policy::ReplicatedRo`] to request total ordering (read-write vs
//!   read-only).
//! * **Message types**: consensus RPCs ([`MsgType::RaftReq`] /
//!   [`MsgType::RaftRep`]) share the transport with client RPCs and are
//!   classified by in-network devices.
//! * **FEEDBACK**: a repurposable control message, used by HovercRaft's
//!   flow-control middlebox (§6.3) and by JBSQ queue-depth bookkeeping.
//!
//! The crate provides the header codec ([`Header`]), packetization and
//! reassembly ([`packetize`], [`Reassembler`]), id allocation
//! ([`ReqIdAlloc`]), and wire-size accounting ([`msg_wire_size`]).

#![warn(missing_docs)]

mod chunk;
mod header;
mod id;
mod wire;

pub use chunk::{packetize, packetize_in, Fragment, Reassembled, Reassembler};
pub use header::{Header, MsgType, Policy, FLAG_FIRST, FLAG_LAST, HEADER_LEN, MAGIC};
pub use id::{body_hash, ReqId, ReqIdAlloc};
pub use wire::{control_wire_size, msg_wire_size};

/// Errors produced while decoding or reassembling R2P2 traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum R2p2Error {
    /// The first byte was not the R2P2 magic.
    BadMagic(u8),
    /// Unknown message-type nibble.
    BadMsgType(u8),
    /// Unknown policy nibble.
    BadPolicy(u8),
    /// Buffer shorter than a header.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// Fragment indices inconsistent with the message they belong to.
    BadFragment {
        /// Claimed fragment index.
        pkt_id: u16,
        /// Claimed fragment count.
        n_pkts: u16,
    },
}

impl std::fmt::Display for R2p2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            R2p2Error::BadMagic(m) => write!(f, "bad R2P2 magic byte {m:#04x}"),
            R2p2Error::BadMsgType(t) => write!(f, "unknown message type {t}"),
            R2p2Error::BadPolicy(p) => write!(f, "unknown policy {p}"),
            R2p2Error::Truncated { need, have } => {
                write!(f, "truncated packet: need {need} bytes, have {have}")
            }
            R2p2Error::BadFragment { pkt_id, n_pkts } => {
                write!(f, "inconsistent fragment {pkt_id}/{n_pkts}")
            }
        }
    }
}

impl std::error::Error for R2p2Error {}

/// Convenience alias for fallible R2P2 operations.
pub type Result<T> = std::result::Result<T, R2p2Error>;
