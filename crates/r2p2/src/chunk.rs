//! Message packetization and reassembly (REQ0/REQN).
//!
//! R2P2 splits a message larger than one MTU into a first packet (REQ0) that
//! carries the header plus the leading payload bytes, followed by REQN
//! packets. The receiver reassembles by `(3-tuple, pkt_id)` and releases the
//! message when all `n_pkts` fragments are present. Fragments may arrive in
//! any order; duplicates are ignored.

use fxhash::FxHashMap;

use bytes::{ByteArena, Bytes};

use crate::header::{Header, FLAG_FIRST, FLAG_LAST, HEADER_LEN};
use crate::id::ReqId;
use crate::{MsgType, Policy, R2p2Error, Result};

/// One wire packet: header plus its payload slice.
#[derive(Clone, Debug, PartialEq)]
pub struct Fragment {
    /// Decoded packet header.
    pub header: Header,
    /// This fragment's payload bytes.
    pub payload: Bytes,
}

/// Splits `body` into fragments of at most `mtu` bytes of wire size each
/// (header included). Always produces at least one fragment, even for an
/// empty body.
///
/// # Panics
/// Panics if `mtu` is not strictly larger than the header, or if the body
/// needs more than `u16::MAX` fragments.
pub fn packetize(ty: MsgType, policy: Policy, id: ReqId, body: &[u8], mtu: usize) -> Vec<Fragment> {
    let mut arena = ByteArena::new();
    packetize_in(ty, policy, id, body, mtu, &mut arena)
}

/// [`packetize`] drawing every fragment payload from `arena` — a sender
/// framing messages on a hot path reuses one arena so per-fragment copies
/// recycle pooled chunks instead of hitting the allocator.
pub fn packetize_in(
    ty: MsgType,
    policy: Policy,
    id: ReqId,
    body: &[u8],
    mtu: usize,
    arena: &mut ByteArena,
) -> Vec<Fragment> {
    assert!(mtu > HEADER_LEN, "mtu must exceed the header size");
    let room = mtu - HEADER_LEN;
    let n_pkts = body.len().div_ceil(room).max(1);
    assert!(n_pkts <= u16::MAX as usize, "message too large");
    let mut out = Vec::with_capacity(n_pkts);
    for i in 0..n_pkts {
        let lo = i * room;
        let hi = ((i + 1) * room).min(body.len());
        let mut flags = 0;
        if i == 0 {
            flags |= FLAG_FIRST;
        }
        if i == n_pkts - 1 {
            flags |= FLAG_LAST;
        }
        out.push(Fragment {
            header: Header {
                ty,
                policy,
                flags,
                rid: id.rid,
                pkt_id: i as u16,
                n_pkts: n_pkts as u16,
                src_port: id.src_port,
            },
            payload: arena.alloc(&body[lo..hi]),
        });
    }
    out
}

/// A message reassembled from its fragments.
#[derive(Clone, Debug, PartialEq)]
pub struct Reassembled {
    /// Message type (from the first fragment).
    pub ty: MsgType,
    /// Policy (from the first fragment).
    pub policy: Policy,
    /// The identifying 3-tuple.
    pub id: ReqId,
    /// The complete message body.
    pub body: Bytes,
}

struct Partial {
    ty: MsgType,
    policy: Policy,
    n_pkts: u16,
    have: u16,
    parts: Vec<Option<Bytes>>,
}

/// Reassembles multi-packet messages keyed by the R2P2 3-tuple.
#[derive(Default)]
pub struct Reassembler {
    partial: FxHashMap<ReqId, Partial>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages currently awaiting more fragments.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Feeds one fragment; `src_ip` completes the 3-tuple. Returns the full
    /// message once its last missing fragment arrives.
    pub fn push(&mut self, src_ip: u32, frag: Fragment) -> Result<Option<Reassembled>> {
        let mut arena = ByteArena::new();
        self.push_in(src_ip, frag, &mut arena)
    }

    /// [`Reassembler::push`] assembling the completed body from `arena`.
    /// Single-fragment messages pass their payload through zero-copy either
    /// way; only multi-packet completions draw an arena buffer.
    pub fn push_in(
        &mut self,
        src_ip: u32,
        frag: Fragment,
        arena: &mut ByteArena,
    ) -> Result<Option<Reassembled>> {
        let h = frag.header;
        let id = ReqId::new(src_ip, h.src_port, h.rid);
        if h.n_pkts == 0 || h.pkt_id >= h.n_pkts {
            return Err(R2p2Error::BadFragment {
                pkt_id: h.pkt_id,
                n_pkts: h.n_pkts,
            });
        }
        // Fast path: single-packet message with no partial state.
        if h.n_pkts == 1 && !self.partial.contains_key(&id) {
            return Ok(Some(Reassembled {
                ty: h.ty,
                policy: h.policy,
                id,
                body: frag.payload,
            }));
        }
        let p = self.partial.entry(id).or_insert_with(|| Partial {
            ty: h.ty,
            policy: h.policy,
            n_pkts: h.n_pkts,
            have: 0,
            parts: vec![None; h.n_pkts as usize],
        });
        if h.n_pkts != p.n_pkts {
            return Err(R2p2Error::BadFragment {
                pkt_id: h.pkt_id,
                n_pkts: h.n_pkts,
            });
        }
        let slot = &mut p.parts[h.pkt_id as usize];
        if slot.is_none() {
            *slot = Some(frag.payload);
            p.have += 1;
        }
        if p.have < p.n_pkts {
            return Ok(None);
        }
        let p = self.partial.remove(&id).expect("just inserted");
        let total: usize = p
            .parts
            .iter()
            .map(|x| x.as_ref().expect("all parts present").len())
            .sum();
        let body = arena.alloc_with(total, |buf| {
            let mut off = 0;
            for part in &p.parts {
                let part = part.as_ref().expect("all parts present");
                buf[off..off + part.len()].copy_from_slice(part);
                off += part.len();
            }
        });
        Ok(Some(Reassembled {
            ty: p.ty,
            policy: p.policy,
            id,
            body,
        }))
    }

    /// Drops partial state for `id` (e.g. on timeout).
    pub fn evict(&mut self, id: ReqId) {
        self.partial.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> ReqId {
        ReqId::new(3, 777, 21)
    }

    #[test]
    fn small_message_is_single_fragment() {
        let frags = packetize(MsgType::Request, Policy::Replicated, id(), b"abc", 1500);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].header.is_first() && frags[0].header.is_last());
        assert_eq!(frags[0].header.n_pkts, 1);
    }

    #[test]
    fn empty_body_still_sends_one_packet() {
        let frags = packetize(MsgType::Request, Policy::Unrestricted, id(), b"", 1500);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].payload.is_empty());
    }

    #[test]
    fn large_message_fragments_and_reassembles_in_order() {
        let body: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
        let frags = packetize(MsgType::Response, Policy::Unrestricted, id(), &body, 1500);
        assert_eq!(frags.len(), 4); // ceil(5000 / 1484)
        assert!(frags[0].header.is_first());
        assert!(frags.last().unwrap().header.is_last());
        let mut r = Reassembler::new();
        let mut done = None;
        for f in frags {
            done = r.push(3, f).unwrap();
        }
        let m = done.expect("complete");
        assert_eq!(&m.body[..], &body[..]);
        assert_eq!(m.id, id());
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_and_duplicate_fragments() {
        let body: Vec<u8> = (0..4000u32).map(|i| (i * 7) as u8).collect();
        let mut frags = packetize(MsgType::Request, Policy::Replicated, id(), &body, 1500);
        frags.reverse();
        let dup = frags[1].clone();
        frags.insert(1, dup);
        let mut r = Reassembler::new();
        let mut done = None;
        for f in frags {
            if let Some(m) = r.push(3, f).unwrap() {
                assert!(done.is_none(), "delivered twice");
                done = Some(m);
            }
        }
        assert_eq!(&done.expect("complete").body[..], &body[..]);
    }

    #[test]
    fn interleaved_messages_from_different_clients() {
        let body_a: Vec<u8> = vec![0xaa; 3000];
        let body_b: Vec<u8> = vec![0xbb; 3000];
        let fa = packetize(MsgType::Request, Policy::Replicated, id(), &body_a, 1500);
        let fb = packetize(MsgType::Request, Policy::Replicated, id(), &body_b, 1500);
        let mut r = Reassembler::new();
        let mut done = Vec::new();
        // Same (port, rid) but different src ips — must not mix.
        for (ip, f) in fa
            .into_iter()
            .map(|f| (1, f))
            .chain(fb.into_iter().map(|f| (2, f)))
        {
            if let Some(m) = r.push(ip, f).unwrap() {
                done.push(m);
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|m| m.id.src_ip == 1 && m.body[0] == 0xaa));
        assert!(done.iter().any(|m| m.id.src_ip == 2 && m.body[0] == 0xbb));
    }

    #[test]
    fn rejects_inconsistent_fragment() {
        let mut r = Reassembler::new();
        let h = Header {
            ty: MsgType::Request,
            policy: Policy::Unrestricted,
            flags: FLAG_FIRST,
            rid: 1,
            pkt_id: 5,
            n_pkts: 3,
            src_port: 1,
        };
        let err = r
            .push(
                1,
                Fragment {
                    header: h,
                    payload: Bytes::new(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, R2p2Error::BadFragment { .. }));
    }

    #[test]
    fn pooled_framing_matches_fresh_framing() {
        // Recycled arena chunks must be indistinguishable from fresh
        // allocations: frame and reassemble the same message repeatedly
        // through one arena and compare against the allocation-per-call
        // path every round.
        let mut arena = ByteArena::new();
        let body: Vec<u8> = (0..5000u32).map(|i| (i * 13) as u8).collect();
        for round in 0..20 {
            let fresh = packetize(MsgType::Response, Policy::Unrestricted, id(), &body, 1500);
            let pooled = packetize_in(
                MsgType::Response,
                Policy::Unrestricted,
                id(),
                &body,
                1500,
                &mut arena,
            );
            assert_eq!(fresh, pooled, "round {round}");
            let mut r = Reassembler::new();
            let mut done = None;
            for f in pooled {
                done = r.push_in(3, f, &mut arena).unwrap();
            }
            assert_eq!(
                &done.expect("complete").body[..],
                &body[..],
                "round {round}"
            );
        }
        assert!(arena.hits() > 0, "recycling never engaged");
    }

    #[test]
    fn evict_discards_partial_state() {
        let body = vec![1u8; 3000];
        let frags = packetize(MsgType::Request, Policy::Replicated, id(), &body, 1500);
        let mut r = Reassembler::new();
        assert!(r.push(3, frags[0].clone()).unwrap().is_none());
        assert_eq!(r.pending(), 1);
        r.evict(id());
        assert_eq!(r.pending(), 0);
    }
}
