//! Thin bench target over the shared micro-benchmark bodies in
//! `hovercraft_bench::micro` — shared so the test suite can smoke every
//! target for one iteration under `HC_FAST=1`.

fn main() {
    hovercraft_bench::micro::run_all();
}
