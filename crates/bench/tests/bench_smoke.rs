//! Bench-rot guard: every criterion micro-benchmark target must compile
//! and survive one iteration. `HC_FAST=1` puts the vendored criterion shim
//! into single-iteration mode, so this completes in well under a second
//! while still executing each benchmark body end to end.

#[test]
fn all_micro_bench_targets_run_one_iteration() {
    std::env::set_var("HC_FAST", "1");
    hovercraft_bench::micro::run_all();
}
