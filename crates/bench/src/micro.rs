//! Criterion micro-benchmarks of the performance-critical primitives: the
//! consensus hot path, the R2P2 codec, the store, the workload generators,
//! the trace ring, and the simulation engine itself. These guard the
//! constant factors the figure harnesses depend on.
//!
//! The bodies live in the library (not `benches/`) so the test suite can
//! execute every target for one iteration under `HC_FAST=1` — a compile-and-
//! run smoke that catches bench rot without paying for measurement. The
//! `benches/micro.rs` target is a thin `main` over [`run_all`].

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bytes::Bytes;
use hovercraft::{Aggregator, Cmd, EntryDesc, FlowControl, OpKind, WireMsg};
use minikv::{Command, CostModel, Store};
use r2p2::{packetize, Header, MsgType, Policy, Reassembler, ReqId};
use raft::{Config, Entry, Message, RaftLog, RaftNode};
use workload::{RecordSpec, YcsbGen, YcsbWorkload, Zipfian};

fn bench_r2p2(c: &mut Criterion) {
    let mut g = c.benchmark_group("r2p2");
    let h = Header::single(MsgType::Request, Policy::Replicated, 42, 9000);
    g.throughput(Throughput::Elements(1));
    g.bench_function("header_encode", |b| b.iter(|| black_box(h).encode()));
    let enc = h.encode();
    g.bench_function("header_decode", |b| {
        b.iter(|| Header::decode(black_box(&enc)).unwrap())
    });
    let body = vec![7u8; 6_000];
    let id = ReqId::new(1, 2, 3);
    g.bench_function("packetize_6kB", |b| {
        b.iter(|| {
            packetize(
                MsgType::Request,
                Policy::Replicated,
                id,
                black_box(&body),
                1500,
            )
        })
    });
    let frags = packetize(MsgType::Request, Policy::Replicated, id, &body, 1500);
    g.bench_function("reassemble_6kB", |b| {
        b.iter_batched(
            || frags.clone(),
            |frags| {
                let mut r = Reassembler::new();
                let mut out = None;
                for f in frags {
                    out = r.push(1, f).unwrap();
                }
                out.unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn meta_cmd(i: u64) -> Cmd {
    Cmd::meta(EntryDesc::new(
        ReqId::new(9, 9, i as u16),
        i,
        OpKind::ReadWrite,
    ))
}

fn bench_raft(c: &mut Criterion) {
    let mut g = c.benchmark_group("raft");
    g.throughput(Throughput::Elements(1));
    g.bench_function("log_append", |b| {
        b.iter_batched(
            RaftLog::<Cmd>::new,
            |mut log| {
                for i in 0..64 {
                    log.append(1, meta_cmd(i));
                }
                log
            },
            BatchSize::SmallInput,
        )
    });

    // Leader hot path: propose + pump + process both follower acks.
    g.bench_function("leader_request_cycle", |b| {
        // Build an established 3-node leader (through the Pre-Vote phase).
        let mk = || {
            let mut n = RaftNode::<Cmd>::new(Config::new(0, vec![0, 1, 2]), 0);
            let _ = n.tick(50_000_000); // election timeout: probe pre-votes
            let _ = n.step(
                1,
                Message::PreVoteReply {
                    term: n.term() + 1,
                    granted: true,
                },
                50_000_050,
            );
            let _ = n.step(
                1,
                Message::RequestVoteReply {
                    term: n.term(),
                    granted: true,
                },
                50_000_100,
            );
            assert!(n.is_leader());
            n
        };
        b.iter_batched(
            mk,
            |mut n| {
                let term = n.term();
                for i in 0..32u64 {
                    let idx = n.propose(meta_cmd(i)).unwrap();
                    let _ = n.pump(60_000_000 + i);
                    for peer in [1u32, 2] {
                        let _ = n.step(
                            peer,
                            Message::AppendEntriesReply {
                                term,
                                success: true,
                                match_index: idx,
                                conflict_index: 0,
                                applied_index: idx.saturating_sub(1),
                                from: peer,
                            },
                            60_000_001 + i,
                        );
                    }
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_dataplane(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane");
    g.throughput(Throughput::Elements(1));
    // Aggregator processing one append reply (its hottest packet).
    g.bench_function("aggregator_reply", |b| {
        let mut agg = Aggregator::new(vec![0, 1, 2]);
        let ae = WireMsg::Raft(Message::AppendEntries {
            term: 1,
            leader: 0,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![Entry {
                term: 1,
                index: 1,
                cmd: meta_cmd(1),
            }],
            leader_commit: 0,
        });
        agg.on_packet(0, ae);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            agg.on_packet(
                1,
                WireMsg::Raft(Message::AppendEntriesReply {
                    term: 1,
                    success: true,
                    match_index: i % 2, // alternate so not always committing
                    conflict_index: 0,
                    applied_index: 0,
                    from: 1,
                }),
            )
        })
    });
    g.bench_function("flowctl_admit_feedback", |b| {
        let mut fc = FlowControl::new(0x8000_0000, 1_000_000);
        let req = WireMsg::Request {
            id: ReqId::new(7, 7, 7),
            kind: OpKind::ReadWrite,
            body: Bytes::from_static(b"x"),
        };
        b.iter(|| {
            let d = fc.on_packet(black_box(&req), 0);
            fc.on_packet(&WireMsg::Feedback, 0);
            d
        })
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("minikv");
    g.throughput(Throughput::Elements(1));
    let spec = RecordSpec::default();
    let mut store = Store::new();
    for i in 0..10_000u64 {
        store.execute(&Command::Insert(
            Bytes::from_static(b"usertable"),
            Bytes::from(workload::key_of(i)),
            spec.build(i),
        ));
    }
    g.bench_function("insert_1kB", |b| {
        let mut i = 10_000u64;
        b.iter(|| {
            i += 1;
            store.execute(&Command::Insert(
                Bytes::from_static(b"usertable"),
                Bytes::from(workload::key_of(i % 100_000)),
                spec.build(i),
            ))
        })
    });
    g.bench_function("scan_10x1kB", |b| {
        b.iter(|| {
            store.execute(&Command::Scan(
                Bytes::from_static(b"usertable"),
                Bytes::from(workload::key_of(black_box(1_234))),
                10,
            ))
        })
    });
    g.bench_function("cost_model", |b| {
        let m = minikv::ExecMetrics {
            bytes_read: 5_500,
            bytes_written: 0,
            records: 6,
        };
        let c = CostModel::default();
        b.iter(|| c.cost_ns(black_box(&m)))
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(1));
    g.bench_function("zipfian_sample", |b| {
        use rand::SeedableRng;
        let z = Zipfian::ycsb(1_000_000);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        b.iter(|| z.sample(&mut rng))
    });
    g.bench_function("ycsbe_next_op", |b| {
        let mut gen = YcsbGen::new(YcsbWorkload::E, 10_000, RecordSpec::default(), 1);
        b.iter(|| gen.next_op())
    });
    g.finish();
}

fn bench_simnet(c: &mut Criterion) {
    use simnet::{Addr, Agent, Ctx, FabricParams, Packet, Sim, SimDur};
    struct Echo;
    impl Agent<u64> for Echo {
        fn on_packet(&mut self, pkt: Packet<u64>, ctx: &mut Ctx<'_, u64>) {
            if pkt.payload < 10_000 {
                ctx.send(pkt.src, 64, pkt.payload + 1);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let mut g = c.benchmark_group("simnet");
    // One iteration = 10k message hops through the full engine.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("engine_10k_hops", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(FabricParams::default(), 1);
            let a = sim.add_node(Box::new(Echo));
            let bb = sim.add_node(Box::new(Echo));
            sim.inject(a, Addr::node(bb), 64, 0);
            sim.run_for(SimDur::secs(1));
            sim.counters(a).rx_msgs
        })
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    use simnet::{SimTime, Tracer};
    use std::fmt;
    fn d_demo(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
        write!(f, "index={a} id={b}")
    }
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(1));
    let t = Tracer::default();
    let at = SimTime::ZERO;
    // The hot-path record: a handful of word moves, no allocation.
    g.bench_function("record_lazy", |b| {
        b.iter(|| t.record_lazy(at, 1, "executed", 42, d_demo, 7, 9, 0))
    });
    // What the hot path used to do: format! on every record.
    g.bench_function("record_eager_text", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t.record(at, 1, "executed", 42, format!("index={i} id=9"))
        })
    });
    // Rendering cost paid only on dump/violation (the cold side of lazy).
    g.bench_function("render_tail_512", |b| b.iter(|| t.render_tail(512).len()));
    g.finish();
}

fn bench_engine_queue(c: &mut Criterion) {
    use simnet::{Agent, Ctx, FabricParams, Sim, SimDur, TimerId};
    // A self-rearming timer: every fired event schedules the next one, so
    // one iteration is a pure push/pop cycle through the scheduler (slab
    // insert, heap or now-bucket, pop, dispatch) with no network work.
    struct Ticker;
    impl Agent<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.set_timer(SimDur::micros(1), 0);
        }
        fn on_packet(&mut self, _pkt: simnet::Packet<u64>, _ctx: &mut Ctx<'_, u64>) {}
        fn on_timer(&mut self, _id: TimerId, _kind: u64, ctx: &mut Ctx<'_, u64>) {
            ctx.set_timer(SimDur::micros(1), 0);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let mut g = c.benchmark_group("engine");
    // One iteration = 100k timer schedule+fire cycles.
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("queue_push_pop_100k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(FabricParams::default(), 1);
            sim.add_node(Box::new(Ticker));
            sim.run_for(SimDur::millis(100));
            sim.events_processed()
        })
    });
    g.finish();
}

mod groups {
    use super::*;
    criterion_group!(
        micro,
        bench_r2p2,
        bench_raft,
        bench_dataplane,
        bench_store,
        bench_workload,
        bench_trace,
        bench_engine_queue,
        bench_simnet
    );
}

/// Runs every micro-benchmark group once, printing results to stdout.
/// Under `HC_FAST=1` each target executes exactly one iteration.
pub fn run_all() {
    groups::micro();
}
