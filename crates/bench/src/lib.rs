//! # hovercraft-bench — the paper-reproduction harness
//!
//! One binary per table/figure of the HovercRaft paper's evaluation (§7),
//! each printing the series the paper plots plus the paper's qualitative
//! expectation, so a run can be eyeballed against the original:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig7_latency_throughput` | Fig. 7 — tail latency vs load, 4 setups, N=3 |
//! | `fig8_request_size` | Fig. 8 — max kRPS under SLO vs request size |
//! | `fig9_cluster_size` | Fig. 9 — max kRPS under SLO vs cluster size |
//! | `fig10_reply_lb` | Fig. 10 — reply load balancing with 6 kB replies |
//! | `fig11_readonly_lb` | Fig. 11 — JBSQ vs RANDOM, bimodal 10µs, 75 % RO |
//! | `fig12_failover` | Fig. 12 — leader-kill timeline with flow control |
//! | `fig13_ycsbe` | Fig. 13 — YCSB-E on the Redis-like store |
//! | `table1_msg_counts` | Table 1 — leader Rx/Tx messages per request |
//!
//! `run_all_figs` schedules the whole suite (figures *and* their inner
//! load grids) across cores on the vendored work-stealing [`pool`], with
//! byte-identical output to a serial run; see [`sweep`]. `HC_JOBS`
//! controls the worker count (`1` = exact serial execution). Set
//! `HC_FAST=1` for a quick smoke pass (shorter windows, coarser grids);
//! unset it for publication-quality runs.

#![warn(missing_docs)]

pub mod bench_json;
pub mod figs;
pub mod micro;
pub mod sweep;

use std::fmt::Write as _;

use simnet::SimDur;
use testbed::{run_experiment, ClusterOpts, ExpResult};

use crate::sweep::Sweep;

/// The paper's service-level objective: 500µs at the 99th percentile.
pub const SLO_NS: u64 = 500_000;

/// True when `HC_FAST=1`: smoke-test durations.
pub fn fast() -> bool {
    std::env::var("HC_FAST").map(|v| v == "1").unwrap_or(false)
}

/// (warmup, measure) windows for throughput points.
pub fn windows() -> (SimDur, SimDur) {
    if fast() {
        (SimDur::millis(30), SimDur::millis(120))
    } else {
        (SimDur::millis(100), SimDur::millis(400))
    }
}

/// Applies the standard measurement windows to an option set.
pub fn with_windows(mut o: ClusterOpts) -> ClusterOpts {
    let (w, m) = windows();
    o.warmup = w;
    o.measure = m;
    o.clients = 4;
    o
}

/// Thins a load grid when in fast mode (keeps every other point plus the
/// last).
pub fn grid(points: Vec<f64>) -> Vec<f64> {
    if !fast() {
        return points;
    }
    let n = points.len();
    points
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0 || *i == n - 1)
        .map(|(_, p)| p)
        .collect()
}

/// Runs a load sweep (in parallel under the sweep context) and returns the
/// highest achieved throughput whose point meets the 500µs SLO, plus every
/// point measured, in rate order.
pub fn max_under_slo(
    sw: &Sweep<'_, '_, '_>,
    rates: &[f64],
    mk: impl Fn(f64) -> ClusterOpts + Send + Sync + 'static,
) -> (f64, Vec<ExpResult>) {
    let all = sw.map(rates.to_vec(), move |rate| run_experiment(mk(rate)));
    (best_under_slo(&all), all)
}

/// The highest achieved throughput among `points` meeting the 500µs SLO.
pub fn best_under_slo(points: &[ExpResult]) -> f64 {
    let mut best = 0.0f64;
    for r in points {
        if r.meets_slo(SLO_NS) {
            best = best.max(r.achieved_rps);
        }
    }
    best
}

/// Appends one latency-throughput row to `out`.
pub fn write_point(out: &mut String, label: &str, r: &ExpResult) {
    let _ = writeln!(
        out,
        "{label:14} offered {:>9.0} RPS | achieved {:>9.0} RPS | p50 {:>9.1}us | p99 {:>9.1}us | nacks/s {:>8.0}",
        r.offered_rps,
        r.achieved_rps,
        r.p50_ns as f64 / 1e3,
        r.p99_ns as f64 / 1e3,
        r.nacks as f64 / windows().1.as_secs_f64(),
    );
}

/// Appends a standard experiment banner to `out`.
pub fn write_banner(out: &mut String, title: &str, paper_expectation: &str) {
    let _ = writeln!(
        out,
        "=========================================================================="
    );
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "--------------------------------------------------------------------------"
    );
    let _ = writeln!(out, "Paper expectation: {paper_expectation}");
    if fast() {
        let _ = writeln!(
            out,
            "(HC_FAST=1: smoke-test windows — absolute numbers are noisier)"
        );
    }
    let _ = writeln!(
        out,
        "=========================================================================="
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_passthrough_without_fast_mode() {
        // The test env does not set HC_FAST, so grids pass through whole.
        if !fast() {
            let g = grid(vec![1.0, 2.0, 3.0, 4.0]);
            assert_eq!(g.len(), 4);
        }
    }

    #[test]
    fn windows_are_nonzero() {
        let (w, m) = windows();
        assert!(w.as_nanos() > 0 && m.as_nanos() > 0);
    }
}
