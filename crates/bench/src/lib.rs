//! # hovercraft-bench — the paper-reproduction harness
//!
//! One binary per table/figure of the HovercRaft paper's evaluation (§7),
//! each printing the series the paper plots plus the paper's qualitative
//! expectation, so a run can be eyeballed against the original:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig7_latency_throughput` | Fig. 7 — tail latency vs load, 4 setups, N=3 |
//! | `fig8_request_size` | Fig. 8 — max kRPS under SLO vs request size |
//! | `fig9_cluster_size` | Fig. 9 — max kRPS under SLO vs cluster size |
//! | `fig10_reply_lb` | Fig. 10 — reply load balancing with 6 kB replies |
//! | `fig11_readonly_lb` | Fig. 11 — JBSQ vs RANDOM, bimodal 10µs, 75 % RO |
//! | `fig12_failover` | Fig. 12 — leader-kill timeline with flow control |
//! | `fig13_ycsbe` | Fig. 13 — YCSB-E on the Redis-like store |
//! | `table1_msg_counts` | Table 1 — leader Rx/Tx messages per request |
//!
//! Set `HC_FAST=1` for a quick smoke pass (shorter windows, coarser grids);
//! unset it for publication-quality runs.

#![warn(missing_docs)]

pub mod micro;

use simnet::SimDur;
use testbed::{run_experiment, ClusterOpts, ExpResult};

/// The paper's service-level objective: 500µs at the 99th percentile.
pub const SLO_NS: u64 = 500_000;

/// True when `HC_FAST=1`: smoke-test durations.
pub fn fast() -> bool {
    std::env::var("HC_FAST").map(|v| v == "1").unwrap_or(false)
}

/// (warmup, measure) windows for throughput points.
pub fn windows() -> (SimDur, SimDur) {
    if fast() {
        (SimDur::millis(30), SimDur::millis(120))
    } else {
        (SimDur::millis(100), SimDur::millis(400))
    }
}

/// Applies the standard measurement windows to an option set.
pub fn with_windows(mut o: ClusterOpts) -> ClusterOpts {
    let (w, m) = windows();
    o.warmup = w;
    o.measure = m;
    o.clients = 4;
    o
}

/// Thins a load grid when in fast mode (keeps every other point plus the
/// last).
pub fn grid(points: Vec<f64>) -> Vec<f64> {
    if !fast() {
        return points;
    }
    let n = points.len();
    points
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0 || *i == n - 1)
        .map(|(_, p)| p)
        .collect()
}

/// Runs a load sweep and returns the highest achieved throughput whose
/// point meets the 500µs SLO, plus every point measured.
pub fn max_under_slo(rates: &[f64], mk: impl Fn(f64) -> ClusterOpts) -> (f64, Vec<ExpResult>) {
    let mut best = 0.0f64;
    let mut all = Vec::new();
    for &r in rates {
        let res = run_experiment(mk(r));
        if res.meets_slo(SLO_NS) {
            best = best.max(res.achieved_rps);
        }
        all.push(res);
    }
    (best, all)
}

/// Prints one latency-throughput row.
pub fn print_point(label: &str, r: &ExpResult) {
    println!(
        "{label:14} offered {:>9.0} RPS | achieved {:>9.0} RPS | p50 {:>9.1}us | p99 {:>9.1}us | nacks/s {:>8.0}",
        r.offered_rps,
        r.achieved_rps,
        r.p50_ns as f64 / 1e3,
        r.p99_ns as f64 / 1e3,
        r.nacks as f64 / windows().1.as_secs_f64(),
    );
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, paper_expectation: &str) {
    println!("==========================================================================");
    println!("{title}");
    println!("--------------------------------------------------------------------------");
    println!("Paper expectation: {paper_expectation}");
    if fast() {
        println!("(HC_FAST=1: smoke-test windows — absolute numbers are noisier)");
    }
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_passthrough_without_fast_mode() {
        // The test env does not set HC_FAST, so grids pass through whole.
        if !fast() {
            let g = grid(vec![1.0, 2.0, 3.0, 4.0]);
            assert_eq!(g.len(), 4);
        }
    }

    #[test]
    fn windows_are_nonzero() {
        let (w, m) = windows();
        assert!(w.as_nanos() > 0 && m.as_nanos() > 0);
    }
}
