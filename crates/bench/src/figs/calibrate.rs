//! Developer tool: sweeps the Figure 8 parameter space to sanity-check the
//! testbed calibration (request-size sensitivity of each setup). Not one of
//! the paper's figures — kept as the quickest end-to-end health probe of
//! the performance model.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use simnet::SimDur;
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

use crate::sweep::{Figure, Sweep};

/// Calibration probe — request-size sensitivity per setup.
pub const FIG: Figure = Figure {
    name: "calibrate",
    run,
};

const RATES: [f64; 7] = [
    400_000.0, 500_000.0, 600_000.0, 700_000.0, 800_000.0, 850_000.0, 880_000.0,
];
const REQS: [usize; 3] = [24, 64, 512];

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    let setups = [
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ];
    // Request-size sensitivity (Figure 8 shape check).
    let jobs: Vec<ClusterOpts> = setups
        .iter()
        .flat_map(|&setup| {
            REQS.iter().flat_map(move |&req| {
                RATES.iter().map(move |&rate| {
                    let mut o = ClusterOpts::new(setup, 3, rate);
                    o.warmup = SimDur::millis(50);
                    o.measure = SimDur::millis(200);
                    o.lb_replies = Some(false);
                    o.clients = 4;
                    o.workload = WorkloadKind::Synth(SynthSpec {
                        dist: ServiceDist::Fixed { ns: 1000 },
                        req_size: req,
                        reply_size: 8,
                        ro_fraction: 0.0,
                    });
                    o
                })
            })
        })
        .collect();
    let results = sw.map(jobs, run_experiment);
    let mut chunks = results.chunks(RATES.len());
    for setup in setups {
        for req in REQS {
            let mut best = 0.0f64;
            for r in chunks.next().expect("grid chunk") {
                if r.meets_slo(500_000) {
                    best = best.max(r.achieved_rps);
                }
            }
            let _ = writeln!(
                out,
                "{:14} req {:>4}B  max-under-SLO {:>9.0}",
                setup.label(),
                req,
                best
            );
        }
    }
    out
}
