//! Figure renderers: each paper figure/table as a `fn(&Sweep) -> String`.
//!
//! The bodies used to live in the `src/bin/*` binaries and print straight
//! to stdout; they now render into a `String` so that (a) the thin
//! binaries and the `run_all_figs` driver share one implementation, and
//! (b) a parallel sweep can merge per-job results in input order and
//! produce **byte-identical** reports to a serial run. Each renderer
//! flattens its experiment grid into one job list up front (sequential
//! phases only where a later grid genuinely depends on an earlier
//! measurement, e.g. the YCSB ladders), maps it under the [`Sweep`]
//! context, and formats afterwards.

pub mod ablation_bound;
pub mod ablation_loss;
pub mod ablation_mechanisms;
pub mod calibrate;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod ycsb_suite;

use crate::sweep::Figure;

/// Every figure/table of the suite, in the canonical run order (paper
/// figures first, then the extension suite and developer tools). The
/// order fixes the results layout and the suite output digest; the
/// parallel driver still starts figures in this order (FIFO injector), so
/// the heavyweight early figures overlap the long tail.
pub fn all() -> Vec<Figure> {
    vec![
        fig7::FIG,
        fig8::FIG,
        fig9::FIG,
        fig10::FIG,
        fig11::FIG,
        fig12::FIG,
        fig13::FIG,
        fig14::FIG,
        table1::FIG,
        ycsb_suite::FIG,
        ablation_bound::FIG,
        ablation_loss::FIG,
        ablation_mechanisms::FIG,
        calibrate::FIG,
    ]
}

/// Looks a figure up by its binary/results name.
pub fn by_name(name: &str) -> Option<Figure> {
    all().into_iter().find(|f| f.name == name)
}
