//! Figure 13: YCSB-E (95% SCAN / 5% INSERT, 1 kB records) on the Redis-like
//! store (§7.5). The workload is CPU-bound and read-mostly, so read-only
//! load balancing converts replicas into throughput: the paper reports a 4x
//! speedup over the unreplicated deployment at N=7 under the 500µs SLO.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{ClusterOpts, ServiceKind, Setup, WorkloadKind};
use workload::YcsbWorkload;

use crate::sweep::{Figure, Sweep};
use crate::{grid, max_under_slo, with_windows, write_banner, write_point, SLO_NS};

/// Figure 13 — YCSB-E on the Redis-like store.
pub const FIG: Figure = Figure {
    name: "fig13_ycsbe",
    run,
};

const RECORDS: u64 = 10_000;

fn opts(setup: Setup, n: u32, rate: f64) -> ClusterOpts {
    let mut o = with_windows(ClusterOpts::new(setup, n, rate));
    o.service = ServiceKind::Kv;
    o.workload = WorkloadKind::Ycsb {
        workload: YcsbWorkload::E,
        records: RECORDS,
    };
    o.bound = 64;
    o
}

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Figure 13 — YCSB-E on the Redis-like store (unmodified service, all setups)",
        "SMR adds moderate latency at low load, but read-only load balancing \
         scales throughput with cluster size: the paper reaches 142 kRPS at \
         N=7 under the 500us SLO, ~4x over unreplicated",
    );
    // Phase 1 — the unreplicated knee (the HC++ ladders depend on it).
    let _ = writeln!(out, "--- UnRep (N=1) ---");
    let unrep_rates = grid(vec![
        10_000.0, 20_000.0, 30_000.0, 38_000.0, 44_000.0, 50_000.0,
    ]);
    let (unrep_best, pts) = max_under_slo(sw, &unrep_rates, |r| opts(Setup::Unrep, 1, r));
    for p in &pts {
        write_point(&mut out, "UnRep", p);
    }
    // Phase 2 — all HC++ grids are independent once the ladder rates are
    // derived from `unrep_best`: flatten (N × rate) into one map.
    let ns = [3u32, 5, 7];
    let mut jobs: Vec<ClusterOpts> = Vec::new();
    let mut per_n: Vec<usize> = Vec::new();
    for &n in &ns {
        // Amdahl estimate of the capacity: only SCANs (95% of ops, with a
        // serial fraction f set by the INSERT/SCAN cost ratio) scale out.
        let f = 0.107;
        let est = unrep_best / (f + (1.0 - f) / n as f64);
        let rates = grid(vec![
            est * 0.3,
            est * 0.55,
            est * 0.75,
            est * 0.9,
            est * 1.0,
            est * 1.1,
        ]);
        per_n.push(rates.len());
        jobs.extend(
            rates
                .iter()
                .map(|&r| opts(Setup::HovercraftPp(PolicyKind::Jbsq), n, r)),
        );
    }
    let results = sw.map(jobs, testbed::run_experiment);
    let mut speedups = Vec::new();
    let mut offset = 0;
    for (&n, &len) in ns.iter().zip(&per_n) {
        let _ = writeln!(out, "--- HovercRaft++ N={n} ---");
        let pts = &results[offset..offset + len];
        offset += len;
        for p in pts {
            write_point(&mut out, &format!("HC++ N={n}"), p);
        }
        speedups.push((n, crate::best_under_slo(pts)));
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "max under {}us SLO:  UnRep {:>8.0} RPS",
        SLO_NS / 1_000,
        unrep_best
    );
    for (n, best) in speedups {
        let _ = writeln!(
            out,
            "                    HC++ N={n} {:>8.0} RPS  ({:.2}x over UnRep)",
            best,
            best / unrep_best
        );
    }
    // Sanity at low load: SMR latency cost is moderate (paper: negligible
    // up to 10 kRPS).
    let lo = sw.map(
        vec![
            opts(Setup::Unrep, 1, 10_000.0),
            opts(Setup::HovercraftPp(PolicyKind::Jbsq), 7, 10_000.0),
        ],
        testbed::run_experiment,
    );
    let _ = writeln!(
        out,
        "low-load p99: UnRep {:.0}us vs HC++ N=7 {:.0}us",
        lo[0].p99_ns as f64 / 1e3,
        lo[1].p99_ns as f64 / 1e3
    );
    out
}
