//! Figure 10: latency vs throughput with 6 kB replies (§7.3). The
//! unreplicated server is IO-bound at ~200 kRPS (one 10G link); HovercRaft++
//! load-balances replies across all replicas for a ~N× capacity gain —
//! replication *improving* performance.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

use crate::sweep::{Figure, Sweep};
use crate::{grid, with_windows, write_banner, write_point};

/// Figure 10 — reply load balancing with 6 kB replies.
pub const FIG: Figure = Figure {
    name: "fig10_reply_lb",
    run,
};

fn wl() -> WorkloadKind {
    WorkloadKind::Synth(SynthSpec {
        dist: ServiceDist::Fixed { ns: 1_000 },
        req_size: 24,
        reply_size: 6_000,
        ro_fraction: 0.0,
    })
}

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Figure 10 — latency vs throughput, 6kB replies, reply LB on (S=1us, 24B req)",
        "UnRep hits the 10G reply-bandwidth wall at ~200 kRPS; 3 and 5 node \
         HovercRaft++ clusters scale reply capacity ~3x and ~5x",
    );
    // (section header, point label, opts for each rate) — flattened into
    // one job list so every point of every section runs concurrently.
    let mut sections: Vec<(String, String, Vec<ClusterOpts>)> = Vec::new();
    let unrep_rates = grid(vec![
        50_000.0, 100_000.0, 150_000.0, 180_000.0, 195_000.0, 210_000.0,
    ]);
    sections.push((
        "--- UnRep (N=1) ---".to_string(),
        "UnRep".to_string(),
        unrep_rates
            .iter()
            .map(|&rate| {
                let mut o = with_windows(ClusterOpts::new(Setup::Unrep, 1, rate));
                o.workload = wl();
                o
            })
            .collect(),
    ));
    for n in [3u32, 5] {
        let max = 195_000.0 * n as f64;
        let rates = grid(vec![
            max * 0.3,
            max * 0.5,
            max * 0.7,
            max * 0.85,
            max * 0.95,
            max * 1.05,
        ]);
        sections.push((
            format!("--- HovercRaft++ N={n} ---"),
            format!("HC++ N={n}"),
            rates
                .iter()
                .map(|&rate| {
                    let mut o = with_windows(ClusterOpts::new(
                        Setup::HovercraftPp(PolicyKind::Jbsq),
                        n,
                        rate,
                    ));
                    o.workload = wl();
                    o.bound = 128;
                    o
                })
                .collect(),
        ));
    }
    let jobs: Vec<ClusterOpts> = sections.iter().flat_map(|(_, _, j)| j.clone()).collect();
    let results = sw.map(jobs, run_experiment);
    let mut it = results.iter();
    for (header, label, section_jobs) in &sections {
        let _ = writeln!(out, "{header}");
        for _ in section_jobs {
            write_point(&mut out, label, it.next().expect("grid point"));
        }
    }
    out
}
