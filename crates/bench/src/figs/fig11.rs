//! Figure 11: CPU load balancing of read-only operations under service-time
//! dispersion (§7.3): bimodal S̄ = 10µs (10% of requests 10x longer), 75%
//! read-only, on a 3-node cluster with bounded queues of 32. JBSQ beats
//! RANDOM replier selection at the tail.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

use crate::sweep::{Figure, Sweep};
use crate::{grid, with_windows, write_banner, write_point};

/// Figure 11 — JBSQ vs RANDOM read-only load balancing.
pub const FIG: Figure = Figure {
    name: "fig11_readonly_lb",
    run,
};

fn wl() -> WorkloadKind {
    WorkloadKind::Synth(SynthSpec {
        dist: ServiceDist::Bimodal {
            mean_ns: 10_000,
            frac_long: 0.1,
            mult: 10,
        },
        req_size: 24,
        reply_size: 8,
        ro_fraction: 0.75,
    })
}

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Figure 11 — bimodal S=10us, 75% read-only, N=3, B=32: JBSQ vs RANDOM vs UnRep",
        "read-only load balancing lifts capacity ~57% over UnRep (~100k); \
         JBSQ sustains lower tail latency than RANDOM near saturation",
    );
    let mut sections: Vec<(String, String, Vec<ClusterOpts>)> = Vec::new();
    sections.push((
        "--- UnRep ---".to_string(),
        "UnRep".to_string(),
        grid(vec![
            25_000.0, 50_000.0, 75_000.0, 90_000.0, 97_000.0, 105_000.0,
        ])
        .iter()
        .map(|&rate| {
            let mut o = with_windows(ClusterOpts::new(Setup::Unrep, 1, rate));
            o.workload = wl();
            o
        })
        .collect(),
    ));
    for policy in [PolicyKind::Random, PolicyKind::Jbsq] {
        sections.push((
            format!("--- HovercRaft++ {policy:?} ---"),
            format!("HC++ {policy:?}"),
            grid(vec![
                50_000.0, 100_000.0, 125_000.0, 150_000.0, 165_000.0, 180_000.0, 195_000.0,
            ])
            .iter()
            .map(|&rate| {
                let mut o = with_windows(ClusterOpts::new(Setup::HovercraftPp(policy), 3, rate));
                o.workload = wl();
                o.bound = 32; // §7.3: longer service time, smaller bound
                o
            })
            .collect(),
        ));
    }
    let jobs: Vec<ClusterOpts> = sections.iter().flat_map(|(_, _, j)| j.clone()).collect();
    let results = sw.map(jobs, run_experiment);
    let mut it = results.iter();
    for (header, label, section_jobs) in &sections {
        let _ = writeln!(out, "{header}");
        for _ in section_jobs {
            write_point(&mut out, label, it.next().expect("grid point"));
        }
    }
    out
}
