//! Figure 12: throughput and tail latency through a leader failure (§7.4).
//! A 3-node HovercRaft++ cluster runs the bimodal S̄=10µs, 75%-read-only
//! workload at 165 kRPS — below the 3-node capacity but above the 2-node
//! capacity — with multicast flow control capped at 1000 in-flight
//! requests. The leader is killed mid-run; a follower takes over, bounded
//! queues keep work away from the dead node, and flow control sheds the
//! excess load instead of letting the system collapse.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use simnet::{SimDur, SimTime};
use testbed::{Cluster, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

use crate::sweep::{Figure, Sweep};
use crate::{fast, write_banner};

/// Figure 12 — leader-kill timeline with flow control.
pub const FIG: Figure = Figure {
    name: "fig12_failover",
    run,
};

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Figure 12 — leader failure at fixed 165 kRPS offered load (N=3, B=32, cap=1000)",
        "before the kill: 165 kRPS at low latency; after: throughput drops \
         to the 2-node capacity (~160 kRPS), flow control NACKs ~5 kRPS, \
         latency rises but the system does not collapse",
    );
    // One long single-world timeline: a single job, submitted through the
    // sweep so the driver can overlap it with other figures.
    let body = sw
        .map(vec![()], |()| render_timeline())
        .pop()
        .expect("timeline job");
    out.push_str(&body);
    out
}

fn render_timeline() -> String {
    let mut out = String::new();
    let total_s: u64 = if fast() { 8 } else { 20 };
    let kill_s: u64 = total_s / 2;

    let mut o = ClusterOpts::new(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 165_000.0);
    o.workload = WorkloadKind::Synth(SynthSpec {
        dist: ServiceDist::Bimodal {
            mean_ns: 10_000,
            frac_long: 0.1,
            mult: 10,
        },
        req_size: 24,
        reply_size: 8,
        ro_fraction: 0.75,
    });
    o.bound = 32;
    o.flow_cap = Some(1_000);
    o.clients = 4;
    o.load_start = SimTime::ZERO + SimDur::millis(150);
    o.warmup = SimDur::millis(0);
    o.measure = SimDur::secs(total_s);

    let mut cluster = Cluster::build(o);
    cluster.settle();
    let leader = cluster.leader().expect("leader elected");
    let kill_at = SimTime::ZERO + SimDur::secs(kill_s);
    cluster.sim.kill_at(leader, kill_at);
    let _ = writeln!(out, "leader is node {leader}; killing it at t = {kill_s}s");

    let end = SimTime::ZERO + SimDur::secs(total_s) + SimDur::millis(500);
    cluster.sim.run_until(end);

    // Merge the per-second series across clients.
    let clients = cluster.clients.clone();
    let mut per_sec: Vec<(usize, u64)> = Vec::new(); // (completions, worst p99)
    let mut nacks_per_sec: Vec<usize> = Vec::new();
    for &c in &clients {
        let agent = cluster.sim.agent_mut::<testbed::ClientAgent>(c);
        for w in agent.series.summarize() {
            let i = (w.start_ns / 1_000_000_000) as usize;
            if per_sec.len() <= i {
                per_sec.resize(i + 1, (0, 0));
                nacks_per_sec.resize(i + 1, 0);
            }
            per_sec[i].0 += w.count;
            per_sec[i].1 = per_sec[i].1.max(w.p99_ns);
        }
        for w in agent.nack_series.summarize() {
            let i = (w.start_ns / 1_000_000_000) as usize;
            if nacks_per_sec.len() <= i {
                nacks_per_sec.resize(i + 1, 0);
                per_sec.resize(i + 1, (0, 0));
            }
            nacks_per_sec[i] += w.count;
        }
    }
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>12}",
        "t(s)", "kRPS", "NACK/s", "p99 (ms)"
    );
    for (i, ((count, p99), nacks)) in per_sec.iter().zip(&nacks_per_sec).enumerate() {
        let marker = if i as u64 == kill_s {
            "  <- leader killed"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:>4} {:>10.1} {:>10} {:>12.3}{marker}",
            i,
            *count as f64 / 1_000.0,
            nacks,
            *p99 as f64 / 1e6,
        );
    }
    let new_leader = cluster.leader().expect("new leader");
    let _ = writeln!(out, "new leader after failover: node {new_leader}");
    out
}
