//! Ablation: the individual contribution of each HovercRaft mechanism.
//!
//! Runs the Figure 11 workload with reply load balancing and read-only
//! load balancing toggled independently, quantifying how much of the
//! capacity gain each mechanism delivers (§3.3 vs §3.5).

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

use crate::sweep::{Figure, Sweep};
use crate::{best_under_slo, with_windows, write_banner};

/// Ablation — mechanism contribution matrix.
pub const FIG: Figure = Figure {
    name: "ablation_mechanisms",
    run,
};

const COMBOS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Ablation — mechanism contributions (bimodal 10us, 75% RO, N=3, under 500us SLO)",
        "read-only LB is the big CPU win on this workload; reply LB matters \
         for IO-bound shapes (Fig. 10); together they give the full gain",
    );
    let rates: Vec<f64> = (1..=12).map(|i| i as f64 * 15_000.0).collect();
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>20}",
        "reply-LB", "ro-LB", "max kRPS under SLO"
    );
    let jobs: Vec<ClusterOpts> = COMBOS
        .iter()
        .flat_map(|&(lb_replies, lb_reads)| {
            rates.iter().map(move |&rate| {
                let mut o = with_windows(ClusterOpts::new(
                    Setup::HovercraftPp(PolicyKind::Jbsq),
                    3,
                    rate,
                ));
                o.workload = WorkloadKind::Synth(SynthSpec {
                    dist: ServiceDist::Bimodal {
                        mean_ns: 10_000,
                        frac_long: 0.1,
                        mult: 10,
                    },
                    req_size: 24,
                    reply_size: 8,
                    ro_fraction: 0.75,
                });
                o.bound = 32;
                o.lb_replies = Some(lb_replies);
                o.lb_reads = Some(lb_reads);
                o
            })
        })
        .collect();
    let results = sw.map(jobs, run_experiment);
    for (&(lb_replies, lb_reads), points) in COMBOS.iter().zip(results.chunks(rates.len())) {
        let best = best_under_slo(points);
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>17.0}",
            lb_replies,
            lb_reads,
            best / 1_000.0
        );
    }
    out
}
