//! Figure 8: achieved throughput under the 500µs SLO as a function of the
//! client request size (§7.1). HovercRaft separates replication from
//! ordering, so its cost is independent of request size; VanillaRaft pays
//! for every payload byte twice at the leader.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

use crate::sweep::{Figure, Sweep};
use crate::{best_under_slo, grid, with_windows, write_banner};

/// Figure 8 — max kRPS under SLO vs request size.
pub const FIG: Figure = Figure {
    name: "fig8_request_size",
    run,
};

const REQS: [usize; 3] = [24, 64, 512];

fn opts(setup: Setup, req: usize, rate: f64) -> ClusterOpts {
    let mut o = with_windows(ClusterOpts::new(setup, 3, rate));
    o.lb_replies = Some(false);
    o.workload = WorkloadKind::Synth(SynthSpec {
        dist: ServiceDist::Fixed { ns: 1_000 },
        req_size: req,
        reply_size: 8,
        ro_fraction: 0.0,
    });
    o
}

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Figure 8 — max kRPS under 500us SLO vs request size (S=1us, 8B replies, N=3)",
        "VanillaRaft loses ~2% at 64B and ~48% at 512B vs its 24B baseline; \
         HovercRaft and HovercRaft++ are unaffected by request size",
    );
    let rates = grid(vec![
        300_000.0, 400_000.0, 500_000.0, 600_000.0, 700_000.0, 800_000.0, 850_000.0, 876_000.0,
    ]);
    let _ = writeln!(
        out,
        "{:14} {:>6} {:>18}",
        "setup", "reqB", "max kRPS under SLO"
    );
    let setups = [
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ];
    let mut jobs: Vec<ClusterOpts> = Vec::new();
    for &setup in &setups {
        for &req in &REQS {
            for &rate in &rates {
                jobs.push(opts(setup, req, rate));
            }
        }
    }
    let results = sw.map(jobs, run_experiment);
    let mut chunks = results.chunks(rates.len());
    for setup in setups {
        let mut baseline = 0.0f64;
        for req in REQS {
            let best = best_under_slo(chunks.next().expect("grid chunk"));
            if req == 24 {
                baseline = best;
            }
            let delta = 100.0 * (best / baseline - 1.0);
            let _ = writeln!(
                out,
                "{:14} {:>6} {:>15.0}  ({:+.1}% vs 24B)",
                setup.label(),
                req,
                best / 1_000.0,
                delta
            );
        }
    }
    out
}
