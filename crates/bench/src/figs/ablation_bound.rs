//! Ablation: the bounded-queue bound B (§3.4, §3.6).
//!
//! B trades failure containment (≤ B lost replies per failed node) and
//! JBSQ's queue-depth signal against scheduling slack: too small starves
//! announcement, too large lets a slow node hoard work. Sweeps B on the
//! Figure 11 workload (bimodal S̄=10µs, 75% read-only, N=3).

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

use crate::sweep::{Figure, Sweep};
use crate::{with_windows, write_banner};

/// Ablation — bounded-queue bound B sweep.
pub const FIG: Figure = Figure {
    name: "ablation_bound",
    run,
};

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Ablation — bounded-queue bound B at 150 kRPS (bimodal 10us, 75% RO, N=3)",
        "tiny B throttles announcements (throughput loss); large B keeps \
         throughput but weakens failure containment; the paper uses B=32 \
         for this workload",
    );
    let _ = writeln!(
        out,
        "{:>5} {:>12} {:>12} {:>12}",
        "B", "achieved", "p99(us)", "p50(us)"
    );
    let bounds = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let jobs: Vec<ClusterOpts> = bounds
        .iter()
        .map(|&b| {
            let mut o = with_windows(ClusterOpts::new(
                Setup::HovercraftPp(PolicyKind::Jbsq),
                3,
                150_000.0,
            ));
            o.workload = WorkloadKind::Synth(SynthSpec {
                dist: ServiceDist::Bimodal {
                    mean_ns: 10_000,
                    frac_long: 0.1,
                    mult: 10,
                },
                req_size: 24,
                reply_size: 8,
                ro_fraction: 0.75,
            });
            o.bound = b;
            o
        })
        .collect();
    let results = sw.map(jobs, run_experiment);
    for (&b, r) in bounds.iter().zip(&results) {
        let _ = writeln!(
            out,
            "{b:>5} {:>12.0} {:>12.1} {:>12.1}",
            r.achieved_rps,
            r.p99_ns as f64 / 1e3,
            r.p50_ns as f64 / 1e3
        );
    }
    out
}
