//! Table 1: leader Rx/Tx message complexity per client request in the
//! non-failure case (§4). Measured from live per-node NIC counters over the
//! steady-state window, for N = 3..9.
//!
//! Paper's analytic table (per request):
//!   Raft        : Rx 1+(N-1)      Tx (N-1)+1
//!   HovercRaft  : Rx 1+(N-1)      Tx (N-1)+1/N
//!   HovercRaft++: Rx 1+1          Tx 1+1/N
//!
//! Our measured Tx additionally includes the FEEDBACK message per reply
//! when flow control is deployed (HovercRaft modes), and reply
//! load-balancing is left on, so HovercRaft leader Tx ≈ (N-1) + 1/N + 1/N.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, Setup};

use crate::sweep::{Figure, Sweep};
use crate::{with_windows, write_banner};

/// Table 1 — leader Rx/Tx messages per request.
pub const FIG: Figure = Figure {
    name: "table1_msg_counts",
    run,
};

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Table 1 — leader Rx/Tx messages per request (measured, steady state)",
        "Raft and HovercRaft leader message counts grow with N; the \
         HovercRaft++ aggregator makes them constant (~2 Rx, ~1+2/N Tx)",
    );
    let _ = writeln!(
        out,
        "{:>3} | {:>24} | {:>24} | {:>24}",
        "N", "VanillaRaft rx/tx", "HovercRaft rx/tx", "HovercRaft++ rx/tx"
    );
    let ns = [3u32, 5, 7, 9];
    let setups = [
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ];
    let jobs: Vec<ClusterOpts> = ns
        .iter()
        .flat_map(|&n| {
            setups.iter().map(move |&setup| {
                // High load (but under the SLO knee) so the pipeline stays
                // busy and commit indices ride data-carrying appends, like
                // the steady state the paper's analytic table describes. At
                // low load the latency-saving catch-up notifications
                // (§3.7's 2.5-RTT path) add up to two messages per request.
                let rate = if n <= 5 { 700_000.0 } else { 400_000.0 };
                with_windows(ClusterOpts::new(setup, n, rate))
            })
        })
        .collect();
    let results = sw.map(jobs, run_experiment);
    for (&n, row) in ns.iter().zip(results.chunks(setups.len())) {
        let mut cells = Vec::new();
        for r in row {
            let leader = r.leader.expect("leader") as usize;
            let c = r.server_counters[leader];
            let per = r.responses.max(1) as f64;
            cells.push(format!(
                "{:>6.2} / {:<6.2}",
                c.rx_msgs as f64 / per,
                c.tx_msgs as f64 / per
            ));
        }
        let _ = writeln!(
            out,
            "{n:>3} | {:>24} | {:>24} | {:>24}",
            cells[0], cells[1], cells[2]
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "analytic (paper):   Raft rx=N, tx=N | HovercRaft rx=N, tx=(N-1)+1/N(+fb) | HC++ rx=2, tx=1+1/N(+fb)");
    out
}
