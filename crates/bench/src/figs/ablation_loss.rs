//! Ablation: multicast loss and the recovery protocol (§3.2, §5).
//!
//! HovercRaft does not assume reliable multicast; lost request copies are
//! repaired with recovery_request messages. Sweeps the independent
//! per-copy loss probability and reports the recovery traffic and its
//! latency cost.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use simnet::SimDur;
use testbed::{summarize, Cluster, ClusterOpts, ServerAgent, Setup};

use crate::sweep::{Figure, Sweep};
use crate::{windows, write_banner};

/// Ablation — fabric loss rate vs recovery traffic.
pub const FIG: Figure = Figure {
    name: "ablation_loss",
    run,
};

/// One measured row: (achieved, p99, recoveries sent, served, stalls).
struct Row {
    achieved_rps: f64,
    p99_ns: u64,
    recov: u64,
    served: u64,
    stalls: u64,
}

fn measure(loss: f64) -> Row {
    let (w, m) = windows();
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, 100_000.0);
    o.warmup = w;
    o.measure = m;
    o.clients = 4;
    let mut cluster = Cluster::build(o);
    cluster.sim.set_loss_rate(loss);
    cluster.run_to_completion();
    cluster.sim.set_loss_rate(0.0);
    cluster.sim.run_for(SimDur::millis(50));
    let mut recov = 0;
    let mut served = 0;
    let mut stalls = 0;
    for &s in &cluster.servers.clone() {
        let st = cluster.sim.agent::<ServerAgent>(s).node().stats();
        recov += st.recoveries_sent;
        served += st.recoveries_served;
        stalls += st.apply_stalls;
    }
    let r = summarize(&mut cluster);
    Row {
        achieved_rps: r.achieved_rps,
        p99_ns: r.p99_ns,
        recov,
        served,
        stalls,
    }
}

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Ablation — fabric loss rate vs recovery traffic and latency (N=3, 100 kRPS)",
        "loss triggers recovery_request repair; goodput holds while tail \
         latency grows with the repair round trips",
    );
    let _ = writeln!(
        out,
        "{:>7} {:>12} {:>11} {:>11} {:>12} {:>10}",
        "loss", "achieved", "p99(us)", "recoveries", "served", "stalls"
    );
    let losses = vec![0.0, 0.001, 0.005, 0.01, 0.02, 0.05];
    let rows = sw.map(losses.clone(), measure);
    for (loss, r) in losses.iter().zip(&rows) {
        let _ = writeln!(
            out,
            "{:>6.1}% {:>12.0} {:>11.1} {:>11} {:>12} {:>10}",
            loss * 100.0,
            r.achieved_rps,
            r.p99_ns as f64 / 1e3,
            r.recov,
            r.served,
            r.stalls
        );
    }
    out
}
