//! Figure 14 (extension): snapshotting, log compaction, and large-state
//! recovery. Not a paper figure — HovercRaft (§5) assumes peer-served
//! recovery of individual bodies and leaves log growth out of scope; this
//! extension charts what snapshotting buys on top:
//!
//! * **log memory vs snapshot horizon** — peak retained ordering entries,
//!   archived bodies, and dedupe tombstones as the compaction horizon
//!   varies (0 = snapshotting disabled: memory grows with history);
//! * **long-horizon bounded memory** — a ≥10⁷-request run at a fixed
//!   horizon must hold peak log/body memory flat while throughput and the
//!   dual compaction schedule (bodies and ordering metadata compact
//!   independently) keep up;
//! * **recovery time vs state size** — a follower that falls behind the
//!   compaction horizon can only rejoin via chunked snapshot transfer;
//!   recovery time is charted against the serialized state-machine size
//!   (YCSB keyspaces of increasing record counts).

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use simnet::{SimDur, SimTime};
use testbed::{Cluster, ClusterOpts, ServerAgent, ServiceKind, Setup, WorkloadKind};
use workload::YcsbWorkload;

use crate::sweep::{Figure, Sweep};
use crate::{fast, write_banner};

/// Figure 14 — snapshotting, compaction, and large-state recovery.
pub const FIG: Figure = Figure {
    name: "fig14_recovery",
    run,
};

/// Load for the memory sections: the baseline 1 µs all-write synthetic
/// point, high enough that an unbounded log visibly grows.
const MEM_RATE: f64 = 200_000.0;

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Figure 14 — snapshotting, log compaction, and large-state recovery (extension)",
        "bounded horizons hold log memory flat where horizon 0 grows with \
         history; a >=1e7-request run stays within one compaction interval \
         of memory; recovery time scales with serialized state size, not \
         with how far the follower fell behind",
    );

    let _ = writeln!(out, "--- log memory vs snapshot horizon ---");
    let _ = writeln!(
        out,
        "{:>9} {:>10} {:>12} {:>12} {:>11} {:>10}",
        "horizon", "applied", "peak log", "peak bodies", "tombstones", "snapshots"
    );
    let horizons: Vec<u64> = vec![0, 1_024, 8_192, 65_536];
    for row in sw.map(horizons, memory_row) {
        out.push_str(&row);
    }

    let _ = writeln!(out, "--- long-horizon bounded memory (horizon 8192) ---");
    let body = sw
        .map(vec![()], |()| long_horizon_row())
        .pop()
        .expect("long-horizon job");
    out.push_str(&body);

    let _ = writeln!(out, "--- recovery time vs state size (horizon 2048) ---");
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>10} {:>13} {:>9}",
        "records", "state KiB", "behind", "recovery ms", "installs"
    );
    let records: Vec<u64> = if fast() {
        vec![1_000, 5_000]
    } else {
        vec![1_000, 10_000, 50_000]
    };
    for row in sw.map(records, recovery_row) {
        out.push_str(&row);
    }
    out
}

/// Peak (across time and replicas) log entries, archived bodies, and
/// tombstones over a fixed-load run at the given compaction horizon.
fn memory_row(horizon: u64) -> String {
    let measure = if fast() {
        SimDur::millis(400)
    } else {
        SimDur::secs(2)
    };
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, MEM_RATE);
    o.warmup = SimDur::millis(0);
    o.measure = measure;
    o.snapshot_interval = horizon;
    let mut cluster = Cluster::build(o);
    cluster.settle();
    let (applied, peak_log, peak_bodies, peak_tombs, snaps) = sample_memory(&mut cluster);
    format!("{horizon:>9} {applied:>10} {peak_log:>12} {peak_bodies:>12} {peak_tombs:>11} {snaps:>10}\n")
}

/// The bounded-memory demonstration: >=1e7 requests of virtual time at a
/// fixed horizon; memory must not scale with history.
fn long_horizon_row() -> String {
    let mut out = String::new();
    // 200 kRPS × 50 s = 1e7 ordered requests (HC_FAST trims the world for
    // CI smoke; the committed results file is rendered at full scale).
    let secs: u64 = if fast() { 2 } else { 50 };
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, MEM_RATE);
    o.warmup = SimDur::millis(0);
    o.measure = SimDur::secs(secs);
    o.snapshot_interval = 8_192;
    let mut cluster = Cluster::build(o);
    cluster.settle();
    let (applied, peak_log, peak_bodies, peak_tombs, snaps) = sample_memory(&mut cluster);
    let _ = writeln!(out, "requests applied:      {applied}");
    let _ = writeln!(out, "snapshots taken:       {snaps}");
    let _ = writeln!(out, "peak retained entries: {peak_log}");
    let _ = writeln!(out, "peak archived bodies:  {peak_bodies}");
    let _ = writeln!(out, "peak dedupe tombstones:{peak_tombs:>7}");
    let bound = 2 * 8_192 + 1_024;
    let _ = writeln!(
        out,
        "memory bounded:        {} (peak log {} <= 2 intervals + slack = {})",
        if (peak_log as u64) <= bound {
            "yes"
        } else {
            "NO"
        },
        peak_log,
        bound,
    );
    out
}

/// Steps the cluster to the end of load in 50 ms strides, sampling every
/// replica's retained-log length, archived-body count, and tombstone
/// count. Returns (applied, peak_log, peak_bodies, peak_tombstones,
/// snapshots).
fn sample_memory(cluster: &mut Cluster) -> (u64, usize, usize, usize, u64) {
    let end = cluster.opts().load_end() + SimDur::millis(50);
    let mut peak_log = 0usize;
    let mut peak_bodies = 0usize;
    let mut peak_tombs = 0usize;
    while cluster.sim.now() < end {
        let next = (cluster.sim.now() + SimDur::millis(50)).min(end);
        cluster.sim.run_until(next);
        for &s in &cluster.servers.clone() {
            let n = cluster.sim.agent::<ServerAgent>(s).node();
            let log = n.raft().log();
            peak_log = peak_log.max((log.last_index() - log.snapshot_index()) as usize);
            peak_bodies = peak_bodies.max(n.pool().archived_len());
            peak_tombs = peak_tombs.max(n.pool().tombstone_len());
        }
    }
    let leader = cluster.leader().expect("leader");
    let n = cluster.sim.agent::<ServerAgent>(leader).node();
    (
        n.applied_index(),
        peak_log,
        peak_bodies,
        peak_tombs,
        n.stats().snapshots,
    )
}

/// One recovery point: preload `records` YCSB records, let a follower fall
/// a full compaction horizon behind while dark, and measure restart →
/// caught-up-to-the-commit-it-missed. The follower can only rejoin via the
/// chunked snapshot state transfer (its missing bodies are compacted
/// everywhere), so recovery time tracks the serialized state size.
fn recovery_row(records: u64) -> String {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, 50_000.0);
    o.service = ServiceKind::Kv;
    o.workload = WorkloadKind::Ycsb {
        workload: YcsbWorkload::E,
        records,
    };
    o.bound = 64;
    o.warmup = SimDur::millis(0);
    o.measure = SimDur::millis(1_500);
    o.snapshot_interval = 2_048;
    let mut cluster = Cluster::build(o);
    cluster.settle();
    let leader = cluster.leader().expect("leader");
    let victim = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");

    // 200 ms dark at 50 kRPS ≈ 10k entries — five horizons past the log
    // end the victim crashed with.
    let kill_at = SimTime::ZERO + SimDur::millis(400);
    let restart_at = kill_at + SimDur::millis(200);
    cluster.sim.kill_at(victim, kill_at);
    cluster.sim.restart_at(victim, restart_at);
    cluster.sim.run_until(kill_at);
    let commit_at_kill = leader_commit(&cluster, leader);
    cluster.sim.run_until(restart_at);
    let missed_commit = leader_commit(&cluster, leader);
    let behind = missed_commit.saturating_sub(commit_at_kill);
    let deadline = cluster.opts().load_end() + SimDur::millis(500);
    let mut recovered_at: Option<SimTime> = None;
    while cluster.sim.now() < deadline {
        cluster.sim.run_for(SimDur::millis(1));
        let n = cluster.sim.agent::<ServerAgent>(victim).node();
        if n.applied_index() >= missed_commit && n.stats().installs >= 1 {
            recovered_at = Some(cluster.sim.now());
            break;
        }
    }
    let n = cluster.sim.agent::<ServerAgent>(victim).node();
    let state_kib = n.service().snapshot().len() as f64 / 1024.0;
    let recovery_ms = match recovered_at {
        Some(t) => format!("{:.2}", (t - restart_at).as_nanos() as f64 / 1e6),
        None => "DNF".to_string(),
    };
    format!(
        "{records:>9} {state_kib:>12.1} {behind:>10} {recovery_ms:>13} {:>9}\n",
        n.stats().installs
    )
}

/// The leader's current commit index.
fn leader_commit(cluster: &Cluster, leader: u32) -> u64 {
    cluster
        .sim
        .agent::<ServerAgent>(leader)
        .node()
        .raft()
        .commit_index()
}
