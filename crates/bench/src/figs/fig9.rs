//! Figure 9: achieved throughput under the 500µs SLO as the cluster grows
//! to 5, 7, and 9 nodes (§7.2) — "scaling cluster sizes without regret".

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, Setup};

use crate::sweep::{Figure, Sweep};
use crate::{best_under_slo, grid, with_windows, write_banner};

/// Figure 9 — max kRPS under SLO vs cluster size.
pub const FIG: Figure = Figure {
    name: "fig9_cluster_size",
    run,
};

const NS: [u32; 4] = [3, 5, 7, 9];

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Figure 9 — max kRPS under 500us SLO vs cluster size (S=1us, 24B/8B)",
        "VanillaRaft degrades most (-43% at N=9 in the paper); HovercRaft \
         degrades less; HovercRaft++ is flat — the aggregator makes leader \
         cost independent of cluster size",
    );
    let rates = grid(vec![
        300_000.0, 400_000.0, 500_000.0, 600_000.0, 700_000.0, 800_000.0, 850_000.0, 876_000.0,
    ]);
    let _ = writeln!(
        out,
        "{:14} {:>3} {:>18}",
        "setup", "N", "max kRPS under SLO"
    );
    let setups = [
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ];
    let mut jobs: Vec<ClusterOpts> = Vec::new();
    for &setup in &setups {
        for &n in &NS {
            for &rate in &rates {
                let mut o = with_windows(ClusterOpts::new(setup, n, rate));
                o.lb_replies = Some(false);
                jobs.push(o);
            }
        }
    }
    let results = sw.map(jobs, run_experiment);
    let mut chunks = results.chunks(rates.len());
    for setup in setups {
        let mut baseline = 0.0f64;
        for n in NS {
            let best = best_under_slo(chunks.next().expect("grid chunk"));
            if n == 3 {
                baseline = best;
            }
            let delta = 100.0 * (best / baseline - 1.0);
            let _ = writeln!(
                out,
                "{:14} {:>3} {:>15.0}  ({:+.1}% vs N=3)",
                setup.label(),
                n,
                best / 1_000.0,
                delta
            );
        }
    }
    out
}
