//! Figure 7: 99th-percentile latency vs throughput for a fixed S = 1µs
//! service with 24-byte requests and 8-byte replies on a 3-node cluster,
//! with reply load balancing explicitly disabled (§7.1).

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, Setup};

use crate::sweep::{Figure, Sweep};
use crate::{grid, with_windows, write_banner, write_point};

/// Figure 7 — latency vs throughput, four setups.
pub const FIG: Figure = Figure {
    name: "fig7_latency_throughput",
    run,
};

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Figure 7 — latency vs throughput, S=1us, 24B req / 8B reply, N=3",
        "all four setups reach close to 1M RPS under the 500us SLO; the \
         fault-tolerant setups carry a small constant latency offset over \
         UnRep (one extra consensus round trip)",
    );
    let rates = grid(vec![
        50_000.0, 200_000.0, 400_000.0, 600_000.0, 700_000.0, 800_000.0, 850_000.0, 876_000.0,
        900_000.0, 950_000.0,
    ]);
    let setups = [
        Setup::Unrep,
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ];
    let jobs: Vec<ClusterOpts> = setups
        .iter()
        .flat_map(|&setup| {
            rates.iter().map(move |&rate| {
                let mut o = with_windows(ClusterOpts::new(setup, 3, rate));
                o.lb_replies = Some(false); // §7.1: focus on protocol overheads
                o
            })
        })
        .collect();
    let results = sw.map(jobs, run_experiment);
    for (setup, points) in setups.iter().zip(results.chunks(rates.len())) {
        let _ = writeln!(out, "--- {} ---", setup.label());
        for r in points {
            write_point(&mut out, setup.label(), r);
        }
    }
    out
}
