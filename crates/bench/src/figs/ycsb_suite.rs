//! Extension: the broader YCSB suite (A–E) through the full HovercRaft++
//! stack. The paper evaluates workload E; this bin shows how the benefit
//! tracks the read-only fraction across the standard workloads — C (100 %
//! reads) load-balances perfectly, A (50 % updates) is bound by full-SMR
//! execution.

use std::fmt::Write as _;

use hovercraft::PolicyKind;
use testbed::{run_experiment, ClusterOpts, ServiceKind, Setup, WorkloadKind};
use workload::YcsbWorkload;

use crate::sweep::{Figure, Sweep};
use crate::{best_under_slo, grid, with_windows, write_banner};

/// Extension — YCSB A–E, UnRep vs HovercRaft++ N=5.
pub const FIG: Figure = Figure {
    name: "ycsb_suite",
    run,
};

const WORKLOADS: [(YcsbWorkload, &str); 5] = [
    (YcsbWorkload::A, "A 50%upd"),
    (YcsbWorkload::B, "B 5%upd"),
    (YcsbWorkload::C, "C reads"),
    (YcsbWorkload::D, "D latest"),
    (YcsbWorkload::E, "E scans"),
];

fn opts(wl: YcsbWorkload, setup: Setup, n: u32, rate: f64) -> ClusterOpts {
    let mut o = with_windows(ClusterOpts::new(setup, n, rate));
    o.service = ServiceKind::Kv;
    o.workload = WorkloadKind::Ycsb {
        workload: wl,
        records: 10_000,
    };
    o.bound = 64;
    o
}

fn run(sw: &Sweep<'_, '_, '_>) -> String {
    let mut out = String::new();
    write_banner(
        &mut out,
        "Extension — YCSB A/B/C/D/E on the KV store, UnRep vs HovercRaft++ N=5",
        "the speedup from replication tracks the load-balanceable (read-only) \
         fraction: ~1x for update-heavy A, approaching N for read-only C",
    );
    let _ = writeln!(
        out,
        "{:10} {:>14} {:>14} {:>9}",
        "workload", "UnRep kRPS", "HC++ N=5 kRPS", "speedup"
    );
    // Phase 1 — every workload's unreplicated sweep, one flat job grid.
    // Point reads/updates are much cheaper than E's scans: sweep wide.
    let unrep_rates = grid(vec![
        20_000.0, 40_000.0, 80_000.0, 120_000.0, 160_000.0, 200_000.0,
    ]);
    let unrep_jobs: Vec<ClusterOpts> = WORKLOADS
        .iter()
        .flat_map(|&(wl, _)| {
            unrep_rates
                .iter()
                .map(move |&rate| opts(wl, Setup::Unrep, 1, rate))
        })
        .collect();
    let unrep_results = sw.map(unrep_jobs, run_experiment);
    let unrep_best: Vec<f64> = unrep_results
        .chunks(unrep_rates.len())
        .map(best_under_slo)
        .collect();
    // Phase 2 — HC++ ladders, anchored per workload on the measured
    // unreplicated knee. Replication can help by at most ~N and never by
    // less than ~0.8x.
    const LADDER: [f64; 7] = [0.8, 1.2, 1.8, 2.5, 3.3, 4.2, 5.2];
    let hc_jobs: Vec<ClusterOpts> = WORKLOADS
        .iter()
        .zip(&unrep_best)
        .flat_map(|(&(wl, _), &unrep)| {
            LADDER.iter().map(move |m| {
                opts(
                    wl,
                    Setup::HovercraftPp(PolicyKind::Jbsq),
                    5,
                    m * unrep.max(10_000.0),
                )
            })
        })
        .collect();
    let hc_results = sw.map(hc_jobs, run_experiment);
    let hc_best: Vec<f64> = hc_results
        .chunks(LADDER.len())
        .map(best_under_slo)
        .collect();
    for (((_, label), unrep), hc) in WORKLOADS.iter().zip(&unrep_best).zip(&hc_best) {
        let _ = writeln!(
            out,
            "{label:10} {:>14.1} {:>14.1} {:>8.2}x",
            unrep / 1e3,
            hc / 1e3,
            hc / unrep.max(1.0)
        );
    }
    out
}
