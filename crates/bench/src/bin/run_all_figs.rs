//! Suite driver: runs every figure/table with cross-figure *and*
//! within-figure parallelism on one shared work-stealing pool, writing
//! `results/<name>.txt` per figure — byte-identical to running each
//! binary serially — and recording suite wall-clock in `BENCH_sim.json`.
//!
//! Usage:
//!
//! ```text
//! run_all_figs [--results DIR] [--bench-out PATH] [--compare-serial]
//!              [--profile] [--gate] [--gate-parity] [--list] [FIGURE ...]
//! ```
//!
//! * `HC_JOBS=N` sets the sharding job count (default: all cores; `1` =
//!   exact serial execution). The pool never runs more concurrent worlds
//!   than cores, whatever `HC_JOBS` says. `HC_FAST=1` shortens every
//!   figure (CI smoke).
//! * `--compare-serial` also runs the whole suite with `HC_JOBS=1`
//!   semantics and verifies every figure's output is **byte-identical**
//!   to the parallel run, recording both wall-times. The serial pass runs
//!   *first* so the measured parallel pass sees the same warmed process
//!   (page cache, heated allocator arenas) the serial pass enjoyed — with
//!   parallel first, serial inherits the warm-up for free and the
//!   comparison is biased against parallel.
//! * `--profile` collects the vendored profiling counters — per-executor
//!   pool stats (tasks, queue-hit classes, parks, lock-wait) and
//!   per-world simulator stats (tracer lock acquisitions, scheduler ops,
//!   allocator traffic) — prints them, and merges `pool_stats_*` /
//!   `sim_stats_*` keys into the bench JSON.
//! * `--bench-out PATH` merges `suite_*` (and profile) keys into the flat
//!   BENCH JSON at PATH, preserving every key it doesn't own.
//! * `--gate` exits non-zero if any figure failed, if the serial/parallel
//!   outputs differ, or — on a ≥4-core runner with ≥4 workers — if the
//!   parallel suite is not at least `HC_GATE_MIN_SPEEDUP`× (default 3×)
//!   faster than the serial pass.
//! * `--gate-parity` (implies `--compare-serial`) exits non-zero if the
//!   parallel suite is slower than `HC_GATE_PARITY`× serial (default
//!   1.05) — the tripwire for "parallelism costs wall-clock", which holds
//!   on *any* core count because executors are capped at cores.
//! * Both gates are defined on measurement-quality runs: under `HC_FAST=1`
//!   they refuse to run unless `HC_GATE_ALLOW_FAST=1` downgrades their
//!   timing assertions to warnings (byte-equality is always enforced).
//!
//! Exit status: `0` all green; `1` a figure failed (first failure is
//! propagated — the shell wrapper `run_figs.sh` forwards it) or a gate
//! check failed; `2` bad usage (including a gate invoked under HC_FAST
//! without `HC_GATE_ALLOW_FAST=1`).

use std::time::Instant;

use hovercraft_bench::bench_json;
use hovercraft_bench::figs;
use hovercraft_bench::sweep::{self, fnv1a64, sim_profile, try_render, Figure, Sweep};
use pool::{Pool, PoolStats};

// Light up the per-thread allocator counters (`sim_stats_alloc_*` under
// --profile). One thread-local increment per allocation; the
// sim_throughput events/sec gate bounds the cost.
#[global_allocator]
static ALLOC: simnet::CountingAlloc = simnet::CountingAlloc;

/// Outcome of one figure render.
type FigResult = Result<String, String>;

/// Runs the given figures with `jobs`-way sharding: one shared pool
/// schedules across figures, and each figure's inner sweeps nest on the
/// same workers. `jobs <= 1` is the exact serial path (no pool at all,
/// and no pool stats).
fn run_suite(
    figures: &[Figure],
    jobs: usize,
    profile: bool,
) -> (Vec<FigResult>, Option<PoolStats>) {
    if jobs <= 1 {
        let outs = figures
            .iter()
            .map(|f| try_render(f, &Sweep::SERIAL))
            .collect();
        return (outs, None);
    }
    let pool = Pool::new(jobs);
    let body = |s: &pool::Scope<'_, '_>| {
        s.join_map(figures.to_vec(), |sc, _, fig| {
            try_render(&fig, &Sweep::pooled(sc))
        })
    };
    if profile {
        let (outs, stats) = pool.scope_profiled(body);
        (outs, Some(stats))
    } else {
        (pool.scope(body), None)
    }
}

/// Combined FNV-1a digest over (name, output) of every figure, in suite
/// order — the fingerprint compared between serial and parallel runs.
fn suite_digest(figures: &[Figure], outputs: &[FigResult]) -> u64 {
    use std::fmt::Write as _;
    let mut blob = String::new();
    for (f, out) in figures.iter().zip(outputs) {
        let _ = write!(blob, "{}\0", f.name);
        match out {
            Ok(s) => blob.push_str(s),
            Err(e) => {
                let _ = write!(blob, "PANIC: {e}");
            }
        }
        blob.push('\0');
    }
    fnv1a64(blob.as_bytes())
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_is_1(key: &str) -> bool {
    std::env::var(key).map(|v| v == "1").unwrap_or(false)
}

fn usage() -> ! {
    eprintln!(
        "usage: run_all_figs [--results DIR] [--bench-out PATH] [--compare-serial] \
         [--profile] [--gate] [--gate-parity] [--list] [FIGURE ...]"
    );
    std::process::exit(2);
}

fn main() {
    let mut results_dir = String::from("results");
    let mut bench_out: Option<String> = None;
    let mut compare_serial = false;
    let mut profile = false;
    let mut gate = false;
    let mut gate_parity = false;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--results" => results_dir = args.next().unwrap_or_else(|| usage()),
            "--bench-out" => bench_out = Some(args.next().unwrap_or_else(|| usage())),
            "--compare-serial" => compare_serial = true,
            "--profile" => profile = true,
            "--gate" => gate = true,
            "--gate-parity" => {
                gate_parity = true;
                compare_serial = true;
            }
            "--list" => {
                for f in figs::all() {
                    println!("{}", f.name);
                }
                return;
            }
            other if !other.starts_with('-') => names.push(other.to_string()),
            _ => usage(),
        }
    }
    let figures: Vec<Figure> = if names.is_empty() {
        figs::all()
    } else {
        names
            .iter()
            .map(|n| {
                figs::by_name(n).unwrap_or_else(|| {
                    eprintln!("unknown figure: {n} (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let fast = hovercraft_bench::fast();
    let gate_allow_fast = env_is_1("HC_GATE_ALLOW_FAST");
    // Timing gates are contracts about measurement-quality runs; asserting
    // them on smoke windows produces flaky nonsense in both directions.
    let gates_warn_only = if (gate || gate_parity) && fast {
        if !gate_allow_fast {
            eprintln!(
                "error: --gate/--gate-parity under HC_FAST=1 would assert timing targets \
                 on smoke windows. Unset HC_FAST for a measurement run, or set \
                 HC_GATE_ALLOW_FAST=1 to downgrade the timing checks to warnings \
                 (output byte-equality is enforced either way)."
            );
            std::process::exit(2);
        }
        println!("note: HC_FAST=1 + HC_GATE_ALLOW_FAST=1 — timing gates report as warnings only");
        true
    } else {
        false
    };

    let jobs = sweep::jobs();
    let cores = pool::available_cores();
    println!(
        "== run_all_figs: {} figures, {} jobs on {} cores ({} executors){} ==",
        figures.len(),
        jobs,
        cores,
        Pool::new(jobs).executors(),
        if fast { ", HC_FAST=1" } else { "" }
    );

    // Serial pass first (when requested) so the measured parallel pass
    // runs in an equally warm process — see the module docs.
    let mut serial: Option<(Vec<FigResult>, f64, u64)> = None;
    if compare_serial {
        println!("-- serial pass (HC_JOBS=1 semantics) for byte-equality + speedup --");
        let t1 = Instant::now();
        let (serial_outputs, _) = run_suite(&figures, 1, false);
        let wall_ser = t1.elapsed().as_secs_f64();
        let digest_ser = suite_digest(&figures, &serial_outputs);
        println!("serial wall-clock: {wall_ser:.2}s (digest {digest_ser:#018x})");
        serial = Some((serial_outputs, wall_ser, digest_ser));
    }

    if profile {
        sim_profile::enable();
    }
    let t0 = Instant::now();
    let (outputs, pool_stats) = run_suite(&figures, jobs, profile);
    let wall_par = t0.elapsed().as_secs_f64();
    let digest_par = suite_digest(&figures, &outputs);
    let sim_stats = profile.then(sim_profile::totals);

    std::fs::create_dir_all(&results_dir).expect("create results dir");
    let mut failures: Vec<String> = Vec::new();
    for (f, out) in figures.iter().zip(&outputs) {
        let path = format!("{results_dir}/{}.txt", f.name);
        match out {
            Ok(s) => {
                std::fs::write(&path, s).expect("write figure output");
                println!("=== done {} ({} bytes) ===", f.name, s.len());
            }
            Err(e) => {
                std::fs::write(&path, format!("PANIC: {e}\n")).expect("write figure output");
                println!("=== FAILED {}: {e} ===", f.name);
                failures.push(f.name.to_string());
            }
        }
    }
    println!("suite wall-clock: {wall_par:.2}s with {jobs} jobs (digest {digest_par:#018x})");

    if let Some((serial_outputs, wall_ser, digest_ser)) = &serial {
        for (f, (p, s)) in figures.iter().zip(outputs.iter().zip(serial_outputs)) {
            if p != s {
                failures.push(format!("{} (serial/parallel outputs differ)", f.name));
                println!(
                    "=== MISMATCH {}: serial and parallel outputs differ ===",
                    f.name
                );
            }
        }
        println!(
            "serial {wall_ser:.2}s vs parallel {wall_par:.2}s — speedup {:.2}x",
            wall_ser / wall_par.max(1e-9)
        );
        if *digest_ser != digest_par {
            failures.push("suite digest (serial vs parallel)".to_string());
        }
    }

    if let Some(stats) = &pool_stats {
        print!("{}", stats.render());
    }
    if let Some(sim) = &sim_stats {
        println!(
            "sim: {} jobs, {} sched ops, {} wheel cascades, {} tracer locks, {:.1} MB in {} allocs",
            sim.tasks,
            sim.sched_ops,
            sim.wheel_cascades,
            sim.tracer_locks,
            sim.alloc_bytes as f64 / 1e6,
            sim.alloc_calls,
        );
    }

    if let Some(path) = &bench_out {
        let mut updates: Vec<(String, String)> = vec![
            ("suite_jobs".into(), jobs.to_string()),
            ("suite_cores".into(), cores.to_string()),
            ("suite_figures".into(), figures.len().to_string()),
            ("suite_fast".into(), fast.to_string()),
            ("suite_wall_s_parallel".into(), format!("{wall_par:.6}")),
            (
                "suite_output_digest".into(),
                format!("\"{digest_par:#018x}\""),
            ),
        ];
        if let Some((_, wall_ser, digest_ser)) = &serial {
            updates.push(("suite_wall_s_serial".into(), format!("{wall_ser:.6}")));
            updates.push((
                "suite_output_digest_serial".into(),
                format!("\"{digest_ser:#018x}\""),
            ));
        }
        if let Some(stats) = &pool_stats {
            let t = stats.totals();
            for (k, v) in [
                ("pool_stats_spawned", stats.spawned as u64),
                ("pool_stats_tasks", t.tasks_run),
                ("pool_stats_local_hits", t.local_hits),
                ("pool_stats_injector_hits", t.injector_hits),
                ("pool_stats_steals", t.steals),
                ("pool_stats_parks", t.parks),
                ("pool_stats_notifies", stats.notifies),
                ("pool_stats_injector_pushes", stats.injector_pushes),
                ("pool_stats_deque_pushes", stats.deque_pushes),
            ] {
                updates.push((k.into(), v.to_string()));
            }
            updates.push((
                "pool_stats_lock_wait_ms".into(),
                format!("{:.3}", t.lock_wait_ns as f64 / 1e6),
            ));
            updates.push((
                "pool_stats_busy_s".into(),
                format!("{:.3}", t.busy_ns as f64 / 1e9),
            ));
        }
        if let Some(sim) = &sim_stats {
            for (k, v) in [
                ("sim_stats_jobs", sim.tasks),
                ("sim_stats_sched_ops", sim.sched_ops),
                ("sim_stats_tracer_locks", sim.tracer_locks),
                ("sim_stats_alloc_calls", sim.alloc_calls),
                ("sim_stats_alloc_bytes", sim.alloc_bytes),
                ("sim_stats_wheel_cascades", sim.wheel_cascades),
            ] {
                updates.push((k.into(), v.to_string()));
            }
        }
        bench_json::merge_file(path, &updates).expect("merge bench json");
        println!("suite keys merged into {path}");
    }

    let mut gate_failure = |msg: String| {
        if gates_warn_only {
            println!("WARN (HC_FAST): {msg}");
        } else {
            failures.push(msg);
        }
    };
    if let Some((_, wall_ser, _)) = &serial {
        let speedup = wall_ser / wall_par.max(1e-9);
        if gate {
            let min_speedup = env_f64("HC_GATE_MIN_SPEEDUP", 3.0);
            // The ≥3× acceptance target is defined on a ≥4-core runner
            // with ≥4 jobs; on smaller machines only the byte-equality
            // half of the gate applies (executors are capped at cores, so
            // real speedup is structurally impossible there).
            if cores >= 4 && jobs >= 4 {
                if speedup < min_speedup {
                    gate_failure(format!(
                        "suite speedup {speedup:.2}x < required {min_speedup:.2}x \
                         ({jobs} jobs on {cores} cores)"
                    ));
                } else {
                    println!("speedup gate: {speedup:.2}x >= {min_speedup:.2}x — ok");
                }
            } else {
                println!(
                    "speedup gate skipped: {cores} cores / {jobs} jobs \
                     (requires >= 4 of each); byte-equality still enforced"
                );
            }
        }
        if gate_parity {
            // Parallel must never cost wall-clock, on any machine: the
            // executor cap means worst case is serial plus noise.
            let parity = env_f64("HC_GATE_PARITY", 1.05);
            if wall_par > wall_ser * parity {
                gate_failure(format!(
                    "parity gate: parallel {wall_par:.2}s > serial {wall_ser:.2}s x {parity:.2} \
                     — parallelism is costing wall-clock again"
                ));
            } else {
                println!(
                    "parity gate: parallel {wall_par:.2}s <= serial {wall_ser:.2}s x {parity:.2} — ok"
                );
            }
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("ALL-FIGURES-DONE");
}
