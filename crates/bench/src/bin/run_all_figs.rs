//! Suite driver: runs every figure/table with cross-figure *and*
//! within-figure parallelism on one shared work-stealing pool, writing
//! `results/<name>.txt` per figure — byte-identical to running each
//! binary serially — and recording suite wall-clock in `BENCH_sim.json`.
//!
//! Usage:
//!
//! ```text
//! run_all_figs [--results DIR] [--bench-out PATH] [--compare-serial]
//!              [--gate] [--list] [FIGURE ...]
//! ```
//!
//! * `HC_JOBS=N` sets the worker count (default: all cores; `1` = exact
//!   serial execution). `HC_FAST=1` shortens every figure (CI smoke).
//! * `--compare-serial` reruns the whole suite with `HC_JOBS=1` semantics
//!   and verifies every figure's output is **byte-identical** to the
//!   parallel run, recording both wall-times.
//! * `--bench-out PATH` merges `suite_*` keys into the flat BENCH JSON at
//!   PATH (preserving keys written by `sim_throughput`).
//! * `--gate` exits non-zero if any figure failed, if the serial/parallel
//!   outputs differ, or — on a ≥4-core runner with ≥4 workers — if the
//!   parallel suite is not at least `HC_GATE_MIN_SPEEDUP`× (default 3×)
//!   faster than the serial rerun.
//!
//! Exit status: `0` all green; `1` a figure failed (first failure is
//! propagated — the shell wrapper `run_figs.sh` forwards it) or a gate
//! check failed; `2` bad usage.

use std::fmt::Write as _;
use std::time::Instant;

use hovercraft_bench::figs;
use hovercraft_bench::sweep::{self, fnv1a64, try_render, Figure, Sweep};
use pool::Pool;

/// Outcome of one figure render.
type FigResult = Result<String, String>;

/// Runs the given figures with `jobs` workers: one shared pool schedules
/// across figures, and each figure's inner sweeps nest on the same
/// workers. `jobs <= 1` is the exact serial path (no pool at all).
fn run_suite(figures: &[Figure], jobs: usize) -> Vec<FigResult> {
    if jobs <= 1 {
        return figures
            .iter()
            .map(|f| try_render(f, &Sweep::SERIAL))
            .collect();
    }
    Pool::new(jobs).scope(|s| {
        s.join_map(figures.to_vec(), |sc, _, fig| {
            try_render(&fig, &Sweep::pooled(sc))
        })
    })
}

/// Combined FNV-1a digest over (name, output) of every figure, in suite
/// order — the fingerprint compared between serial and parallel runs.
fn suite_digest(figures: &[Figure], outputs: &[FigResult]) -> u64 {
    let mut blob = String::new();
    for (f, out) in figures.iter().zip(outputs) {
        let _ = write!(blob, "{}\0", f.name);
        match out {
            Ok(s) => blob.push_str(s),
            Err(e) => {
                let _ = write!(blob, "PANIC: {e}");
            }
        }
        blob.push('\0');
    }
    fnv1a64(blob.as_bytes())
}

/// Merges `(key, value)` pairs into a flat one-pair-per-line JSON file
/// (the `BENCH_sim.json` format written by `sim_throughput`), replacing
/// existing keys in place and appending new ones before the closing
/// brace. Values are written verbatim (pre-formatted).
fn merge_bench_json(path: &str, updates: &[(String, String)]) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let mut keys: Vec<(String, String)> = Vec::new();
    for line in existing.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((key, val)) = rest.split_once("\":") {
                keys.push((
                    key.to_string(),
                    val.trim().trim_end_matches(',').to_string(),
                ));
            }
        }
    }
    for (k, v) in updates {
        if let Some(slot) = keys.iter_mut().find(|(key, _)| key == k) {
            slot.1 = v.clone();
        } else {
            keys.push((k.clone(), v.clone()));
        }
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in keys.iter().enumerate() {
        let comma = if i + 1 == keys.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{k}\": {v}{comma}");
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn usage() -> ! {
    eprintln!(
        "usage: run_all_figs [--results DIR] [--bench-out PATH] \
         [--compare-serial] [--gate] [--list] [FIGURE ...]"
    );
    std::process::exit(2);
}

fn main() {
    let mut results_dir = String::from("results");
    let mut bench_out: Option<String> = None;
    let mut compare_serial = false;
    let mut gate = false;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--results" => results_dir = args.next().unwrap_or_else(|| usage()),
            "--bench-out" => bench_out = Some(args.next().unwrap_or_else(|| usage())),
            "--compare-serial" => compare_serial = true,
            "--gate" => gate = true,
            "--list" => {
                for f in figs::all() {
                    println!("{}", f.name);
                }
                return;
            }
            other if !other.starts_with('-') => names.push(other.to_string()),
            _ => usage(),
        }
    }
    let figures: Vec<Figure> = if names.is_empty() {
        figs::all()
    } else {
        names
            .iter()
            .map(|n| {
                figs::by_name(n).unwrap_or_else(|| {
                    eprintln!("unknown figure: {n} (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let jobs = sweep::jobs();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "== run_all_figs: {} figures, {} workers ({} cores){} ==",
        figures.len(),
        jobs,
        cores,
        if hovercraft_bench::fast() {
            ", HC_FAST=1"
        } else {
            ""
        }
    );

    let t0 = Instant::now();
    let outputs = run_suite(&figures, jobs);
    let wall_par = t0.elapsed().as_secs_f64();
    let digest_par = suite_digest(&figures, &outputs);

    std::fs::create_dir_all(&results_dir).expect("create results dir");
    let mut failures: Vec<String> = Vec::new();
    for (f, out) in figures.iter().zip(&outputs) {
        let path = format!("{results_dir}/{}.txt", f.name);
        match out {
            Ok(s) => {
                std::fs::write(&path, s).expect("write figure output");
                println!("=== done {} ({} bytes) ===", f.name, s.len());
            }
            Err(e) => {
                std::fs::write(&path, format!("PANIC: {e}\n")).expect("write figure output");
                println!("=== FAILED {}: {e} ===", f.name);
                failures.push(f.name.to_string());
            }
        }
    }
    println!("suite wall-clock: {wall_par:.2}s with {jobs} workers (digest {digest_par:#018x})");

    let mut serial: Option<(f64, u64)> = None;
    if compare_serial {
        println!("-- serial rerun (HC_JOBS=1 semantics) for byte-equality + speedup --");
        let t1 = Instant::now();
        let serial_outputs = run_suite(&figures, 1);
        let wall_ser = t1.elapsed().as_secs_f64();
        let digest_ser = suite_digest(&figures, &serial_outputs);
        for (f, (p, s)) in figures.iter().zip(outputs.iter().zip(&serial_outputs)) {
            if p != s {
                failures.push(format!("{} (serial/parallel outputs differ)", f.name));
                println!(
                    "=== MISMATCH {}: serial and parallel outputs differ ===",
                    f.name
                );
            }
        }
        println!(
            "serial wall-clock: {wall_ser:.2}s (digest {digest_ser:#018x}) — speedup {:.2}x",
            wall_ser / wall_par.max(1e-9)
        );
        if digest_ser != digest_par {
            failures.push("suite digest (serial vs parallel)".to_string());
        }
        serial = Some((wall_ser, digest_ser));
    }

    if let Some(path) = &bench_out {
        let mut updates: Vec<(String, String)> = vec![
            ("suite_jobs".into(), jobs.to_string()),
            ("suite_figures".into(), figures.len().to_string()),
            ("suite_fast".into(), hovercraft_bench::fast().to_string()),
            ("suite_wall_s_parallel".into(), format!("{wall_par:.6}")),
            (
                "suite_output_digest".into(),
                format!("\"{digest_par:#018x}\""),
            ),
        ];
        if let Some((wall_ser, digest_ser)) = serial {
            updates.push(("suite_wall_s_serial".into(), format!("{wall_ser:.6}")));
            updates.push((
                "suite_output_digest_serial".into(),
                format!("\"{digest_ser:#018x}\""),
            ));
        }
        merge_bench_json(path, &updates).expect("merge bench json");
        println!("suite keys merged into {path}");
    }

    if gate {
        if let Some((wall_ser, _)) = serial {
            let min_speedup: f64 = std::env::var("HC_GATE_MIN_SPEEDUP")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(3.0);
            // The ≥3× acceptance target is defined on a ≥4-core runner
            // with ≥4 workers; on smaller machines (or oversubscribed
            // HC_JOBS) only the byte-equality half of the gate applies.
            if cores >= 4 && jobs >= 4 {
                let speedup = wall_ser / wall_par.max(1e-9);
                if speedup < min_speedup {
                    failures.push(format!(
                        "suite speedup {speedup:.2}x < required {min_speedup:.2}x \
                         ({jobs} workers on {cores} cores)"
                    ));
                } else {
                    println!("speedup gate: {speedup:.2}x >= {min_speedup:.2}x — ok");
                }
            } else {
                println!(
                    "speedup gate skipped: {cores} cores / {jobs} workers \
                     (requires >= 4 of each); byte-equality still enforced"
                );
            }
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("ALL-FIGURES-DONE");
}
