//! Ablation: the individual contribution of each HovercRaft mechanism.
//!
//! Runs the Figure 11 workload with reply load balancing and read-only
//! load balancing toggled independently, quantifying how much of the
//! capacity gain each mechanism delivers (§3.3 vs §3.5).

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, max_under_slo, with_windows};
use testbed::{ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

fn main() {
    banner(
        "Ablation — mechanism contributions (bimodal 10us, 75% RO, N=3, under 500us SLO)",
        "read-only LB is the big CPU win on this workload; reply LB matters \
         for IO-bound shapes (Fig. 10); together they give the full gain",
    );
    let rates: Vec<f64> = (1..=12).map(|i| i as f64 * 15_000.0).collect();
    println!(
        "{:>10} {:>8} {:>20}",
        "reply-LB", "ro-LB", "max kRPS under SLO"
    );
    for (lb_replies, lb_reads) in [(false, false), (true, false), (false, true), (true, true)] {
        let (best, _) = max_under_slo(&rates, |rate| {
            let mut o = with_windows(ClusterOpts::new(
                Setup::HovercraftPp(PolicyKind::Jbsq),
                3,
                rate,
            ));
            o.workload = WorkloadKind::Synth(SynthSpec {
                dist: ServiceDist::Bimodal {
                    mean_ns: 10_000,
                    frac_long: 0.1,
                    mult: 10,
                },
                req_size: 24,
                reply_size: 8,
                ro_fraction: 0.75,
            });
            o.bound = 32;
            o.lb_replies = Some(lb_replies);
            o.lb_reads = Some(lb_reads);
            o
        });
        println!(
            "{:>10} {:>8} {:>17.0}",
            lb_replies,
            lb_reads,
            best / 1_000.0
        );
    }
}
