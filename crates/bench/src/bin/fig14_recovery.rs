//! Thin wrapper: renders `Figure 14` via the shared figure registry (see
//! `hovercraft_bench::figs`), honoring `HC_JOBS` for parallel sweeps.

fn main() {
    hovercraft_bench::sweep::figure_main(&hovercraft_bench::figs::fig14::FIG);
}
