//! Figure 10: latency vs throughput with 6 kB replies (§7.3). The
//! unreplicated server is IO-bound at ~200 kRPS (one 10G link); HovercRaft++
//! load-balances replies across all replicas for a ~N× capacity gain —
//! replication *improving* performance.

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, grid, print_point, with_windows};
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

fn main() {
    banner(
        "Figure 10 — latency vs throughput, 6kB replies, reply LB on (S=1us, 24B req)",
        "UnRep hits the 10G reply-bandwidth wall at ~200 kRPS; 3 and 5 node \
         HovercRaft++ clusters scale reply capacity ~3x and ~5x",
    );
    let wl = || {
        WorkloadKind::Synth(SynthSpec {
            dist: ServiceDist::Fixed { ns: 1_000 },
            req_size: 24,
            reply_size: 6_000,
            ro_fraction: 0.0,
        })
    };
    // UnRep.
    println!("--- UnRep (N=1) ---");
    for rate in grid(vec![
        50_000.0, 100_000.0, 150_000.0, 180_000.0, 195_000.0, 210_000.0,
    ]) {
        let mut o = with_windows(ClusterOpts::new(Setup::Unrep, 1, rate));
        o.workload = wl();
        let r = run_experiment(o);
        print_point("UnRep", &r);
    }
    for n in [3u32, 5] {
        println!("--- HovercRaft++ N={n} ---");
        let max = 195_000.0 * n as f64;
        let rates = grid(vec![
            max * 0.3,
            max * 0.5,
            max * 0.7,
            max * 0.85,
            max * 0.95,
            max * 1.05,
        ]);
        for rate in rates {
            let mut o = with_windows(ClusterOpts::new(
                Setup::HovercraftPp(PolicyKind::Jbsq),
                n,
                rate,
            ));
            o.workload = wl();
            o.bound = 128;
            let r = run_experiment(o);
            print_point(&format!("HC++ N={n}"), &r);
        }
    }
}
