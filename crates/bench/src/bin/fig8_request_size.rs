//! Figure 8: achieved throughput under the 500µs SLO as a function of the
//! client request size (§7.1). HovercRaft separates replication from
//! ordering, so its cost is independent of request size; VanillaRaft pays
//! for every payload byte twice at the leader.

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, grid, max_under_slo, with_windows};
use testbed::{ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

fn main() {
    banner(
        "Figure 8 — max kRPS under 500us SLO vs request size (S=1us, 8B replies, N=3)",
        "VanillaRaft loses ~2% at 64B and ~48% at 512B vs its 24B baseline; \
         HovercRaft and HovercRaft++ are unaffected by request size",
    );
    let rates = grid(vec![
        300_000.0, 400_000.0, 500_000.0, 600_000.0, 700_000.0, 800_000.0, 850_000.0, 876_000.0,
    ]);
    println!("{:14} {:>6} {:>18}", "setup", "reqB", "max kRPS under SLO");
    let mut baseline = std::collections::HashMap::new();
    for setup in [
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ] {
        for req in [24usize, 64, 512] {
            let (best, _) = max_under_slo(&rates, |rate| {
                let mut o = with_windows(ClusterOpts::new(setup, 3, rate));
                o.lb_replies = Some(false);
                o.workload = WorkloadKind::Synth(SynthSpec {
                    dist: ServiceDist::Fixed { ns: 1_000 },
                    req_size: req,
                    reply_size: 8,
                    ro_fraction: 0.0,
                });
                o
            });
            if req == 24 {
                baseline.insert(setup.label(), best);
            }
            let delta = 100.0 * (best / baseline[setup.label()] - 1.0);
            println!(
                "{:14} {:>6} {:>15.0}  ({:+.1}% vs 24B)",
                setup.label(),
                req,
                best / 1_000.0,
                delta
            );
        }
    }
}
