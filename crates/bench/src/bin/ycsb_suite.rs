//! Extension: the broader YCSB suite (A–E) through the full HovercRaft++
//! stack. The paper evaluates workload E; this bin shows how the benefit
//! tracks the read-only fraction across the standard workloads — C (100 %
//! reads) load-balances perfectly, A (50 % updates) is bound by full-SMR
//! execution.

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, grid, max_under_slo, with_windows};
use testbed::{ClusterOpts, ServiceKind, Setup, WorkloadKind};
use workload::YcsbWorkload;

fn main() {
    banner(
        "Extension — YCSB A/B/C/D/E on the KV store, UnRep vs HovercRaft++ N=5",
        "the speedup from replication tracks the load-balanceable (read-only) \
         fraction: ~1x for update-heavy A, approaching N for read-only C",
    );
    println!(
        "{:10} {:>14} {:>14} {:>9}",
        "workload", "UnRep kRPS", "HC++ N=5 kRPS", "speedup"
    );
    for (wl, label) in [
        (YcsbWorkload::A, "A 50%upd"),
        (YcsbWorkload::B, "B 5%upd"),
        (YcsbWorkload::C, "C reads"),
        (YcsbWorkload::D, "D latest"),
        (YcsbWorkload::E, "E scans"),
    ] {
        let mk = |setup: Setup, n: u32| {
            move |rate: f64| {
                let mut o = with_windows(ClusterOpts::new(setup, n, rate));
                o.service = ServiceKind::Kv;
                o.workload = WorkloadKind::Ycsb {
                    workload: wl,
                    records: 10_000,
                };
                o.bound = 64;
                o
            }
        };
        // Point reads/updates are much cheaper than E's scans: sweep wide.
        let unrep_rates = grid(vec![
            20_000.0, 40_000.0, 80_000.0, 120_000.0, 160_000.0, 200_000.0,
        ]);
        let (unrep, _) = max_under_slo(&unrep_rates, mk(Setup::Unrep, 1));
        // Replication can help by at most ~N and never by less than ~0.8x:
        // ladder the HC++ sweep off the measured unreplicated knee.
        let hc_rates: Vec<f64> = [0.8, 1.2, 1.8, 2.5, 3.3, 4.2, 5.2]
            .iter()
            .map(|m| m * unrep.max(10_000.0))
            .collect();
        let (hc, _) = max_under_slo(&hc_rates, mk(Setup::HovercraftPp(PolicyKind::Jbsq), 5));
        println!(
            "{label:10} {:>14.1} {:>14.1} {:>8.2}x",
            unrep / 1e3,
            hc / 1e3,
            hc / unrep.max(1.0)
        );
    }
}
