//! Developer tool: sweeps the Figure 8 parameter space to sanity-check the
//! testbed calibration (request-size sensitivity of each setup). Not one of
//! the paper's figures — kept as the quickest end-to-end health probe of
//! the performance model.

use hovercraft::PolicyKind;
use simnet::SimDur;
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

fn main() {
    // Request-size sensitivity (Figure 8 shape check).
    for setup in [
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ] {
        for req in [24usize, 64, 512] {
            let mut best = 0.0f64;
            for rate in [
                400_000.0, 500_000.0, 600_000.0, 700_000.0, 800_000.0, 850_000.0, 880_000.0,
            ] {
                let mut o = ClusterOpts::new(setup, 3, rate);
                o.warmup = SimDur::millis(50);
                o.measure = SimDur::millis(200);
                o.lb_replies = Some(false);
                o.clients = 4;
                o.workload = WorkloadKind::Synth(SynthSpec {
                    dist: ServiceDist::Fixed { ns: 1000 },
                    req_size: req,
                    reply_size: 8,
                    ro_fraction: 0.0,
                });
                let r = run_experiment(o);
                if r.meets_slo(500_000) {
                    best = best.max(r.achieved_rps);
                }
            }
            println!(
                "{:14} req {:>4}B  max-under-SLO {:>9.0}",
                setup.label(),
                req,
                best
            );
        }
    }
}
