//! Thin wrapper: renders `the calibration probe` via the shared figure registry (see
//! `hovercraft_bench::figs`), honoring `HC_JOBS` for parallel sweeps.

fn main() {
    hovercraft_bench::sweep::figure_main(&hovercraft_bench::figs::calibrate::FIG);
}
