//! Figure 7: 99th-percentile latency vs throughput for a fixed S = 1µs
//! service with 24-byte requests and 8-byte replies on a 3-node cluster,
//! with reply load balancing explicitly disabled (§7.1).

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, grid, print_point, with_windows};
use testbed::{run_experiment, ClusterOpts, Setup};

fn main() {
    banner(
        "Figure 7 — latency vs throughput, S=1us, 24B req / 8B reply, N=3",
        "all four setups reach close to 1M RPS under the 500us SLO; the \
         fault-tolerant setups carry a small constant latency offset over \
         UnRep (one extra consensus round trip)",
    );
    let rates = grid(vec![
        50_000.0, 200_000.0, 400_000.0, 600_000.0, 700_000.0, 800_000.0, 850_000.0, 876_000.0,
        900_000.0, 950_000.0,
    ]);
    for setup in [
        Setup::Unrep,
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ] {
        println!("--- {} ---", setup.label());
        for &rate in &rates {
            let mut o = with_windows(ClusterOpts::new(setup, 3, rate));
            o.lb_replies = Some(false); // §7.1: focus on protocol overheads
            let r = run_experiment(o);
            print_point(setup.label(), &r);
        }
    }
}
