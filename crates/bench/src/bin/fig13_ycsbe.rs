//! Figure 13: YCSB-E (95% SCAN / 5% INSERT, 1 kB records) on the Redis-like
//! store (§7.5). The workload is CPU-bound and read-mostly, so read-only
//! load balancing converts replicas into throughput: the paper reports a 4x
//! speedup over the unreplicated deployment at N=7 under the 500µs SLO.

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, grid, max_under_slo, print_point, with_windows, SLO_NS};
use testbed::{run_experiment, ClusterOpts, ServiceKind, Setup, WorkloadKind};
use workload::YcsbWorkload;

const RECORDS: u64 = 10_000;

fn opts(setup: Setup, n: u32, rate: f64) -> ClusterOpts {
    let mut o = with_windows(ClusterOpts::new(setup, n, rate));
    o.service = ServiceKind::Kv;
    o.workload = WorkloadKind::Ycsb {
        workload: YcsbWorkload::E,
        records: RECORDS,
    };
    o.bound = 64;
    o
}

fn main() {
    banner(
        "Figure 13 — YCSB-E on the Redis-like store (unmodified service, all setups)",
        "SMR adds moderate latency at low load, but read-only load balancing \
         scales throughput with cluster size: the paper reaches 142 kRPS at \
         N=7 under the 500us SLO, ~4x over unreplicated",
    );
    // Latency-throughput curves.
    println!("--- UnRep (N=1) ---");
    let unrep_rates = grid(vec![
        10_000.0, 20_000.0, 30_000.0, 38_000.0, 44_000.0, 50_000.0,
    ]);
    let (unrep_best, pts) = max_under_slo(&unrep_rates, |r| opts(Setup::Unrep, 1, r));
    for p in &pts {
        print_point("UnRep", p);
    }
    let mut speedups = Vec::new();
    for n in [3u32, 5, 7] {
        println!("--- HovercRaft++ N={n} ---");
        // Amdahl estimate of the capacity: only SCANs (95% of ops, with a
        // serial fraction f set by the INSERT/SCAN cost ratio) scale out.
        let f = 0.107;
        let est = unrep_best / (f + (1.0 - f) / n as f64);
        let rates = grid(vec![
            est * 0.3,
            est * 0.55,
            est * 0.75,
            est * 0.9,
            est * 1.0,
            est * 1.1,
        ]);
        let (best, pts) = max_under_slo(&rates, |r| {
            opts(Setup::HovercraftPp(PolicyKind::Jbsq), n, r)
        });
        for p in &pts {
            print_point(&format!("HC++ N={n}"), p);
        }
        speedups.push((n, best));
    }
    println!();
    println!(
        "max under {}us SLO:  UnRep {:>8.0} RPS",
        SLO_NS / 1_000,
        unrep_best
    );
    for (n, best) in speedups {
        println!(
            "                    HC++ N={n} {:>8.0} RPS  ({:.2}x over UnRep)",
            best,
            best / unrep_best
        );
    }
    // Sanity at low load: SMR latency cost is moderate (paper: negligible
    // up to 10 kRPS).
    let lo_unrep = run_experiment(opts(Setup::Unrep, 1, 10_000.0));
    let lo_hc = run_experiment(opts(Setup::HovercraftPp(PolicyKind::Jbsq), 7, 10_000.0));
    println!(
        "low-load p99: UnRep {:.0}us vs HC++ N=7 {:.0}us",
        lo_unrep.p99_ns as f64 / 1e3,
        lo_hc.p99_ns as f64 / 1e3
    );
}
