//! Figure 9: achieved throughput under the 500µs SLO as the cluster grows
//! to 5, 7, and 9 nodes (§7.2) — "scaling cluster sizes without regret".

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, grid, max_under_slo, with_windows};
use testbed::{ClusterOpts, Setup};

fn main() {
    banner(
        "Figure 9 — max kRPS under 500us SLO vs cluster size (S=1us, 24B/8B)",
        "VanillaRaft degrades most (-43% at N=9 in the paper); HovercRaft \
         degrades less; HovercRaft++ is flat — the aggregator makes leader \
         cost independent of cluster size",
    );
    let rates = grid(vec![
        300_000.0, 400_000.0, 500_000.0, 600_000.0, 700_000.0, 800_000.0, 850_000.0, 876_000.0,
    ]);
    println!("{:14} {:>3} {:>18}", "setup", "N", "max kRPS under SLO");
    let mut baseline = std::collections::HashMap::new();
    for setup in [
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ] {
        for n in [3u32, 5, 7, 9] {
            let (best, _) = max_under_slo(&rates, |rate| {
                let mut o = with_windows(ClusterOpts::new(setup, n, rate));
                o.lb_replies = Some(false);
                o
            });
            if n == 3 {
                baseline.insert(setup.label(), best);
            }
            let delta = 100.0 * (best / baseline[setup.label()] - 1.0);
            println!(
                "{:14} {:>3} {:>15.0}  ({:+.1}% vs N=3)",
                setup.label(),
                n,
                best / 1_000.0,
                delta
            );
        }
    }
}
