//! Simulator engine throughput: the wall-clock budget of every experiment.
//!
//! Every figure binary, chaos sweep, and invariant-checked test in this
//! reproduction runs through the simnet discrete-event engine, so
//! *simulated events per wall-clock second* is the number that decides how
//! much HovercRaft evaluation we can afford. This bench drives the two
//! workload shapes that dominate the suite —
//!
//! * **fig7** — the paper's headline point: 3-node HovercRaft/JBSQ at
//!   800 kRPS, no invariant checking (how the figure harnesses run);
//! * **chaos** — the fault-injected 5-node point of `tests/chaos.rs`,
//!   stepped every simulated millisecond under the full cross-node
//!   invariant checker plus an incremental trace digest (how the test
//!   suite runs)
//!
//! — and reports events/sec, simulated-ns per wall-second, and the chaos
//! trace digest into `BENCH_sim.json`.
//!
//! Usage:
//!
//! ```text
//! sim_throughput [--out PATH] [--baseline PATH]
//! ```
//!
//! `HC_FAST=1` shortens the measured windows (CI smoke). With `--baseline`
//! the run compares itself against a previously committed report and exits
//! non-zero on a >25 % events/sec regression in either workload, or on any
//! chaos-digest mismatch (digests are machine-independent; throughput is
//! not — refresh the baseline when the reference hardware changes).

use std::time::Instant;

use hovercraft::PolicyKind;
use hovercraft_bench::bench_json::{self, lookup, lookup_f64};
use hovercraft_bench::fast;
use simnet::{FaultPlan, FaultPlanConfig, ProfileSnapshot, SimDur, SimTime};
use testbed::{chaos_digest_opts, Cluster, ClusterOpts, Setup, TraceDigest};

// Light up the per-thread allocator counters: `allocs_per_event` is the
// number the arena work optimizes, so the bench that gates it must
// measure it. One thread-local increment per allocation; the events/sec
// gate bounds the overhead.
#[global_allocator]
static ALLOC: simnet::CountingAlloc = simnet::CountingAlloc;

/// Tolerated events/sec drop vs the committed baseline before the gate
/// fails (the CI perf job's contract).
const MAX_REGRESSION: f64 = 0.25;

/// Tolerated allocations-per-event growth vs the committed baseline.
/// Allocator traffic is deterministic for a fixed workload — unlike
/// events/sec it does not depend on the machine — so the tolerance is
/// tight: a >10% regression means a hot path started heap-allocating.
const MAX_ALLOC_REGRESSION: f64 = 0.10;

struct Metrics {
    /// Engine events dispatched.
    events: u64,
    /// Wall-clock seconds for the run.
    wall_s: f64,
    /// Simulated nanoseconds covered.
    sim_ns: u64,
    /// Protocol trace events recorded.
    trace_events: u64,
    /// Profiling deltas (allocator calls/bytes, scheduler ops, timer-wheel
    /// cascades) accumulated on the thread that ran the world.
    prof: ProfileSnapshot,
}

impl Metrics {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
    fn sim_ns_per_wall_s(&self) -> f64 {
        self.sim_ns as f64 / self.wall_s
    }
    fn allocs_per_event(&self) -> f64 {
        self.prof.alloc_calls as f64 / self.events.max(1) as f64
    }
}

fn fig7_opts() -> ClusterOpts {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, 800_000.0);
    o.lb_replies = Some(false);
    o.clients = 4;
    if fast() {
        o.warmup = SimDur::millis(20);
        o.measure = SimDur::millis(80);
    } else {
        o.warmup = SimDur::millis(100);
        o.measure = SimDur::millis(400);
    }
    o
}

/// The figure-harness shape: full load, no invariant checking.
fn run_fig7() -> Metrics {
    let mut cluster = Cluster::build(fig7_opts());
    let end = cluster.opts().load_end() + SimDur::millis(20);
    let p0 = ProfileSnapshot::now();
    let t0 = Instant::now();
    cluster.settle();
    cluster.sim.run_until(end);
    let wall_s = t0.elapsed().as_secs_f64();
    let prof = ProfileSnapshot::now().delta_since(&p0);
    Metrics {
        events: cluster.sim.events_processed(),
        wall_s,
        sim_ns: cluster.sim.now().as_nanos(),
        trace_events: cluster.tracer().total_recorded(),
        prof,
    }
}

/// The test-suite shape: fault plan + 1 ms invariant checking + digest.
fn run_chaos(seed: u64) -> (Metrics, TraceDigest) {
    // Deliberately NOT shortened under HC_FAST: the chaos digest must be
    // comparable between a CI smoke run and a full local run.
    let opts = chaos_digest_opts(seed);
    let mut cluster = Cluster::build(opts);
    let p0 = ProfileSnapshot::now();
    let t0 = Instant::now();
    cluster.settle();
    let plan = FaultPlan::generate(&FaultPlanConfig {
        nodes: cluster.servers.clone(),
        window_start: SimTime::ZERO + SimDur::millis(210),
        window_end: SimTime::ZERO + SimDur::millis(460),
        episodes: 3,
        seed,
    });
    cluster.sim.apply_fault_plan(&plan);
    let end = cluster.opts().load_end() + SimDur::millis(220);
    let mut digest = TraceDigest::new();
    while cluster.sim.now() < end {
        let next = (cluster.sim.now() + SimDur::millis(1)).min(end);
        cluster.run_until_checked(next);
        digest.absorb(cluster.tracer());
    }
    digest.absorb(cluster.tracer());
    let wall_s = t0.elapsed().as_secs_f64();
    let prof = ProfileSnapshot::now().delta_since(&p0);
    let m = Metrics {
        events: cluster.sim.events_processed(),
        wall_s,
        sim_ns: cluster.sim.now().as_nanos(),
        trace_events: cluster.tracer().total_recorded(),
        prof,
    };
    (m, digest)
}

/// Seed of the digested chaos run — the same seed `tests/chaos.rs` pins
/// for its bit-exact replay test.
const CHAOS_SEED: u64 = 777;

fn render_report(fig7: &Metrics, chaos: &Metrics, digest: &TraceDigest) -> String {
    // Hand-rolled flat JSON (no serde in the vendored environment): one
    // `"key": value` pair per line, parsed back by `lookup`.
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str(&format!("  \"fast\": {},\n", fast()));
    s.push_str(&format!("  \"chaos_seed\": {CHAOS_SEED},\n"));
    let section = |s: &mut String, name: &str, m: &Metrics| {
        s.push_str(&format!("  \"{name}_events\": {},\n", m.events));
        s.push_str(&format!("  \"{name}_wall_s\": {:.6},\n", m.wall_s));
        s.push_str(&format!(
            "  \"{name}_events_per_sec\": {:.1},\n",
            m.events_per_sec()
        ));
        s.push_str(&format!("  \"{name}_sim_ns\": {},\n", m.sim_ns));
        s.push_str(&format!(
            "  \"{name}_sim_ns_per_wall_s\": {:.1},\n",
            m.sim_ns_per_wall_s()
        ));
        s.push_str(&format!("  \"{name}_trace_events\": {},\n", m.trace_events));
        s.push_str(&format!(
            "  \"{name}_alloc_calls\": {},\n",
            m.prof.alloc_calls
        ));
        s.push_str(&format!(
            "  \"{name}_alloc_bytes\": {},\n",
            m.prof.alloc_bytes
        ));
        s.push_str(&format!(
            "  \"{name}_allocs_per_event\": {:.4},\n",
            m.allocs_per_event()
        ));
        s.push_str(&format!(
            "  \"{name}_wheel_cascades\": {},\n",
            m.prof.wheel_cascades
        ));
    };
    section(&mut s, "fig7", fig7);
    section(&mut s, "chaos", chaos);
    s.push_str(&format!(
        "  \"chaos_digest\": \"{:#018x}\",\n",
        digest.value()
    ));
    s.push_str(&format!("  \"chaos_digest_events\": {}\n", digest.count()));
    s.push_str("}\n");
    s
}

/// Folds the freshly rendered `report` into whatever already sits at
/// `out_path`: the throughput keys this binary owns are replaced in
/// place, and **every other key survives verbatim** — `suite_*` from
/// `run_all_figs`, profile stats, hand-added notes, future writers'
/// keys. (The old version rewrote the file from scratch and only
/// grandfathered `suite_*`-prefixed lines, so a local `--out
/// BENCH_sim.json` run silently dropped everything else and the next
/// gate run failed confusingly.)
fn merge_into_existing(out_path: &str, report: &str) -> String {
    let existing = std::fs::read_to_string(out_path).unwrap_or_default();
    bench_json::merge(&existing, &bench_json::parse_pairs(report))
}

/// Compares this run against a committed baseline; returns the failures.
fn check_baseline(baseline: &str, report: &str) -> Vec<String> {
    let mut failures = Vec::new();
    for name in ["fig7", "chaos"] {
        let key = format!("{name}_events_per_sec");
        let (Some(base), Some(cur)) = (lookup_f64(baseline, &key), lookup_f64(report, &key)) else {
            failures.push(format!("baseline or report missing {key}"));
            continue;
        };
        let floor = base * (1.0 - MAX_REGRESSION);
        if cur < floor {
            failures.push(format!(
                "{key} regressed: {cur:.0} < {floor:.0} \
                 (baseline {base:.0}, tolerance {:.0}%)",
                MAX_REGRESSION * 100.0
            ));
        } else {
            println!("  {key}: {cur:.0} vs baseline {base:.0} (floor {floor:.0}) — ok");
        }
    }
    // Allocations-per-event is machine-independent (a deterministic world
    // allocates identically everywhere), so the tolerance is tight. The
    // comparison only runs in full-window mode: HC_FAST shrinks the fig7
    // measurement window, which shifts the warmup-allocation share of the
    // ratio, and the committed baseline is always full-window.
    if !fast() {
        for name in ["fig7", "chaos"] {
            let key = format!("{name}_allocs_per_event");
            let (Some(base), Some(cur)) = (lookup_f64(baseline, &key), lookup_f64(report, &key))
            else {
                println!("  {key}: no baseline value — not compared");
                continue;
            };
            let ceil = base * (1.0 + MAX_ALLOC_REGRESSION);
            if cur > ceil {
                failures.push(format!(
                    "{key} regressed: {cur:.4} > {ceil:.4} \
                     (baseline {base:.4}, tolerance {:.0}%) \
                     — a hot path started heap-allocating",
                    MAX_ALLOC_REGRESSION * 100.0
                ));
            } else {
                println!("  {key}: {cur:.4} vs baseline {base:.4} (ceiling {ceil:.4}) — ok");
            }
        }
    } else {
        println!("  (allocs_per_event not compared: HC_FAST windows shift the ratio)");
    }
    // Digests are exact and machine-independent; the chaos run ignores
    // HC_FAST precisely so they compare across smoke and full runs. Only a
    // different seed makes them incomparable.
    let same_seed = lookup(baseline, "chaos_seed") == lookup(report, "chaos_seed");
    if same_seed {
        let (b, c) = (
            lookup(baseline, "chaos_digest"),
            lookup(report, "chaos_digest"),
        );
        if b != c {
            failures.push(format!(
                "chaos trace digest changed: baseline {b:?}, current {c:?} \
                 — the optimization altered protocol behaviour"
            ));
        } else {
            println!("  chaos_digest: {} — bit-exact", c.unwrap_or_default());
        }
    } else {
        println!("  (digest not compared: baseline ran with a different seed)");
    }
    // Suite-level gate: when a document carries `run_all_figs` suite keys,
    // the serial and parallel output digests it records must agree, and
    // both wall-times must be present — a committed BENCH_sim.json can
    // never quietly record a parallel run that diverged from serial.
    for (label, doc) in [("baseline", baseline), ("report", report)] {
        let par = lookup(doc, "suite_output_digest");
        let ser = lookup(doc, "suite_output_digest_serial");
        match (par, ser) {
            (None, None) => {}
            (Some(p), Some(s)) => {
                if p != s {
                    failures.push(format!(
                        "{label}: suite_output_digest {p} != suite_output_digest_serial {s} \
                         — parallel figure suite diverged from serial"
                    ));
                } else {
                    println!("  {label} suite_output_digest: {p} — serial/parallel bit-exact");
                }
                for key in ["suite_wall_s_parallel", "suite_wall_s_serial"] {
                    if lookup_f64(doc, key).is_none() {
                        failures.push(format!("{label}: missing {key}"));
                    }
                }
            }
            (p, s) => {
                failures.push(format!(
                    "{label}: incomplete suite digest record (parallel {p:?}, serial {s:?}) \
                     — rerun run_all_figs --compare-serial --bench-out"
                ));
            }
        }
    }
    failures
}

fn main() {
    let mut out = String::from("BENCH_sim.json");
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out PATH"),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: sim_throughput [--out PATH] [--baseline PATH]");
                std::process::exit(2);
            }
        }
    }

    println!("== sim_throughput: simnet engine wall-clock throughput ==");
    if fast() {
        println!("(HC_FAST=1: smoke windows)");
    }
    // Both workloads go through the sweep layer: HC_JOBS=1 runs them
    // serially exactly as before; HC_JOBS>=2 times them concurrently on
    // separate workers (each measures its own wall-clock around its own
    // single-threaded world, so per-workload events/sec stays meaningful
    // on a machine with free cores).
    enum WorkloadOut {
        Fig7(Metrics),
        Chaos(Metrics, TraceDigest),
    }
    let mut outs = hovercraft_bench::sweep::par_map(vec![0u8, 1], |which| match which {
        0 => WorkloadOut::Fig7(run_fig7()),
        _ => {
            let (m, d) = run_chaos(CHAOS_SEED);
            WorkloadOut::Chaos(m, d)
        }
    })
    .into_iter();
    let (Some(WorkloadOut::Fig7(fig7)), Some(WorkloadOut::Chaos(chaos, digest))) =
        (outs.next(), outs.next())
    else {
        unreachable!("par_map returns outputs in input order");
    };
    println!("-- fig7 workload (3-node HovercRaft/JBSQ @ 800 kRPS, unchecked) --");
    println!(
        "   {} events in {:.2}s  ->  {:.0} events/s, {:.0} sim-ns/wall-s, {} trace events",
        fig7.events,
        fig7.wall_s,
        fig7.events_per_sec(),
        fig7.sim_ns_per_wall_s(),
        fig7.trace_events,
    );
    println!(
        "   {} allocs ({:.1} MB) -> {:.3} allocs/event; {} sched ops, {} wheel cascades",
        fig7.prof.alloc_calls,
        fig7.prof.alloc_bytes as f64 / 1e6,
        fig7.allocs_per_event(),
        fig7.prof.sched_ops,
        fig7.prof.wheel_cascades,
    );
    println!("-- chaos workload (5-node, fault plan, 1ms invariant checking + digest) --");
    println!(
        "   {} events in {:.2}s  ->  {:.0} events/s, {:.0} sim-ns/wall-s, digest {:#018x} over {} events",
        chaos.events,
        chaos.wall_s,
        chaos.events_per_sec(),
        chaos.sim_ns_per_wall_s(),
        digest.value(),
        digest.count(),
    );
    println!(
        "   {} allocs ({:.1} MB) -> {:.3} allocs/event; {} sched ops, {} wheel cascades",
        chaos.prof.alloc_calls,
        chaos.prof.alloc_bytes as f64 / 1e6,
        chaos.allocs_per_event(),
        chaos.prof.sched_ops,
        chaos.prof.wheel_cascades,
    );

    let report = merge_into_existing(&out, &render_report(&fig7, &chaos, &digest));
    std::fs::write(&out, &report).expect("write report");
    println!("report written to {out}");

    if let Some(path) = baseline {
        println!("-- baseline gate ({path}) --");
        let base = std::fs::read_to_string(&path).expect("read baseline");
        let failures = check_baseline(&base, &report);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!("baseline gate passed");
    }
}
