//! Figure 11: CPU load balancing of read-only operations under service-time
//! dispersion (§7.3): bimodal S̄ = 10µs (10% of requests 10x longer), 75%
//! read-only, on a 3-node cluster with bounded queues of 32. JBSQ beats
//! RANDOM replier selection at the tail.

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, grid, print_point, with_windows};
use testbed::{run_experiment, ClusterOpts, Setup, WorkloadKind};
use workload::{ServiceDist, SynthSpec};

fn main() {
    banner(
        "Figure 11 — bimodal S=10us, 75% read-only, N=3, B=32: JBSQ vs RANDOM vs UnRep",
        "read-only load balancing lifts capacity ~57% over UnRep (~100k); \
         JBSQ sustains lower tail latency than RANDOM near saturation",
    );
    let wl = || {
        WorkloadKind::Synth(SynthSpec {
            dist: ServiceDist::Bimodal {
                mean_ns: 10_000,
                frac_long: 0.1,
                mult: 10,
            },
            req_size: 24,
            reply_size: 8,
            ro_fraction: 0.75,
        })
    };
    println!("--- UnRep ---");
    for rate in grid(vec![
        25_000.0, 50_000.0, 75_000.0, 90_000.0, 97_000.0, 105_000.0,
    ]) {
        let mut o = with_windows(ClusterOpts::new(Setup::Unrep, 1, rate));
        o.workload = wl();
        let r = run_experiment(o);
        print_point("UnRep", &r);
    }
    for policy in [PolicyKind::Random, PolicyKind::Jbsq] {
        println!("--- HovercRaft++ {policy:?} ---");
        for rate in grid(vec![
            50_000.0, 100_000.0, 125_000.0, 150_000.0, 165_000.0, 180_000.0, 195_000.0,
        ]) {
            let mut o = with_windows(ClusterOpts::new(Setup::HovercraftPp(policy), 3, rate));
            o.workload = wl();
            o.bound = 32; // §7.3: longer service time, smaller bound
            let r = run_experiment(o);
            print_point(&format!("HC++ {policy:?}"), &r);
        }
    }
}
