//! Thin wrapper: renders `the loss-rate ablation` via the shared figure registry (see
//! `hovercraft_bench::figs`), honoring `HC_JOBS` for parallel sweeps.

fn main() {
    hovercraft_bench::sweep::figure_main(&hovercraft_bench::figs::ablation_loss::FIG);
}
