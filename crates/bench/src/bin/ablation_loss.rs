//! Ablation: multicast loss and the recovery protocol (§3.2, §5).
//!
//! HovercRaft does not assume reliable multicast; lost request copies are
//! repaired with recovery_request messages. Sweeps the independent
//! per-copy loss probability and reports the recovery traffic and its
//! latency cost.

use hovercraft::PolicyKind;
use hovercraft_bench::{banner, windows};
use simnet::SimDur;
use testbed::{summarize, Cluster, ClusterOpts, ServerAgent, Setup};

fn main() {
    banner(
        "Ablation — fabric loss rate vs recovery traffic and latency (N=3, 100 kRPS)",
        "loss triggers recovery_request repair; goodput holds while tail \
         latency grows with the repair round trips",
    );
    println!(
        "{:>7} {:>12} {:>11} {:>11} {:>12} {:>10}",
        "loss", "achieved", "p99(us)", "recoveries", "served", "stalls"
    );
    for loss in [0.0, 0.001, 0.005, 0.01, 0.02, 0.05] {
        let (w, m) = windows();
        let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, 100_000.0);
        o.warmup = w;
        o.measure = m;
        o.clients = 4;
        let mut cluster = Cluster::build(o);
        cluster.sim.set_loss_rate(loss);
        cluster.run_to_completion();
        cluster.sim.set_loss_rate(0.0);
        cluster.sim.run_for(SimDur::millis(50));
        let mut recov = 0;
        let mut served = 0;
        let mut stalls = 0;
        for &s in &cluster.servers.clone() {
            let st = cluster.sim.agent::<ServerAgent>(s).node().stats();
            recov += st.recoveries_sent;
            served += st.recoveries_served;
            stalls += st.apply_stalls;
        }
        let r = summarize(&mut cluster);
        println!(
            "{:>6.1}% {:>12.0} {:>11.1} {:>11} {:>12} {:>10}",
            loss * 100.0,
            r.achieved_rps,
            r.p99_ns as f64 / 1e3,
            recov,
            served,
            stalls
        );
    }
}
