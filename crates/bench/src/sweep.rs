//! Deterministic parallel sweeps over independent simulator jobs.
//!
//! Every experiment in the suite is a grid of *independent, seeded,
//! single-threaded* simulations — a `(figure × load-point × seed)` job
//! space. This module shards that grid across a scoped work-stealing
//! [`pool`] while keeping results **byte-identical to serial execution**:
//!
//! * Each job constructs and drives its own `Sim` world entirely on one
//!   worker thread — no state is shared between jobs.
//! * [`Sweep::map`] returns outputs in input-index order regardless of
//!   completion order, and figures render their report *after* the map,
//!   in input order — so the merged text, digests, and BENCH JSON never
//!   depend on scheduling.
//! * `HC_JOBS=1` (or a single-core machine) takes an exact serial path
//!   that never touches the pool; `HC_JOBS=N` sets the worker count, and
//!   the default is `available_parallelism`.
//!
//! A figure is a [`Figure`]: a name (its binary / results-file name) plus
//! a `fn(&Sweep) -> String` that renders the full report. Figure binaries
//! call [`figure_main`]; the `run_all_figs` driver schedules many figures
//! onto one shared pool, nesting their inner sweeps on the same workers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pool::{Pool, Scope};
use simnet::ProfileSnapshot;

/// Number of parallel jobs the sweep layer will use (`HC_JOBS`, default
/// `available_parallelism`). `1` means strictly serial execution.
///
/// This is a *sharding* count: [`pool::Pool::new`] caps actual executors
/// at the machine's core count, so `HC_JOBS=4` on a single-core box keeps
/// the 4-way task decomposition but runs it one world at a time (measured
/// 10–20 % cheaper than interleaving them; see DESIGN.md §13).
pub fn jobs() -> usize {
    pool::default_jobs()
}

/// Batch tasks submitted per executor by [`Sweep::map`]: enough slack for
/// work stealing to balance uneven job costs, small enough that a 13-figure
/// suite's load grids don't queue hundreds of tiny tasks through one lock.
const CHUNKS_PER_EXECUTOR: usize = 8;

/// Suite-wide accumulator for per-world simulator profiling deltas
/// (`--profile` on `run_all_figs`). Jobs run whole worlds start-to-finish
/// on one thread, so each [`Sweep::map`] task brackets itself with
/// [`ProfileSnapshot`]s on its executing thread and adds the delta here.
/// Disabled (one relaxed load per task) unless a driver opts in.
pub mod sim_profile {
    use super::*;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static TASKS: AtomicU64 = AtomicU64::new(0);
    static TRACER_LOCKS: AtomicU64 = AtomicU64::new(0);
    static SCHED_OPS: AtomicU64 = AtomicU64::new(0);
    static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
    static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
    static WHEEL_CASCADES: AtomicU64 = AtomicU64::new(0);

    /// Totals accumulated across all swept jobs since [`enable`].
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct SimStats {
        /// Sweep tasks that contributed a delta.
        pub tasks: u64,
        /// Tracer ring-lock acquisitions inside swept jobs.
        pub tracer_locks: u64,
        /// Engine event-queue operations inside swept jobs.
        pub sched_ops: u64,
        /// Global-allocator calls inside swept jobs (needs
        /// [`simnet::CountingAlloc`] installed in the binary).
        pub alloc_calls: u64,
        /// Bytes requested from the allocator inside swept jobs.
        pub alloc_bytes: u64,
        /// Timer-wheel cascade moves inside swept jobs (0 under
        /// `HC_SCHED=heap`).
        pub wheel_cascades: u64,
    }

    /// Starts collecting (and zeroes any previous totals).
    pub fn enable() {
        TASKS.store(0, Ordering::Relaxed);
        TRACER_LOCKS.store(0, Ordering::Relaxed);
        SCHED_OPS.store(0, Ordering::Relaxed);
        ALLOC_CALLS.store(0, Ordering::Relaxed);
        ALLOC_BYTES.store(0, Ordering::Relaxed);
        WHEEL_CASCADES.store(0, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Release);
    }

    /// True when sweeps are currently bracketing their jobs.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Reads the totals accumulated so far.
    pub fn totals() -> SimStats {
        SimStats {
            tasks: TASKS.load(Ordering::Relaxed),
            tracer_locks: TRACER_LOCKS.load(Ordering::Relaxed),
            sched_ops: SCHED_OPS.load(Ordering::Relaxed),
            alloc_calls: ALLOC_CALLS.load(Ordering::Relaxed),
            alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
            wheel_cascades: WHEEL_CASCADES.load(Ordering::Relaxed),
        }
    }

    pub(super) fn add(delta: &ProfileSnapshot) {
        TASKS.fetch_add(1, Ordering::Relaxed);
        TRACER_LOCKS.fetch_add(delta.tracer_locks, Ordering::Relaxed);
        SCHED_OPS.fetch_add(delta.sched_ops, Ordering::Relaxed);
        ALLOC_CALLS.fetch_add(delta.alloc_calls, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(delta.alloc_bytes, Ordering::Relaxed);
        WHEEL_CASCADES.fetch_add(delta.wheel_cascades, Ordering::Relaxed);
    }
}

/// Runs `f()` and, when profiling is enabled, adds this thread's counter
/// delta for the call into the [`sim_profile`] totals.
fn run_measured<O>(f: impl FnOnce() -> O) -> O {
    if !sim_profile::enabled() {
        return f();
    }
    let before = ProfileSnapshot::now();
    let out = f();
    sim_profile::add(&ProfileSnapshot::now().delta_since(&before));
    out
}

/// Execution context for one figure: either strictly serial, or fanning
/// work out on an active pool scope.
///
/// Passing `&Sweep` down instead of a global lets `run_all_figs` nest
/// figure-internal sweeps on the *same* pool that schedules across
/// figures (waiting tasks help execute, so nesting cannot deadlock).
pub struct Sweep<'a, 'scope, 'env: 'scope> {
    scope: Option<&'a Scope<'scope, 'env>>,
}

impl Sweep<'static, 'static, 'static> {
    /// The strictly serial context: `map` is a plain in-order loop.
    pub const SERIAL: Self = Sweep { scope: None };
}

impl<'a, 'scope, 'env> Sweep<'a, 'scope, 'env> {
    /// A context that fans out onto `scope`'s pool.
    pub fn pooled(scope: &'a Scope<'scope, 'env>) -> Self {
        Sweep { scope: Some(scope) }
    }

    /// True when `map` runs jobs on pool workers.
    pub fn is_parallel(&self) -> bool {
        self.scope.is_some()
    }

    /// Runs `f` over `items`, returning outputs **in input order**.
    ///
    /// Serially this is exactly `items.into_iter().map(f).collect()`; on a
    /// pool the items are submitted in contiguous **chunks** (targeting
    /// [`CHUNKS_PER_EXECUTOR`] tasks per executor) and each chunk maps its
    /// items in order on one worker, so flattening the chunk outputs
    /// reproduces input order exactly. Chunking turns a 40-point load grid
    /// on a 4-executor pool into ~32 queue transitions instead of 80+,
    /// without giving up stealing granularity for uneven job costs. `f`
    /// must own its captures (`'static`): jobs may run on any worker and
    /// outlive the caller's locals.
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(I) -> O + Send + Sync + 'static,
    {
        let Some(s) = self.scope else {
            return items
                .into_iter()
                .map(|item| run_measured(|| f(item)))
                .collect();
        };
        let n = items.len();
        let target = s.executors() * CHUNKS_PER_EXECUTOR;
        let chunk = n.div_ceil(target.max(1)).max(1);
        if chunk <= 1 {
            return s.join_map(items, move |_, _, item| run_measured(|| f(item)));
        }
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n.div_ceil(chunk));
        let mut it = items.into_iter();
        loop {
            let c: Vec<I> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let f = Arc::new(f);
        let outs = s.join_map(chunks, move |_, _, c| {
            c.into_iter()
                .map(|item| run_measured(|| f(item)))
                .collect::<Vec<O>>()
        });
        outs.into_iter().flatten().collect()
    }
}

/// One figure/table of the suite: its binary name (doubles as the results
/// file stem) and the renderer producing the complete report text.
#[derive(Clone, Copy)]
pub struct Figure {
    /// Binary name, e.g. `"fig7_latency_throughput"`.
    pub name: &'static str,
    /// Renders the figure under the given sweep context.
    pub run: fn(&Sweep<'_, '_, '_>) -> String,
}

/// Renders one figure, honoring `HC_JOBS` (1 → exact serial path).
pub fn render_figure(fig: &Figure) -> String {
    render_figure_jobs(fig, jobs())
}

/// Renders one figure with an explicit job count.
pub fn render_figure_jobs(fig: &Figure, jobs: usize) -> String {
    if jobs <= 1 {
        (fig.run)(&Sweep::SERIAL)
    } else {
        Pool::new(jobs).scope(|s| (fig.run)(&Sweep::pooled(s)))
    }
}

/// Entry point for a standalone figure binary: render, print.
pub fn figure_main(fig: &Figure) {
    print!("{}", render_figure(fig));
}

/// Runs `f(item)` for every item on the pool (ordered outputs), as a
/// standalone call: builds a pool sized by `HC_JOBS`, or runs a plain
/// serial loop when `HC_JOBS=1`. This is the entry the test-suite sweeps
/// (chaos corpus, randomized plans) use — panics from `f` propagate to
/// the caller, first-recorded payload wins.
pub fn par_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send + 'static,
    O: Send + 'static,
    F: Fn(I) -> O + Send + Sync + 'static,
{
    let n = jobs().min(items.len().max(1));
    if n <= 1 {
        return items
            .into_iter()
            .map(|item| run_measured(|| f(item)))
            .collect();
    }
    Pool::new(n).scope(|s| Sweep::pooled(s).map(items, f))
}

/// Runs a figure renderer, converting a panic into `Err(message)` so a
/// driver can keep going and report the failure at the end.
pub fn try_render(fig: &Figure, sw: &Sweep<'_, '_, '_>) -> Result<String, String> {
    catch_unwind(AssertUnwindSafe(|| (fig.run)(sw))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// FNV-1a over bytes — the suite's output fingerprint (same constants as
/// the trace digest in `testbed`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_map_preserves_order() {
        let out = Sweep::SERIAL.map(vec![3u64, 1, 2], |x| x * 10);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn pooled_map_matches_serial() {
        let serial = Sweep::SERIAL.map((0..64u64).collect(), |x| x * x + 1);
        let pooled = Pool::new(4).scope(|s| {
            let sw = Sweep::pooled(s);
            sw.map((0..64u64).collect(), |x| x * x + 1)
        });
        assert_eq!(serial, pooled);
    }

    #[test]
    fn chunked_map_preserves_order_across_sizes() {
        // Sizes straddling every chunking regime: below one chunk per
        // executor, exactly on a chunk boundary, one leftover item, and
        // far more items than chunk slots. Oversubscribed `exact` pools
        // maximize out-of-order completion pressure.
        for pool in [Pool::exact(2), Pool::exact(5)] {
            for n in [0u64, 1, 7, 8, 9, 63, 64, 65, 257] {
                let serial = Sweep::SERIAL.map((0..n).collect(), |x| x.wrapping_mul(31) ^ 5);
                let pooled = pool
                    .scope(|s| Sweep::pooled(s).map((0..n).collect(), |x| x.wrapping_mul(31) ^ 5));
                assert_eq!(serial, pooled, "n={n} diverged");
            }
        }
    }

    #[test]
    fn par_map_matches_serial_loop() {
        let serial: Vec<u64> = (0..33u64).map(|x| x + 7).collect();
        assert_eq!(par_map((0..33u64).collect(), |x| x + 7), serial);
    }

    #[test]
    fn sim_profile_accumulates_only_when_enabled() {
        // Disabled by default: mapping adds nothing.
        let before = sim_profile::totals();
        let _ = Sweep::SERIAL.map(vec![1u64, 2, 3], |x| x);
        if !sim_profile::enabled() {
            assert_eq!(sim_profile::totals(), before);
        }
        sim_profile::enable();
        let _ = Sweep::SERIAL.map(vec![1u64, 2, 3], |x| x);
        let t = sim_profile::totals();
        assert!(t.tasks >= 3, "each job contributes a delta, got {t:?}");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: the suite digest must be machine- and run-independent.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"hovercraft"), fnv1a64(b"hovercraft"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
