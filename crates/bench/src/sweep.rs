//! Deterministic parallel sweeps over independent simulator jobs.
//!
//! Every experiment in the suite is a grid of *independent, seeded,
//! single-threaded* simulations — a `(figure × load-point × seed)` job
//! space. This module shards that grid across a scoped work-stealing
//! [`pool`] while keeping results **byte-identical to serial execution**:
//!
//! * Each job constructs and drives its own `Sim` world entirely on one
//!   worker thread — no state is shared between jobs.
//! * [`Sweep::map`] returns outputs in input-index order regardless of
//!   completion order, and figures render their report *after* the map,
//!   in input order — so the merged text, digests, and BENCH JSON never
//!   depend on scheduling.
//! * `HC_JOBS=1` (or a single-core machine) takes an exact serial path
//!   that never touches the pool; `HC_JOBS=N` sets the worker count, and
//!   the default is `available_parallelism`.
//!
//! A figure is a [`Figure`]: a name (its binary / results-file name) plus
//! a `fn(&Sweep) -> String` that renders the full report. Figure binaries
//! call [`figure_main`]; the `run_all_figs` driver schedules many figures
//! onto one shared pool, nesting their inner sweeps on the same workers.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pool::{Pool, Scope};

/// Number of parallel jobs the sweep layer will use (`HC_JOBS`, default
/// `available_parallelism`). `1` means strictly serial execution.
pub fn jobs() -> usize {
    pool::default_jobs()
}

/// Execution context for one figure: either strictly serial, or fanning
/// work out on an active pool scope.
///
/// Passing `&Sweep` down instead of a global lets `run_all_figs` nest
/// figure-internal sweeps on the *same* pool that schedules across
/// figures (waiting tasks help execute, so nesting cannot deadlock).
pub struct Sweep<'a, 'scope, 'env: 'scope> {
    scope: Option<&'a Scope<'scope, 'env>>,
}

impl Sweep<'static, 'static, 'static> {
    /// The strictly serial context: `map` is a plain in-order loop.
    pub const SERIAL: Self = Sweep { scope: None };
}

impl<'a, 'scope, 'env> Sweep<'a, 'scope, 'env> {
    /// A context that fans out onto `scope`'s pool.
    pub fn pooled(scope: &'a Scope<'scope, 'env>) -> Self {
        Sweep { scope: Some(scope) }
    }

    /// True when `map` runs jobs on pool workers.
    pub fn is_parallel(&self) -> bool {
        self.scope.is_some()
    }

    /// Runs `f` over `items`, returning outputs **in input order**.
    ///
    /// Serially this is exactly `items.into_iter().map(f).collect()`; on a
    /// pool each item becomes one subtask and the calling task helps until
    /// its batch completes. `f` must own its captures (`'static`): jobs
    /// may run on any worker and outlive the caller's locals.
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(I) -> O + Send + Sync + 'static,
    {
        match self.scope {
            None => items.into_iter().map(f).collect(),
            Some(s) => s.join_map(items, move |_, _, item| f(item)),
        }
    }
}

/// One figure/table of the suite: its binary name (doubles as the results
/// file stem) and the renderer producing the complete report text.
#[derive(Clone, Copy)]
pub struct Figure {
    /// Binary name, e.g. `"fig7_latency_throughput"`.
    pub name: &'static str,
    /// Renders the figure under the given sweep context.
    pub run: fn(&Sweep<'_, '_, '_>) -> String,
}

/// Renders one figure, honoring `HC_JOBS` (1 → exact serial path).
pub fn render_figure(fig: &Figure) -> String {
    render_figure_jobs(fig, jobs())
}

/// Renders one figure with an explicit job count.
pub fn render_figure_jobs(fig: &Figure, jobs: usize) -> String {
    if jobs <= 1 {
        (fig.run)(&Sweep::SERIAL)
    } else {
        Pool::new(jobs).scope(|s| (fig.run)(&Sweep::pooled(s)))
    }
}

/// Entry point for a standalone figure binary: render, print.
pub fn figure_main(fig: &Figure) {
    print!("{}", render_figure(fig));
}

/// Runs `f(item)` for every item on the pool (ordered outputs), as a
/// standalone call: builds a pool sized by `HC_JOBS`, or runs a plain
/// serial loop when `HC_JOBS=1`. This is the entry the test-suite sweeps
/// (chaos corpus, randomized plans) use — panics from `f` propagate to
/// the caller, first-recorded payload wins.
pub fn par_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send + 'static,
    O: Send + 'static,
    F: Fn(I) -> O + Send + Sync + 'static,
{
    let n = jobs().min(items.len().max(1));
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    Pool::new(n).scope(|s| s.join_map(items, move |_, _, item| f(item)))
}

/// Runs a figure renderer, converting a panic into `Err(message)` so a
/// driver can keep going and report the failure at the end.
pub fn try_render(fig: &Figure, sw: &Sweep<'_, '_, '_>) -> Result<String, String> {
    catch_unwind(AssertUnwindSafe(|| (fig.run)(sw))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// FNV-1a over bytes — the suite's output fingerprint (same constants as
/// the trace digest in `testbed`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_map_preserves_order() {
        let out = Sweep::SERIAL.map(vec![3u64, 1, 2], |x| x * 10);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn pooled_map_matches_serial() {
        let serial = Sweep::SERIAL.map((0..64u64).collect(), |x| x * x + 1);
        let pooled = Pool::new(4).scope(|s| {
            let sw = Sweep::pooled(s);
            sw.map((0..64u64).collect(), |x| x * x + 1)
        });
        assert_eq!(serial, pooled);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: the suite digest must be machine- and run-independent.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"hovercraft"), fnv1a64(b"hovercraft"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
