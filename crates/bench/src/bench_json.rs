//! The flat one-pair-per-line BENCH JSON format, shared by every writer.
//!
//! `BENCH_sim.json` is a single JSON object written as exactly one
//! `"key": value` pair per line (no serde in the vendored environment; the
//! flat shape keeps `git diff` reviewable and `grep`-able). Two binaries
//! write into the *same* file — `sim_throughput` owns the throughput keys,
//! `run_all_figs` owns the `suite_*` and stats keys — so every write MUST
//! be a merge: parse what's there, replace the keys you own in place,
//! append your new keys, and leave everything you don't recognize exactly
//! where it was. (`sim_throughput --out` used to rewrite the file from
//! scratch and only grandfathered `suite_*`-prefixed lines, so any other
//! key — and any future writer's keys — were silently dropped, clobbering
//! the baseline the next gate run compared against.)

use std::fmt::Write as _;

/// Parses a flat BENCH JSON document into ordered `(key, value)` pairs.
/// Values are kept verbatim (numbers unparsed, strings still quoted) so a
/// rewrite is byte-faithful for untouched pairs.
pub fn parse_pairs(text: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((key, val)) = rest.split_once("\":") {
                pairs.push((
                    key.to_string(),
                    val.trim().trim_end_matches(',').to_string(),
                ));
            }
        }
    }
    pairs
}

/// Renders ordered pairs back into the canonical flat document.
pub fn render(pairs: &[(String, String)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let comma = if i + 1 == pairs.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{k}\": {v}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Merges `updates` into an existing document: existing keys keep their
/// position (values replaced in place), new keys append in update order,
/// and **every unrecognized key survives verbatim**.
pub fn merge(existing: &str, updates: &[(String, String)]) -> String {
    let mut pairs = parse_pairs(existing);
    for (k, v) in updates {
        if let Some(slot) = pairs.iter_mut().find(|(key, _)| key == k) {
            slot.1 = v.clone();
        } else {
            pairs.push((k.clone(), v.clone()));
        }
    }
    render(&pairs)
}

/// Merges `updates` into the document at `path` (a missing file merges
/// into an empty object) and writes the result back.
pub fn merge_file(path: &str, updates: &[(String, String)]) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    std::fs::write(path, merge(&existing, updates))
}

/// Finds `"key": value` in a flat document, unquoting string values.
pub fn lookup(report: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    for line in report.lines() {
        if let Some(pos) = line.find(&needle) {
            let v = line[pos + needle.len()..].trim().trim_end_matches(',');
            return Some(v.trim_matches('"').to_string());
        }
    }
    None
}

/// [`lookup`] parsed as `f64`.
pub fn lookup_f64(report: &str, key: &str) -> Option<f64> {
    lookup(report, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_unknown_keys_and_order() {
        let existing = "{\n  \"schema\": 1,\n  \"custom_note\": \"keep me\",\n  \
                        \"fig7_events\": 100,\n  \"suite_jobs\": 4\n}\n";
        let updates = vec![
            ("fig7_events".to_string(), "200".to_string()),
            ("new_key".to_string(), "7".to_string()),
        ];
        let merged = merge(existing, &updates);
        let pairs = parse_pairs(&merged);
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        // Unknown keys survive in place; updated key keeps its slot; the
        // new key appends.
        assert_eq!(
            keys,
            [
                "schema",
                "custom_note",
                "fig7_events",
                "suite_jobs",
                "new_key"
            ]
        );
        assert_eq!(lookup(&merged, "custom_note").unwrap(), "keep me");
        assert_eq!(lookup_f64(&merged, "fig7_events").unwrap(), 200.0);
        assert_eq!(lookup_f64(&merged, "suite_jobs").unwrap(), 4.0);
    }

    #[test]
    fn merge_round_trips_byte_identically_when_nothing_changes() {
        let doc = "{\n  \"a\": 1,\n  \"b\": \"0x0abc\",\n  \"c_wall_s\": 1.500000\n}\n";
        assert_eq!(merge(doc, &[]), doc, "no-op merge must be byte-identical");
        // Twice through parse/render is also stable.
        assert_eq!(render(&parse_pairs(doc)), doc);
    }

    #[test]
    fn merge_into_missing_or_empty_document_works() {
        let updates = vec![("only".to_string(), "1".to_string())];
        assert_eq!(merge("", &updates), "{\n  \"only\": 1\n}\n");
        assert_eq!(merge("{\n}\n", &updates), "{\n  \"only\": 1\n}\n");
    }

    #[test]
    fn lookup_unquotes_strings() {
        let doc = "{\n  \"digest\": \"0x0123\",\n  \"n\": 3\n}\n";
        assert_eq!(lookup(doc, "digest").unwrap(), "0x0123");
        assert_eq!(lookup_f64(doc, "n").unwrap(), 3.0);
        assert_eq!(lookup(doc, "missing"), None);
    }
}
