//! CI driver for the `mc` explicit-state model checker.
//!
//! ```text
//! mc_explore [--scope NAME|all] [--symmetry] [--max-states N]
//!            [--mutation replier] [--dump-dir DIR] [--digest PATH]
//!            [--reqs N] [--ticks N] [--dup N] [--drop N] [--crash N] [--window N]
//! ```
//!
//! The budget flags override the selected scope's presets — they exist
//! for sizing experiments (the EXPERIMENTS.md state-count tables); CI
//! and the corpus always run the unmodified presets.
//!
//! Explores each requested scope to exhaustion and prints one line per
//! run: explored-state count, transitions, depth, wall time, verdict.
//! On a violation the full counterexample bundle (human-readable trace
//! plus the replayable `mc:` corpus line) is written under `--dump-dir`
//! and the exit code is 1; an incomplete run (state cap hit) exits 2 so
//! CI cannot mistake a truncated pass for an exhaustive one.
//!
//! `--digest PATH` additionally writes one machine-stable line per
//! exhausted run — scope name, state, transition, and depth counts, no
//! timings — for CI to diff against the committed `tests/mc_digest.txt`:
//! the explored space cannot grow *or shrink* silently.

use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

use mc::{explore, Limits, Scope};
use testbed::invariants::predicates::Mutation;

fn main() -> ExitCode {
    let mut scopes: Vec<Scope> = vec![Scope::default_scope()];
    let mut limits = Limits::default();
    let mut mutation = Mutation::None;
    let mut dump_dir = String::from("target/mc-dumps");
    let mut digest_path: Option<String> = None;

    let mut overrides: Vec<(&str, u8)> = Vec::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            f @ ("--reqs" | "--ticks" | "--dup" | "--drop" | "--crash" | "--window") => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => overrides.push((f, n)),
                    None => {
                        eprintln!("{f} needs a small number");
                        return ExitCode::from(3);
                    }
                }
            }
            "--scope" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                if name == "all" {
                    scopes = Scope::all();
                } else if let Some(s) = Scope::by_name(name) {
                    scopes = vec![s];
                } else {
                    eprintln!("unknown scope {name:?}");
                    return ExitCode::from(3);
                }
            }
            "--symmetry" => limits.symmetry = true,
            "--max-states" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => limits.max_states = n,
                    None => {
                        eprintln!("--max-states needs a number");
                        return ExitCode::from(3);
                    }
                }
            }
            "--mutation" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("replier") => mutation = Mutation::BreakReplierImmutability,
                    other => {
                        eprintln!("unknown mutation {other:?} (try: replier)");
                        return ExitCode::from(3);
                    }
                }
            }
            "--dump-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => dump_dir = d.clone(),
                    None => {
                        eprintln!("--dump-dir needs a path");
                        return ExitCode::from(3);
                    }
                }
            }
            "--digest" => {
                i += 1;
                match args.get(i) {
                    Some(p) => digest_path = Some(p.clone()),
                    None => {
                        eprintln!("--digest needs a path");
                        return ExitCode::from(3);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(3);
            }
        }
        i += 1;
    }

    let mut worst = ExitCode::SUCCESS;
    let mut digest = String::new();
    for mut scope in scopes {
        for &(flag, n) in &overrides {
            match flag {
                "--reqs" => scope.client_reqs = n,
                "--ticks" => scope.tick_budget = n,
                "--dup" => scope.dup_budget = n,
                "--drop" => scope.drop_budget = n,
                "--crash" => scope.crash_budget = n,
                "--window" => scope.reorder_window = n as usize,
                _ => unreachable!(),
            }
        }
        let start = Instant::now();
        let report = explore(&scope, mutation, limits);
        let secs = start.elapsed().as_secs_f64();
        let verdict = match (&report.violation, report.complete) {
            (Some(_), _) => "VIOLATION",
            (None, true) => "exhausted, no violations",
            (None, false) => "INCOMPLETE (state cap)",
        };
        println!(
            "scope={:<8} sym={} states={:>9} transitions={:>10} depth={:>3} \
             peak_frontier={:>8} wall={secs:>7.2}s  {verdict}",
            report.scope_name,
            if limits.symmetry { "on " } else { "off" },
            report.explored,
            report.transitions,
            report.max_depth,
            report.peak_frontier,
        );
        if let Some(cex) = &report.violation {
            let rendered = cex.render(&scope);
            eprintln!("{rendered}");
            if let Err(e) = dump_bundle(&dump_dir, &scope, &rendered, &cex.corpus_line()) {
                eprintln!("failed to write counterexample bundle: {e}");
            }
            worst = ExitCode::from(1);
        } else if !report.complete && worst == ExitCode::SUCCESS {
            worst = ExitCode::from(2);
        }
        if report.complete && report.violation.is_none() {
            // Timing-free, machine-stable: what CI diffs against
            // tests/mc_digest.txt.
            digest.push_str(&format!(
                "scope={} sym={} states={} transitions={} depth={}\n",
                report.scope_name,
                if limits.symmetry { "on" } else { "off" },
                report.explored,
                report.transitions,
                report.max_depth,
            ));
        }
    }
    if let Some(path) = digest_path {
        if let Err(e) = std::fs::write(&path, &digest) {
            eprintln!("failed to write digest {path}: {e}");
            return ExitCode::from(3);
        }
    }
    worst
}

/// Writes `<dump_dir>/mc-<scope>.txt` with the rendered trace and the
/// replayable corpus line (the artifact CI uploads on failure).
fn dump_bundle(
    dump_dir: &str,
    scope: &Scope,
    rendered: &str,
    corpus_line: &str,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dump_dir)?;
    let path = format!("{dump_dir}/mc-{}.txt", scope.name);
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{rendered}")?;
    writeln!(f, "replay: add this line to tests/chaos_corpus.txt")?;
    writeln!(f, "{corpus_line}")?;
    eprintln!("counterexample bundle written to {path}");
    Ok(())
}
