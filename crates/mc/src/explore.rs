//! Breadth-first exhaustive exploration with canonical-state dedup.
//!
//! The explorer runs BFS over [`ModelState`]s. Visited states are
//! remembered by a 128-bit fingerprint (two independently-seeded 64-bit
//! FxHash streams — a single 64-bit hash at ~10⁶ states leaves a small
//! but real chance of a collision silently pruning a reachable state);
//! the frontier holds full states so successors are generated from real
//! objects, never reconstructed.
//!
//! **Symmetry reduction** (optional): node ids are interchangeable in
//! every scope (same config, same seed), so the canonical fingerprint
//! can be taken as the minimum over all `3! = 6` id permutations. This
//! is an accelerator, *not* part of the soundness claim: the JBSQ
//! replier tie-break draws an rng value to index an id-*sorted*
//! candidate list, and positional indexing does not commute with id
//! renaming — two symmetric states can in principle diverge in which
//! physical node a tie lands on. The exhaustive-verification claim in CI
//! therefore rests on the plain (no-symmetry) run; the symmetric count
//! is pinned alongside it as a drift tripwire. See DESIGN.md §15.
//!
//! Counterexamples are reconstructed from parent pointers: each first
//! discovery records `(parent fingerprint, action)`, so a violating
//! state unwinds to the exact action trace from the initial state, which
//! replays deterministically (and is what `mc:` corpus lines hold).

use std::collections::VecDeque;
use std::hash::Hasher;

use fxhash::{FxHashMap, FxHasher};
use testbed::invariants::predicates::Mutation;

use crate::model::{McAction, ModelState};
use crate::scope::{Scope, N_NODES};

/// A 128-bit state fingerprint.
pub type Fp = u128;

/// Two independently-seeded hash streams presented as one `Hasher`.
struct Fp2 {
    a: FxHasher,
    b: FxHasher,
}

impl Fp2 {
    fn new() -> Fp2 {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0x9e37_79b9_7f4a_7c15);
        b.write_u64(0xc2b2_ae3d_27d4_eb4f);
        Fp2 { a, b }
    }
    fn finish(self) -> Fp {
        ((self.a.finish() as u128) << 64) | self.b.finish() as u128
    }
}

impl Hasher for Fp2 {
    fn finish(&self) -> u64 {
        self.a.finish()
    }
    fn write(&mut self, bytes: &[u8]) {
        self.a.write(bytes);
        self.b.write(bytes);
    }
}

/// All `3! = 6` permutations of the node ids.
const PERMS: [[u32; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// Fingerprints `state` under `scope`'s reordering window,
/// canonicalizing over id permutations when `symmetry` is set. Only
/// permutations preserving the candidate / non-candidate partition are
/// considered — nodes with different election-timer configs are not
/// interchangeable.
pub fn fingerprint(state: &ModelState, scope: &Scope, symmetry: bool) -> Fp {
    let window = scope.reorder_window;
    if !symmetry {
        let mut h = Fp2::new();
        state.hash_state(&mut h, &|id| id, window);
        return h.finish();
    }
    let c = scope.candidates as u32;
    PERMS
        .iter()
        .filter(|p| (0..N_NODES).all(|i| (i < c) == (p[i as usize] < c)))
        .map(|p| {
            let mut h = Fp2::new();
            state.hash_state(
                &mut h,
                &|id| {
                    if id < N_NODES {
                        p[id as usize]
                    } else {
                        id
                    }
                },
                window,
            );
            h.finish()
        })
        .min()
        .expect("identity permutation always qualifies")
}

/// A counterexample: the exact action trace from the initial state to a
/// violating one.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Scope the trace belongs to.
    pub scope_name: &'static str,
    /// Mutation active during the run (`None` for real violations).
    pub mutation: Mutation,
    /// Actions from the initial state; the last one triggers the
    /// violation.
    pub trace: Vec<McAction>,
    /// What broke, as reported at the point of detection.
    pub violation: String,
}

impl Counterexample {
    /// The replayable corpus form: `mc:<scope>[+mut-replier]:<actions>`.
    pub fn corpus_line(&self) -> String {
        let acts: Vec<String> = self.trace.iter().map(|a| a.to_string()).collect();
        let mutation = match self.mutation {
            Mutation::None => "",
            Mutation::BreakReplierImmutability => "+mut-replier",
        };
        format!("mc:{}{}:{}", self.scope_name, mutation, acts.join("."))
    }

    /// A human-readable rendering: each action annotated with the state
    /// it produces, obtained by replaying the trace.
    pub fn render(&self, scope: &Scope) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "counterexample in scope '{}' ({} actions): {}\n",
            self.scope_name,
            self.trace.len(),
            self.violation
        ));
        let mut state = ModelState::init(scope);
        out.push_str(&format!("  init: {}\n", state.describe()));
        for (i, &a) in self.trace.iter().enumerate() {
            let what = match a {
                McAction::Deliver(i) | McAction::Duplicate(i) | McAction::Drop(i) => {
                    format!("{a} [{}]", state.describe_env(i))
                }
                _ => a.to_string(),
            };
            let r = state.apply(scope, a, self.mutation);
            out.push_str(&format!("  {i:>3}. {what:<40} {}\n", state.describe()));
            if let Err(v) = r {
                out.push_str(&format!("  send-time violation: {}\n", v.0));
            }
        }
        out.push_str(&format!("  corpus: {}\n", self.corpus_line()));
        out
    }
}

/// Exploration limits beyond the scope's own budgets.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Stop (incomplete) after this many explored states.
    pub max_states: usize,
    /// Canonicalize fingerprints over node-id permutations.
    pub symmetry: bool,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 20_000_000,
            symmetry: false,
        }
    }
}

/// The result of one exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Scope explored.
    pub scope_name: &'static str,
    /// Unique states expanded (including the initial state).
    pub explored: usize,
    /// Transitions taken (successor generations).
    pub transitions: usize,
    /// Deepest BFS layer reached.
    pub max_depth: usize,
    /// Peak frontier size.
    pub peak_frontier: usize,
    /// True when the frontier drained without hitting `max_states`.
    pub complete: bool,
    /// The first violation found, if any (BFS order: a shortest trace).
    pub violation: Option<Counterexample>,
}

/// Exhaustively explores `scope` from its initial state.
pub fn explore(scope: &Scope, mutation: Mutation, limits: Limits) -> Report {
    let init = ModelState::init(scope);
    let init_fp = fingerprint(&init, scope, limits.symmetry);
    // fp -> (parent fp, action that reached it). The root maps to itself.
    let mut visited: FxHashMap<Fp, (Fp, McAction)> = FxHashMap::default();
    visited.insert(init_fp, (init_fp, McAction::ClientReq));
    let mut frontier: VecDeque<(ModelState, Fp, usize)> = VecDeque::new();
    frontier.push_back((init, init_fp, 0));

    let mut report = Report {
        scope_name: scope.name,
        explored: 0,
        transitions: 0,
        max_depth: 0,
        peak_frontier: 1,
        complete: false,
        violation: None,
    };

    let trace_to = |visited: &FxHashMap<Fp, (Fp, McAction)>, mut fp: Fp, last: McAction| {
        let mut acts = vec![last];
        while fp != init_fp {
            let &(parent, act) = visited.get(&fp).expect("visited chain");
            acts.push(act);
            fp = parent;
        }
        acts.reverse();
        acts
    };

    while let Some((state, fp, depth)) = frontier.pop_front() {
        report.explored += 1;
        report.max_depth = report.max_depth.max(depth);
        if report.explored.is_multiple_of(100_000) {
            eprintln!(
                "  .. explored={} depth={} frontier={} net={} [{}]",
                report.explored,
                depth,
                frontier.len(),
                state.net_len(),
                state.describe()
            );
        }
        if report.explored >= limits.max_states {
            return report; // incomplete
        }
        for action in state.enabled(scope) {
            report.transitions += 1;
            let mut next = state.clone();
            let send_verdict = next.apply(scope, action, mutation);
            let verdict =
                send_verdict.and_then(|()| next.check_invariants(&state, scope, mutation));
            if let Err(v) = verdict {
                report.violation = Some(Counterexample {
                    scope_name: scope.name,
                    mutation,
                    trace: trace_to(&visited, fp, action),
                    violation: v.0,
                });
                return report;
            }
            let nfp = fingerprint(&next, scope, limits.symmetry);
            if let std::collections::hash_map::Entry::Vacant(e) = visited.entry(nfp) {
                e.insert((fp, action));
                frontier.push_back((next, nfp, depth + 1));
                report.peak_frontier = report.peak_frontier.max(frontier.len() + 1);
            }
        }
    }
    report.complete = true;
    report
}

/// Replays a recorded action trace from the initial state of `scope`,
/// checking every invariant along the way. Returns the violation hit
/// (with the 0-based index of the offending action) or `Ok` when the
/// whole trace is clean.
pub fn replay(
    scope: &Scope,
    mutation: Mutation,
    trace: &[McAction],
) -> Result<(), (usize, String)> {
    let mut state = ModelState::init(scope);
    for (i, &a) in trace.iter().enumerate() {
        // A recorded trace replayed against a drifted model (or a
        // hand-mangled corpus line) can reference structure that no
        // longer exists; report that as a replay error, don't panic.
        let applicable = match a {
            McAction::Deliver(e) | McAction::Duplicate(e) | McAction::Drop(e) => {
                e < state.net_len()
            }
            McAction::Crash(n) | McAction::Tick(n) => state.is_alive(n),
            McAction::Restart(n) => !state.is_alive(n) && n < N_NODES,
            McAction::ClientReq => true,
        };
        if !applicable {
            return Err((
                i,
                format!("action {a} is not applicable in the replayed state"),
            ));
        }
        let pre = state.clone();
        state
            .apply(scope, a, mutation)
            .and_then(|()| state.check_invariants(&pre, scope, mutation))
            .map_err(|v| (i, v.0))?;
    }
    Ok(())
}
