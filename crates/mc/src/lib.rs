//! `mc` — an explicit-state model checker for the HovercRaft core.
//!
//! This crate exhaustively explores every reachable state of a small
//! HovercRaft cluster — the *real* sans-io [`hovercraft::HcNode`] /
//! `raft` / [`hovercraft::Aggregator`] state machines, not an abstract
//! respecification — under bounded message reordering, duplication,
//! loss, and crash–restart, checking the same invariant predicates the
//! runtime [`testbed::InvariantChecker`] enforces over chaos runs
//! ([`testbed::invariants::predicates`]).
//!
//! Where the chaos suite samples deep executions of a big random space,
//! the checker *proves* the absence of invariant violations over the
//! complete small-scope space: every interleaving of every enabled
//! action. The two share their invariant definitions and their corpus
//! file, so a counterexample found here becomes a deterministic `mc:`
//! regression seed next to the chaos seeds (see [`corpus`]).
//!
//! Layout:
//!
//! * [`scope`] — the finite parameterizations (budgets, mode, timing);
//! * [`model`] — system state, actions, transition semantics, invariant
//!   evaluation;
//! * [`explore`] — BFS with 128-bit canonical fingerprints, optional
//!   node-id symmetry reduction, and parent-pointer counterexample
//!   traces;
//! * [`corpus`] — `mc:<scope>:<trace>` seed encode/parse/replay.
//!
//! The `mc_explore` binary drives exploration from CI (see the `mc` job)
//! and dumps counterexample bundles on failure.

pub mod corpus;
pub mod explore;
pub mod model;
pub mod scope;

pub use corpus::{parse_corpus, CorpusSeed};
pub use explore::{explore, fingerprint, replay, Counterexample, Limits, Report};
pub use model::{McAction, ModelState};
pub use scope::Scope;
