//! The small-scope HovercRaft cluster model: state, actions, transition
//! semantics, and invariant evaluation.
//!
//! The model drives the *real* sans-io state machines — [`HcNode`], the
//! raft core underneath it, and (in `hcpp` scopes) the switch
//! [`Aggregator`] — with the checker playing the role the simulation
//! harness plays in the chaos suite: it owns the clocks and the wires.
//! Two deliberate reductions keep the space tractable without hiding
//! protocol behavior:
//!
//! * **Synchronous execution**: an [`Output::Execute`] is completed
//!   (FIFO) before the action that produced it returns, modeling an
//!   infinitely fast application thread. Apply-pipeline interleavings are
//!   the chaos suite's department; the checker targets message-level
//!   interleaving, duplication, loss, and crash–restart.
//! * **Client absorption**: packets to the client address are consumed at
//!   send time (recording replies for the exactly-one-reply invariant)
//!   instead of entering the in-flight set — a client is a sink, not a
//!   state machine.
//!
//! Every invariant verdict is delegated to
//! [`testbed::invariants::predicates`], the same predicate set the
//! runtime [`InvariantChecker`](testbed::InvariantChecker) enforces over
//! chaos runs.

use std::fmt;

use bytes::{ByteArena, Bytes};
use hovercraft::{Aggregator, DurableState, EchoService, HcNode, Mode, OpKind, Output, WireMsg};
use r2p2::ReqId;
use testbed::invariants::predicates::{self, Mutation, ReplierStep};

use crate::scope::{Scope, AGG_ADDR, CLIENT_ADDR, N_NODES, TICK_QUANTUM};

// Node entry points want the world's buffer arena; the checker has no world,
// and `ModelState` must stay a cheap Clone (the explorer stores millions).
// One per-thread scratch arena serves every transition instead — replies are
// tiny EchoService bodies, and determinism does not depend on pooling.
thread_local! {
    static SCRATCH_ARENA: std::cell::RefCell<ByteArena> =
        std::cell::RefCell::new(ByteArena::new());
}

fn with_arena<R>(f: impl FnOnce(&mut ByteArena) -> R) -> R {
    SCRATCH_ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// One schedulable step of the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McAction {
    /// Inject the next client command (multicast to every live node).
    ClientReq,
    /// Deliver in-flight envelope `i` (removing it).
    Deliver(usize),
    /// Re-deliver in-flight envelope `i` without removing it.
    Duplicate(usize),
    /// Drop in-flight envelope `i` without delivering it.
    Drop(usize),
    /// Advance node `n`'s clock by one quantum and run its periodic tick.
    Tick(u32),
    /// Crash node `n`, capturing its durable state.
    Crash(u32),
    /// Restart a crashed node `n` from its durable state.
    Restart(u32),
}

impl fmt::Display for McAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McAction::ClientReq => write!(f, "q"),
            McAction::Deliver(i) => write!(f, "d{i}"),
            McAction::Duplicate(i) => write!(f, "u{i}"),
            McAction::Drop(i) => write!(f, "x{i}"),
            McAction::Tick(n) => write!(f, "t{n}"),
            McAction::Crash(n) => write!(f, "c{n}"),
            McAction::Restart(n) => write!(f, "r{n}"),
        }
    }
}

impl McAction {
    /// Parses the compact form produced by `Display` (`q`, `d3`, `t1`, …).
    pub fn parse(s: &str) -> Option<McAction> {
        if s == "q" {
            return Some(McAction::ClientReq);
        }
        let (op, num) = s.split_at(1);
        let v: usize = num.parse().ok()?;
        Some(match op {
            "d" => McAction::Deliver(v),
            "u" => McAction::Duplicate(v),
            "x" => McAction::Drop(v),
            "t" => McAction::Tick(v as u32),
            "c" => McAction::Crash(v as u32),
            "r" => McAction::Restart(v as u32),
            _ => return None,
        })
    }
}

/// An in-flight packet.
#[derive(Clone, PartialEq)]
pub struct Env {
    /// Sender's network address.
    pub src: u32,
    /// Destination network address.
    pub dst: u32,
    /// The packet.
    pub msg: WireMsg,
}

/// First (and authoritative) reply observed for one client request.
#[derive(Clone, Copy, PartialEq, Eq)]
struct ReplyRec {
    id: u64,
    node: u32,
    epoch: u64,
}

/// A violated invariant, described at the point of detection.
#[derive(Clone, Debug)]
pub struct ViolationMsg(pub String);

/// The full system state the checker branches on.
#[derive(Clone)]
pub struct ModelState {
    /// Live nodes (`None` = crashed).
    nodes: Vec<Option<HcNode<EchoService>>>,
    /// Durable state captured at crash time, consumed by `Restart`.
    durable: Vec<Option<DurableState>>,
    /// The switch aggregator (`hcpp` scopes only).
    agg: Option<Aggregator>,
    /// Per-node logical clock (nodes never compare clocks).
    clock: Vec<u64>,
    /// In-flight packets, in deterministic append order.
    net: Vec<Env>,
    next_client: u8,
    dup_used: u8,
    drop_used: u8,
    crash_used: u8,
    ticks_used: Vec<u8>,
    /// First reply per request id (invariant 6 bookkeeping).
    replies: Vec<ReplyRec>,
}

impl ModelState {
    /// The initial state of a scope: three fresh followers, empty wires.
    /// When the scope sets `pre_elect`, a deterministic prologue (tick
    /// node 0 until its election fires, then deliver FIFO until
    /// quiescent) runs here, outside the explored space: election
    /// interleavings are the `elect` scope's job, and starting the other
    /// scopes from a stable leader keeps the two spaces from
    /// multiplying. The prologue spends no scope budgets.
    pub fn init(scope: &Scope) -> ModelState {
        let nodes = (0..N_NODES)
            .map(|n| Some(HcNode::new(scope.cfg(n), EchoService::default(), 0)))
            .collect();
        let mut st = ModelState {
            nodes,
            durable: vec![None; N_NODES as usize],
            agg: (scope.mode == Mode::HovercraftPp)
                .then(|| Aggregator::new((0..N_NODES).collect())),
            clock: vec![0; N_NODES as usize],
            net: Vec::new(),
            next_client: 0,
            dup_used: 0,
            drop_used: 0,
            crash_used: 0,
            ticks_used: vec![0; N_NODES as usize],
            replies: Vec::new(),
        };
        if scope.pre_elect {
            let mut steps = 0;
            while !(st.nodes[0].as_ref().is_some_and(|n| n.is_leader()) && st.net.is_empty()) {
                let act = if st.net.is_empty() {
                    McAction::Tick(0)
                } else {
                    McAction::Deliver(0)
                };
                st.apply(scope, act, Mutation::None)
                    .expect("election prologue cannot violate invariants");
                steps += 1;
                assert!(steps < 200, "election prologue failed to converge");
            }
            st.ticks_used = vec![0; N_NODES as usize];
        }
        st
    }

    /// In-flight packet count (used by tests and the explorer).
    pub fn net_len(&self) -> usize {
        self.net.len()
    }

    /// Number of distinct client requests that have received a reply.
    pub fn reply_count(&self) -> usize {
        self.replies.len()
    }

    /// True when node `n` exists and is not crashed.
    pub fn is_alive(&self, n: u32) -> bool {
        (n as usize) < self.nodes.len() && self.nodes[n as usize].is_some()
    }

    /// Enumerates every action enabled in this state, in the canonical
    /// order that defines counterexample traces. Only envelopes inside
    /// the scope's reordering window (the first `reorder_window`
    /// in-flight packets) are schedulable, and identical ones are
    /// deduplicated: delivering (or dropping, or doubling) either copy
    /// reaches the same successor.
    pub fn enabled(&self, scope: &Scope) -> Vec<McAction> {
        let mut acts = Vec::new();
        // Client command `k` is injectable once a leader has applied the
        // previous command. The *replication tail* of command `k-1`
        // (AppendEntries, acks, commit notifications, body deliveries to
        // followers) still races freely with command `k` — only the
        // client-side injection is sequenced, which is how a closed-loop
        // client behaves and what keeps two multicast commands from
        // multiplying each other's full interleaving spaces.
        if self.next_client < scope.client_reqs
            && (self.next_client == 0
                || self
                    .nodes
                    .iter()
                    .flatten()
                    .any(|nd| nd.is_leader() && nd.applied_index() >= self.next_client as u64))
        {
            acts.push(McAction::ClientReq);
        }
        let w = scope.reorder_window.min(self.net.len());
        let mut firsts: Vec<usize> = Vec::with_capacity(w);
        for i in 0..w {
            if !firsts.iter().any(|&j| self.net[j] == self.net[i]) {
                firsts.push(i);
            }
        }
        for &i in &firsts {
            acts.push(McAction::Deliver(i));
        }
        if self.dup_used < scope.dup_budget {
            for &i in &firsts {
                acts.push(McAction::Duplicate(i));
            }
        }
        if self.drop_used < scope.drop_budget {
            for &i in &firsts {
                acts.push(McAction::Drop(i));
            }
        }
        // Only candidate nodes tick: with retries and GC quiescent a
        // non-candidate's tick is a no-op that would only split states
        // on its clock value.
        for n in 0..scope.candidates as u32 {
            if self.nodes[n as usize].is_some() && self.ticks_used[n as usize] < scope.tick_budget {
                acts.push(McAction::Tick(n));
            }
        }
        if self.crash_used < scope.crash_budget {
            for n in 0..N_NODES {
                if self.nodes[n as usize].is_some() {
                    acts.push(McAction::Crash(n));
                }
            }
        }
        for n in 0..N_NODES {
            if self.nodes[n as usize].is_none() {
                acts.push(McAction::Restart(n));
            }
        }
        acts
    }

    /// Applies `action` in place. Returns `Err` the moment a send-time
    /// invariant (exactly-one reply) breaks; state invariants are checked
    /// separately by [`ModelState::check_invariants`].
    pub fn apply(
        &mut self,
        scope: &Scope,
        action: McAction,
        mutation: Mutation,
    ) -> Result<(), ViolationMsg> {
        match action {
            McAction::ClientReq => {
                let k = self.next_client;
                self.next_client += 1;
                let id = ReqId::new(CLIENT_ADDR, 7, k as u16);
                let kind = if scope.ro_second && k == 1 {
                    OpKind::ReadOnly
                } else {
                    OpKind::ReadWrite
                };
                let body = Bytes::from(vec![b'k', k]);
                for n in 0..N_NODES as usize {
                    if self.nodes[n].is_some() {
                        let now = self.clock[n];
                        let outs = with_arena(|arena| {
                            let mut outs = Vec::new();
                            self.nodes[n].as_mut().expect("live").on_message(
                                CLIENT_ADDR,
                                WireMsg::Request {
                                    id,
                                    kind,
                                    body: body.clone(),
                                },
                                now,
                                &mut outs,
                                arena,
                            );
                            outs
                        });
                        self.run_outputs(n as u32, outs)?;
                    }
                }
                Ok(())
            }
            McAction::Deliver(i) => {
                let env = self.net.remove(i);
                self.deliver(env)
            }
            McAction::Duplicate(i) => {
                self.dup_used += 1;
                let env = self.net[i].clone();
                self.deliver(env)
            }
            McAction::Drop(i) => {
                self.drop_used += 1;
                self.net.remove(i);
                Ok(())
            }
            McAction::Tick(n) => {
                let n = n as usize;
                self.ticks_used[n] += 1;
                self.clock[n] += TICK_QUANTUM;
                let now = self.clock[n];
                if self.nodes[n].is_some() {
                    let outs = with_arena(|arena| {
                        let mut outs = Vec::new();
                        self.nodes[n]
                            .as_mut()
                            .expect("live")
                            .tick(now, &mut outs, arena);
                        outs
                    });
                    self.run_outputs(n as u32, outs)?;
                }
                let _ = mutation;
                Ok(())
            }
            McAction::Crash(n) => {
                let n = n as usize;
                self.crash_used += 1;
                let node = self.nodes[n].take().expect("crash of a live node");
                self.durable[n] = Some(node.durable_state());
                Ok(())
            }
            McAction::Restart(n) => {
                let n = n as usize;
                let durable = self.durable[n].take().expect("restart of a crashed node");
                let epoch = durable.epoch + 1;
                let node = HcNode::restore(
                    scope.cfg(n as u32),
                    EchoService::default(),
                    self.clock[n],
                    durable,
                    epoch,
                )
                .expect("epoch+1 restore cannot be rejected");
                self.nodes[n] = Some(node);
                Ok(())
            }
        }
    }

    /// Routes one envelope to its destination and runs the effects.
    fn deliver(&mut self, env: Env) -> Result<(), ViolationMsg> {
        if env.dst == AGG_ADDR {
            if let Some(agg) = self.agg.as_mut() {
                let emitted = agg.on_packet(env.src, env.msg);
                for (dst, msg) in emitted {
                    self.net.push(Env {
                        src: AGG_ADDR,
                        dst,
                        msg,
                    });
                }
            }
            return Ok(());
        }
        let n = env.dst as usize;
        if n >= self.nodes.len() || self.nodes[n].is_none() {
            // A packet to a crashed node dies at the dead NIC.
            return Ok(());
        }
        let now = self.clock[n];
        let outs = with_arena(|arena| {
            let mut outs = Vec::new();
            self.nodes[n]
                .as_mut()
                .expect("live")
                .on_message(env.src, env.msg, now, &mut outs, arena);
            outs
        });
        self.run_outputs(env.dst, outs)
    }

    /// Carries out a node's outputs: sends enter the in-flight set (or
    /// are absorbed, for the client sink), executions complete
    /// synchronously in FIFO order.
    fn run_outputs(&mut self, src: u32, outputs: Vec<Output>) -> Result<(), ViolationMsg> {
        let mut queue = std::collections::VecDeque::from(outputs);
        while let Some(out) = queue.pop_front() {
            match out {
                Output::Send { dst, msg } => {
                    if dst == CLIENT_ADDR {
                        if let WireMsg::Response { id, .. } = &msg {
                            self.record_reply(src, id.as_u64())?;
                        }
                        // Nacks and responses are absorbed by the client.
                    } else {
                        self.net.push(Env { src, dst, msg });
                    }
                }
                Output::Execute { index, .. } => {
                    let n = src as usize;
                    let now = self.clock[n];
                    let more = with_arena(|arena| {
                        let mut more = Vec::new();
                        self.nodes[n]
                            .as_mut()
                            .expect("executing node is live")
                            .on_exec_done(index, now, &mut more, arena);
                        more
                    });
                    // FIFO: effects of this completion run before any
                    // later queued execution.
                    for (k, o) in more.into_iter().enumerate() {
                        queue.insert(k, o);
                    }
                }
            }
        }
        Ok(())
    }

    /// Invariant 6 at send time: exactly-one reply per request, with the
    /// restart carve-out (same node, strictly higher incarnation).
    fn record_reply(&mut self, node: u32, id: u64) -> Result<(), ViolationMsg> {
        let epoch = self.nodes[node as usize]
            .as_ref()
            .map(|nd| nd.epoch())
            .unwrap_or(0);
        if let Some(rec) = self.replies.iter_mut().find(|r| r.id == id) {
            if !predicates::duplicate_reply_ok(rec.node, rec.epoch, node, epoch) {
                return Err(ViolationMsg(format!(
                    "exactly-one-reply: request {id:#x} answered by node {} (epoch {}) \
                     and again by node {node} (epoch {epoch})",
                    rec.node, rec.epoch
                )));
            }
            rec.node = node;
            rec.epoch = epoch;
        } else {
            self.replies.push(ReplyRec { id, node, epoch });
        }
        Ok(())
    }

    /// Checks every state and transition invariant of the post-state
    /// against `pre` (the state before the action).
    pub fn check_invariants(
        &self,
        pre: &ModelState,
        scope: &Scope,
        mutation: Mutation,
    ) -> Result<(), ViolationMsg> {
        for n in 0..N_NODES as usize {
            let Some(node) = self.nodes[n].as_ref() else {
                continue;
            };
            let (commit, applied, snap) = (
                node.raft().commit_index(),
                node.applied_index(),
                node.snapshot_index(),
            );
            if !predicates::apply_bound_ok(applied, commit) {
                return Err(ViolationMsg(format!(
                    "apply bound: node {n} applied {applied} > commit {commit}"
                )));
            }
            if !predicates::snapshot_bound_ok(snap, applied) {
                return Err(ViolationMsg(format!(
                    "snapshot bound: node {n} snapshot {snap} > applied {applied}"
                )));
            }
            // Within one incarnation, watermarks never regress and a
            // stamped replier never changes.
            if let Some(prev) = pre.nodes[n].as_ref().filter(|p| p.epoch() == node.epoch()) {
                for (what, was, is) in [
                    ("commit", prev.raft().commit_index(), commit),
                    ("applied", prev.applied_index(), applied),
                    ("snapshot", prev.snapshot_index(), snap),
                ] {
                    if !predicates::monotone_ok(was, is) {
                        return Err(ViolationMsg(format!(
                            "monotonicity: node {n} {what} regressed {was} -> {is}"
                        )));
                    }
                }
                let plog = prev.raft().log();
                let log = node.raft().log();
                for idx in log.first_index()..=log.last_index() {
                    let Some(cur) = log.get(idx) else { continue };
                    let seen = plog.get(idx).map(|e| (e.term, e.cmd.desc.replier));
                    let step =
                        predicates::replier_step(seen, (cur.term, cur.cmd.desc.replier), mutation);
                    if step == ReplierStep::Violation {
                        return Err(ViolationMsg(format!(
                            "replier immutability: node {n} entry {idx} (term {}) replier \
                             changed {:?} -> {:?}",
                            cur.term,
                            seen.and_then(|s| s.1),
                            cur.cmd.desc.replier
                        )));
                    }
                }
            }
            // Bounded replier queues on the leader (§3.4).
            if node.is_leader() {
                for m in 0..N_NODES {
                    let depth = node.queue_depth(m);
                    if !predicates::queue_depth_ok(depth, scope.bound, 0) {
                        return Err(ViolationMsg(format!(
                            "bounded queue: leader {n} holds {depth} outstanding for node {m} \
                             (B = {})",
                            scope.bound
                        )));
                    }
                }
            }
        }
        // Pairwise log agreement between live nodes.
        for a in 0..N_NODES as usize {
            for b in (a + 1)..N_NODES as usize {
                let (Some(na), Some(nb)) = (self.nodes[a].as_ref(), self.nodes[b].as_ref()) else {
                    continue;
                };
                let (la, lb) = (na.raft().log(), nb.raft().log());
                let lo = la.first_index().max(lb.first_index());
                let hi = la.last_index().min(lb.last_index());
                let min_commit = na.raft().commit_index().min(nb.raft().commit_index());
                for idx in lo..=hi {
                    let (Some(ea), Some(eb)) = (la.get(idx), lb.get(idx)) else {
                        continue;
                    };
                    if idx <= min_commit {
                        if !predicates::committed_prefix_ok(ea, eb) {
                            return Err(ViolationMsg(format!(
                                "committed-prefix agreement: nodes {a}/{b} disagree at \
                                 committed index {idx}"
                            )));
                        }
                    } else if !predicates::log_matching_ok(ea, eb) {
                        return Err(ViolationMsg(format!(
                            "log matching: nodes {a}/{b} same term, different entry at \
                             index {idx}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Feeds the whole system state into `h` under an id renaming.
    /// Per-node clocks are *not* hashed: nodes never compare clocks, and
    /// each node's own timers are hashed relative to its clock. `window`
    /// must be the scope's `reorder_window` — it decides how much of the
    /// in-flight queue's order is semantically irrelevant.
    pub fn hash_state(
        &self,
        h: &mut dyn std::hash::Hasher,
        rename: &dyn Fn(u32) -> u32,
        window: usize,
    ) {
        // Present nodes in *renamed* order: the hash of the permuted
        // state must equal the hash a physically-permuted state would
        // produce, so slot `k` of the stream must carry the node whose
        // renamed id is `k`.
        let mut order: Vec<usize> = (0..N_NODES as usize).collect();
        order.sort_by_key(|&n| rename(n as u32));
        for n in order {
            match (&self.nodes[n], &self.durable[n]) {
                (Some(node), _) => {
                    h.write_u8(1);
                    node.hash_state(self.clock[n], h, rename);
                }
                (None, Some(d)) => {
                    h.write_u8(2);
                    h.write_u64(d.term);
                    match d.voted_for {
                        Some(v) => {
                            h.write_u8(1);
                            h.write_u32(rename(v));
                        }
                        None => h.write_u8(0),
                    }
                    h.write_u64(d.snap_index);
                    h.write_u64(d.snap_term);
                    h.write(&d.snapshot);
                    h.write_usize(d.entries.len());
                    for e in &d.entries {
                        use raft::HashState;
                        e.hash_state(h, &|id| rename(id));
                    }
                    h.write_u64(d.epoch);
                }
                (None, None) => h.write_u8(0),
            }
        }
        if let Some(agg) = &self.agg {
            h.write_u8(1);
            agg.hash_state(h, &|id| rename(id));
        } else {
            h.write_u8(0);
        }
        // The reordering window is a *set* — any of its envelopes can be
        // scheduled next, and removing one slides the tail head in, so
        // two states whose windows hold the same envelopes in different
        // positions are bisimilar. Canonicalize: sorted sub-hashes for
        // the window, arrival order for the tail (whose order *is*
        // observable as it feeds the window).
        let mut sub: Vec<u64> = self
            .net
            .iter()
            .map(|e| {
                use std::hash::Hasher;
                let mut eh = fxhash::FxHasher::default();
                eh.write_u32(rename_addr(e.src, rename));
                eh.write_u32(rename_addr(e.dst, rename));
                use raft::HashState;
                e.msg.hash_state(&mut eh, &|id| rename(id));
                eh.finish()
            })
            .collect();
        let w = window.min(sub.len());
        sub[..w].sort_unstable();
        h.write_usize(sub.len());
        for s in sub {
            h.write_u64(s);
        }
        h.write_u8(self.next_client);
        h.write_u8(self.dup_used);
        h.write_u8(self.drop_used);
        h.write_u8(self.crash_used);
        // Tick budgets are per physical node and follow the renaming.
        let mut ticks: Vec<(u32, u8)> = (0..N_NODES)
            .map(|n| (rename(n), self.ticks_used[n as usize]))
            .collect();
        ticks.sort_unstable();
        for (_, t) in ticks {
            h.write_u8(t);
        }
        let mut reps: Vec<(u64, u32, u64)> = self
            .replies
            .iter()
            .map(|r| (r.id, rename(r.node), r.epoch))
            .collect();
        reps.sort_unstable();
        h.write_usize(reps.len());
        for (id, node, epoch) in reps {
            h.write_u64(id);
            h.write_u32(node);
            h.write_u64(epoch);
        }
    }

    /// Summarizes the state for human-readable traces.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for n in 0..N_NODES as usize {
            match &self.nodes[n] {
                Some(node) => parts.push(format!(
                    "n{n}[{:?} t{} c{} a{}]",
                    node.role(),
                    node.raft().term(),
                    node.raft().commit_index(),
                    node.applied_index()
                )),
                None => parts.push(format!("n{n}[down]")),
            }
        }
        format!("{} net={}", parts.join(" "), self.net.len())
    }

    /// One-line description of in-flight envelope `i` (for traces).
    pub fn describe_env(&self, i: usize) -> String {
        let e = &self.net[i];
        format!("{} -> {}: {}", e.src, e.dst, wire_kind(&e.msg))
    }
}

/// Renames member addresses, passing non-member addresses (client,
/// aggregator) through unchanged.
fn rename_addr(addr: u32, rename: &dyn Fn(u32) -> u32) -> u32 {
    if addr < N_NODES {
        rename(addr)
    } else {
        addr
    }
}

/// Short human-readable tag for a wire message.
pub fn wire_kind(msg: &WireMsg) -> &'static str {
    use raft::Message;
    match msg {
        WireMsg::Request { .. } => "Request",
        WireMsg::Response { .. } => "Response",
        WireMsg::Nack { .. } => "Nack",
        WireMsg::Feedback => "Feedback",
        WireMsg::Raft(Message::PreVote { .. }) => "PreVote",
        WireMsg::Raft(Message::PreVoteReply { .. }) => "PreVoteReply",
        WireMsg::Raft(Message::RequestVote { .. }) => "RequestVote",
        WireMsg::Raft(Message::RequestVoteReply { .. }) => "RequestVoteReply",
        WireMsg::Raft(Message::AppendEntries { .. }) => "AppendEntries",
        WireMsg::Raft(Message::AppendEntriesReply { .. }) => "AppendEntriesReply",
        WireMsg::RecoveryReq { .. } => "RecoveryReq",
        WireMsg::RecoveryRep { .. } => "RecoveryRep",
        WireMsg::AggCommit { .. } => "AggCommit",
        WireMsg::SnapChunk { .. } => "SnapChunk",
        WireMsg::SnapAck { .. } => "SnapAck",
        WireMsg::VoteProbe { .. } => "VoteProbe",
        WireMsg::VoteProbeRep { .. } => "VoteProbeRep",
    }
}
