//! The `mc:` corpus family: replayable model-checker traces.
//!
//! The chaos corpus (`tests/chaos_corpus.txt`) carries `mc:` lines next
//! to the chaos fault-plan seeds:
//!
//! ```text
//! mc:<scope>:<a1.a2.a3...>              # must replay clean
//! mc:<scope>+mut-replier:<a1.a2...>     # must replay to a violation
//! ```
//!
//! Actions use the compact [`McAction`] display form (`q`, `d3`, `u1`,
//! `x0`, `t2`, `c1`, `r1`). A line with a `+mut-<name>` tag replays
//! under that predicate mutation and is *expected* to end in a reported
//! violation at the final action — these lines pin the
//! counterexample-extraction machinery itself; untagged lines are
//! regression traces that must stay green.

use testbed::invariants::predicates::Mutation;

use crate::explore::replay;
use crate::model::McAction;
use crate::scope::Scope;

/// One parsed `mc:` corpus line.
#[derive(Clone, Debug)]
pub struct CorpusSeed {
    /// The scope the trace runs in.
    pub scope: Scope,
    /// Predicate mutation active during replay.
    pub mutation: Mutation,
    /// The recorded action trace.
    pub trace: Vec<McAction>,
}

impl CorpusSeed {
    /// Parses a single `mc:` line (comments already stripped). Returns
    /// `None` for lines that are not `mc:` seeds.
    pub fn parse(line: &str) -> Option<Result<CorpusSeed, String>> {
        let rest = line.strip_prefix("mc:")?;
        Some(Self::parse_body(rest))
    }

    fn parse_body(rest: &str) -> Result<CorpusSeed, String> {
        let (scope_part, trace_part) = rest
            .split_once(':')
            .ok_or_else(|| format!("mc seed missing ':' separator: {rest:?}"))?;
        let (scope_name, mutation) = match scope_part.split_once('+') {
            Some((s, "mut-replier")) => (s, Mutation::BreakReplierImmutability),
            Some((_, m)) => return Err(format!("unknown mutation tag {m:?}")),
            None => (scope_part, Mutation::None),
        };
        let scope =
            Scope::by_name(scope_name).ok_or_else(|| format!("unknown mc scope {scope_name:?}"))?;
        let mut trace = Vec::new();
        for tok in trace_part.split('.').filter(|t| !t.is_empty()) {
            trace.push(McAction::parse(tok).ok_or_else(|| format!("bad mc action token {tok:?}"))?);
        }
        if trace.is_empty() {
            return Err("empty mc trace".into());
        }
        Ok(CorpusSeed {
            scope,
            mutation,
            trace,
        })
    }

    /// Replays the seed and checks it against its expectation: untagged
    /// seeds must stay green, `+mut-` seeds must end in a violation at
    /// the final recorded action.
    pub fn verify(&self) -> Result<(), String> {
        let outcome = replay(&self.scope, self.mutation, &self.trace);
        match (self.mutation, outcome) {
            (Mutation::None, Ok(())) => Ok(()),
            (Mutation::None, Err((i, v))) => Err(format!(
                "green mc seed violated invariant at action {i}: {v}"
            )),
            (_, Err((i, _))) if i == self.trace.len() - 1 => Ok(()),
            (_, Err((i, v))) => Err(format!(
                "mutation seed violated early (action {i} of {}): {v}",
                self.trace.len() - 1
            )),
            (_, Ok(())) => Err("mutation seed replayed clean; checker did not fire".into()),
        }
    }
}

/// Extracts every `mc:` seed from corpus text (full-line `#` comments
/// and trailing comments stripped, like the chaos corpus parser).
pub fn parse_corpus(text: &str) -> Result<Vec<CorpusSeed>, String> {
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(parsed) = CorpusSeed::parse(line) {
            seeds.push(parsed?);
        }
    }
    Ok(seeds)
}
