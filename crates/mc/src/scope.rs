//! Exploration scopes: the small, finite parameterizations of the
//! HovercRaft cluster the checker exhausts.
//!
//! A scope fixes everything that bounds the reachable state space: the
//! protocol mode, how many client commands enter the system, and the
//! budgets on ticks, duplications, drops, and crash–restarts. The model
//! timing constants are deliberately tiny logical numbers (an election
//! timeout of 10 "ns", a tick quantum of 5) — the sans-io core never
//! compares clocks across nodes, so only the *ratios* matter, and small
//! numbers keep relative-time fingerprints dense.
//!
//! The election jitter window is width-1 (`min = T`, `max = T + 1`), which
//! the raft layer special-cases to skip the rng draw entirely: model
//! fingerprints then do not depend on how many times a node reset its
//! election deadline, without changing behavior (production widths are
//! millions of ns wide).

use hovercraft::{HcConfig, Mode, PolicyKind};

/// Number of nodes in every scope (the smallest cluster with a
/// non-trivial quorum).
pub const N_NODES: u32 = 3;
/// Network address of the HC++ aggregator in `hcpp` scopes.
pub const AGG_ADDR: u32 = 10;
/// Source address all model client requests carry.
pub const CLIENT_ADDR: u32 = 20;
/// Logical time advanced by one `Tick` action. Equal to the election
/// timeout, so *every* candidate tick does protocol work — a tick that
/// only advances a clock would still split states (relative deadlines
/// shift) while adding no behavior.
pub const TICK_QUANTUM: u64 = 20;
/// Model election timeout (width-1 jitter window: no rng draws).
pub const ELECTION_TIMEOUT: u64 = 20;
/// Model heartbeat interval. Half a quantum (the raft config requires
/// it strictly below the election timeout): every leader tick sends a
/// heartbeat.
pub const HEARTBEAT_INTERVAL: u64 = 10;
/// "Never" for model purposes: pool GC, recovery retries, transfer
/// retries, and stall detection all stay quiescent — retries multiply
/// states without adding protocol behavior that deliveries, drops, and
/// duplications do not already exercise.
const NEVER: u64 = 1 << 40;

/// One finite exploration scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scope {
    /// Name used in reports and `mc:<scope>:` corpus lines.
    pub name: &'static str,
    /// Protocol variant under test.
    pub mode: Mode,
    /// Client commands injected (each one multicast to the whole group).
    pub client_reqs: u8,
    /// Nodes `0..candidates` have live election timers; the rest never
    /// time out (they still vote, replicate, and answer). Restricting
    /// who may *start* elections is the classic small-scope reduction
    /// for consensus models: contested elections get their own scope
    /// instead of multiplying every other scope's space.
    pub candidates: u8,
    /// Second client command is read-only (exercises §3.5 replier-only
    /// execution) instead of read-write.
    pub ro_second: bool,
    /// Run a deterministic election prologue before exploration: node 0
    /// is elected and the wires drained, FIFO, outside the explored
    /// space. Election interleavings themselves are the `elect` scope's
    /// job; scopes that target request/fault handling start from a
    /// stable leader so the two spaces do not multiply.
    pub pre_elect: bool,
    /// Reordering window: only the first `reorder_window` in-flight
    /// packets (in arrival order) can be delivered, duplicated, or
    /// dropped. Packets further back become schedulable as the queue
    /// drains. This is the scope's "bounded reordering" bound — the
    /// network may reorder arbitrarily *within* the window and not at
    /// all across it — and the main tractability lever: branching per
    /// state is capped by the window, not by the in-flight count.
    pub reorder_window: usize,
    /// Max `Tick` actions per node.
    pub tick_budget: u8,
    /// Max message duplications (whole run).
    pub dup_budget: u8,
    /// Max message drops (whole run).
    pub drop_budget: u8,
    /// Max crashes (whole run); each crashed node may restart once.
    pub crash_budget: u8,
    /// `HcConfig::snapshot_interval` (0 = snapshotting off).
    pub snapshot_interval: u64,
    /// `HcConfig::snap_chunk_bytes` — small enough to force multi-chunk
    /// transfers in `snap` scopes.
    pub snap_chunk_bytes: usize,
    /// Bounded-queue bound `B` (§3.4).
    pub bound: usize,
}

impl Scope {
    /// The scope explored by default in CI: plain HovercRaft, two client
    /// commands, one duplication, one drop, no crashes.
    pub fn default_scope() -> Scope {
        Scope {
            name: "default",
            mode: Mode::Hovercraft,
            client_reqs: 2,
            candidates: 1,
            ro_second: true,
            pre_elect: true,
            reorder_window: 2,
            tick_budget: 1,
            dup_budget: 1,
            drop_budget: 1,
            crash_budget: 0,
            snapshot_interval: 0,
            snap_chunk_bytes: 16 * 1024,
            bound: 2,
        }
    }

    /// Two contending candidates (split vote / re-election space), one
    /// client command, no message faults. The only scope that explores
    /// elections from cold — everything else starts pre-elected.
    pub fn elect_scope() -> Scope {
        Scope {
            name: "elect",
            mode: Mode::Hovercraft,
            client_reqs: 1,
            candidates: 2,
            ro_second: false,
            pre_elect: false,
            reorder_window: 2,
            tick_budget: 1,
            dup_budget: 0,
            drop_budget: 0,
            crash_budget: 0,
            snapshot_interval: 0,
            snap_chunk_bytes: 16 * 1024,
            bound: 2,
        }
    }

    /// One crash–restart, no message faults.
    pub fn crash_scope() -> Scope {
        Scope {
            name: "crash",
            mode: Mode::Hovercraft,
            client_reqs: 2,
            candidates: 1,
            ro_second: false,
            pre_elect: true,
            reorder_window: 2,
            tick_budget: 1,
            dup_budget: 0,
            drop_budget: 0,
            crash_budget: 1,
            snapshot_interval: 0,
            snap_chunk_bytes: 16 * 1024,
            bound: 2,
        }
    }

    /// Snapshot-every-entry plus one crash–restart: exercises compaction,
    /// durable-state recovery, and (via the tiny chunk size) chunked
    /// state transfer to a lagging rejoiner.
    pub fn snap_scope() -> Scope {
        Scope {
            name: "snap",
            mode: Mode::Hovercraft,
            client_reqs: 1,
            candidates: 1,
            ro_second: false,
            pre_elect: true,
            reorder_window: 2,
            tick_budget: 2,
            dup_budget: 0,
            drop_budget: 0,
            crash_budget: 1,
            snapshot_interval: 1,
            snap_chunk_bytes: 16,
            bound: 2,
        }
    }

    /// HovercRaft++ with the in-network aggregator in the loop.
    pub fn hcpp_scope() -> Scope {
        Scope {
            name: "hcpp",
            mode: Mode::HovercraftPp,
            client_reqs: 1,
            candidates: 1,
            ro_second: false,
            pre_elect: true,
            reorder_window: 2,
            tick_budget: 1,
            dup_budget: 1,
            drop_budget: 0,
            crash_budget: 0,
            snapshot_interval: 0,
            snap_chunk_bytes: 16 * 1024,
            bound: 2,
        }
    }

    /// A deliberately small scope (FIFO wire, one command, one
    /// duplication) for debug-mode unit tests and the mutation smoke
    /// test: it still drives the full propose → replicate → commit →
    /// execute → reply path, but exhausts in well under a second even
    /// unoptimized.
    pub fn tiny_scope() -> Scope {
        Scope {
            name: "tiny",
            mode: Mode::Hovercraft,
            client_reqs: 1,
            candidates: 1,
            ro_second: false,
            pre_elect: true,
            reorder_window: 1,
            tick_budget: 1,
            dup_budget: 1,
            drop_budget: 0,
            crash_budget: 0,
            snapshot_interval: 0,
            snap_chunk_bytes: 16 * 1024,
            bound: 2,
        }
    }

    /// All built-in scopes, in report order.
    pub fn all() -> Vec<Scope> {
        vec![
            Scope::default_scope(),
            Scope::elect_scope(),
            Scope::crash_scope(),
            Scope::snap_scope(),
            Scope::hcpp_scope(),
            Scope::tiny_scope(),
        ]
    }

    /// Looks a scope up by its corpus/report name.
    pub fn by_name(name: &str) -> Option<Scope> {
        Scope::all().into_iter().find(|s| s.name == name)
    }

    /// The node configuration for member `id` under this scope. Every
    /// node shares the same rng seed, which keeps the initial state
    /// symmetric under id renaming.
    pub fn cfg(&self, id: u32) -> HcConfig {
        let members: Vec<u32> = (0..N_NODES).collect();
        let mut rc = raft::Config::new(id, members);
        if id < self.candidates as u32 {
            rc.election_timeout_min = ELECTION_TIMEOUT;
            rc.election_timeout_max = ELECTION_TIMEOUT + 1; // width-1: no draws
        } else {
            // Non-candidates never time out (and the width-1 window
            // still skips the jitter draw).
            rc.election_timeout_min = NEVER;
            rc.election_timeout_max = NEVER + 1;
        }
        rc.heartbeat_interval = HEARTBEAT_INTERVAL;
        rc.seed = 0x6d63; // identical on every node (symmetry)
        let mut cfg = HcConfig::new(rc, self.mode);
        cfg.bound = self.bound;
        cfg.policy = PolicyKind::Jbsq;
        cfg.gc_timeout_ns = NEVER;
        cfg.recovery_retry_ns = NEVER;
        cfg.stall_timeout_ns = NEVER;
        cfg.snapshot_interval = self.snapshot_interval;
        cfg.snap_chunk_bytes = self.snap_chunk_bytes;
        if self.mode == Mode::HovercraftPp {
            cfg.agg_addr = Some(AGG_ADDR);
        }
        cfg
    }
}
