//! Value types stored in the keyspace.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;

/// A stored value: the Redis-style basic data structures (§7.5: "Redis is
/// an in-memory data store that supports basic data-structures ... lists,
/// hashmaps, and sets").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A binary-safe string.
    Str(Bytes),
    /// A deque of binary strings (LPUSH/RPUSH etc.).
    List(VecDeque<Bytes>),
    /// A field → value map. `BTreeMap` keeps iteration deterministic
    /// across replicas — a requirement of state-machine replication.
    Hash(BTreeMap<Bytes, Bytes>),
    /// A set of binary strings, deterministically ordered.
    Set(BTreeSet<Bytes>),
}

impl Value {
    /// Human-readable type name, used in WRONGTYPE errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Hash(_) => "hash",
            Value::Set(_) => "set",
        }
    }

    /// Approximate in-memory footprint in bytes (used by cost accounting).
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            Value::List(l) => l.iter().map(|e| e.len()).sum(),
            Value::Hash(h) => h.iter().map(|(k, v)| k.len() + v.len()).sum(),
            Value::Set(s) => s.iter().map(|e| e.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Str(Bytes::new()).type_name(), "string");
        assert_eq!(Value::List(VecDeque::new()).type_name(), "list");
        assert_eq!(Value::Hash(BTreeMap::new()).type_name(), "hash");
        assert_eq!(Value::Set(BTreeSet::new()).type_name(), "set");
    }

    #[test]
    fn approx_size_sums_contents() {
        let mut h = BTreeMap::new();
        h.insert(Bytes::from_static(b"f1"), Bytes::from_static(b"0123456789"));
        h.insert(Bytes::from_static(b"f2"), Bytes::from_static(b"x"));
        assert_eq!(Value::Hash(h).approx_size(), 2 + 10 + 2 + 1);
        assert_eq!(Value::Str(Bytes::from_static(b"abc")).approx_size(), 3);
    }
}
