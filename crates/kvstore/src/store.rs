//! The deterministic in-memory keyspace and command executor.
//!
//! The keyspace is a `BTreeMap` so every iteration-order-sensitive command
//! (SCAN, HGETALL, SMEMBERS-style results) is identical across replicas —
//! the determinism requirement of state-machine replication. YCSB-E records
//! live under composite keys `"<table>/<key>"`, which makes SCAN a plain
//! ordered range walk exactly like a Redis sorted structure would give.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::{BufMut, Bytes};

use crate::command::Command;
use crate::reply::Reply;
use crate::value::Value;

/// Snapshot type tags, one per [`Value`] variant.
const TAG_STR: u8 = 0;
const TAG_LIST: u8 = 1;
const TAG_HASH: u8 = 2;
const TAG_SET: u8 = 3;

/// Execution metrics for one command, consumed by the cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Bytes of argument payload written into the store.
    pub bytes_written: usize,
    /// Bytes of stored data read/returned.
    pub bytes_read: usize,
    /// Records (keys/elements/fields) touched.
    pub records: usize,
}

/// The data store.
#[derive(Default)]
pub struct Store {
    map: BTreeMap<Bytes, Value>,
}

fn wrongtype(found: &Value) -> Reply {
    Reply::Err(format!("WRONGTYPE found {}", found.type_name()))
}

/// Composite key for YCSB-E table records.
fn table_key(table: &Bytes, key: &Bytes) -> Bytes {
    let mut k = Vec::with_capacity(table.len() + 1 + key.len());
    k.extend_from_slice(table);
    k.push(b'/');
    k.extend_from_slice(key);
    Bytes::from(k)
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the keyspace is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Serializes the whole keyspace into a snapshot blob. The encoding
    /// walks the `BTreeMap` (and the ordered structures inside each value)
    /// in key order, so replicas that applied the same mutation prefix
    /// produce byte-identical blobs — the determinism requirement of
    /// snapshot-based state transfer.
    pub fn snapshot(&self) -> Bytes {
        let mut out: Vec<u8> = Vec::new();
        out.put_u64(self.map.len() as u64);
        let put_bytes = |out: &mut Vec<u8>, b: &Bytes| {
            out.put_u32(b.len() as u32);
            out.put_slice(b);
        };
        for (k, v) in &self.map {
            put_bytes(&mut out, k);
            match v {
                Value::Str(s) => {
                    out.put_u8(TAG_STR);
                    put_bytes(&mut out, s);
                }
                Value::List(l) => {
                    out.put_u8(TAG_LIST);
                    out.put_u32(l.len() as u32);
                    for e in l {
                        put_bytes(&mut out, e);
                    }
                }
                Value::Hash(h) => {
                    out.put_u8(TAG_HASH);
                    out.put_u32(h.len() as u32);
                    for (f, val) in h {
                        put_bytes(&mut out, f);
                        put_bytes(&mut out, val);
                    }
                }
                Value::Set(s) => {
                    out.put_u8(TAG_SET);
                    out.put_u32(s.len() as u32);
                    for e in s {
                        put_bytes(&mut out, e);
                    }
                }
            }
        }
        Bytes::from(out)
    }

    /// Replaces the keyspace with the contents of a [`Store::snapshot`]
    /// blob. Returns `false` (leaving the store empty) if the blob is
    /// malformed — which only a corrupted transfer can produce, since the
    /// encoder is the only writer.
    pub fn restore(&mut self, snap: &[u8]) -> bool {
        self.map.clear();
        let mut cur = snap;
        let Some(n) = take_u64(&mut cur) else {
            return snap.is_empty();
        };
        for _ in 0..n {
            let Some(key) = take_bytes(&mut cur) else {
                self.map.clear();
                return false;
            };
            let value = match take_u8(&mut cur) {
                Some(TAG_STR) => take_bytes(&mut cur).map(Value::Str),
                Some(TAG_LIST) => take_seq(&mut cur).map(|v| Value::List(v.into_iter().collect())),
                Some(TAG_HASH) => take_u32(&mut cur).and_then(|n| {
                    let mut h = BTreeMap::new();
                    for _ in 0..n {
                        let f = take_bytes(&mut cur)?;
                        let v = take_bytes(&mut cur)?;
                        h.insert(f, v);
                    }
                    Some(Value::Hash(h))
                }),
                Some(TAG_SET) => take_seq(&mut cur).map(|v| Value::Set(v.into_iter().collect())),
                _ => None,
            };
            let Some(value) = value else {
                self.map.clear();
                return false;
            };
            self.map.insert(key, value);
        }
        true
    }

    /// Executes one command, returning the reply and execution metrics.
    pub fn execute(&mut self, cmd: &Command) -> (Reply, ExecMetrics) {
        let mut m = ExecMetrics::default();
        let reply = self.run(cmd, &mut m);
        (reply, m)
    }

    #[allow(clippy::too_many_lines)]
    fn run(&mut self, cmd: &Command, m: &mut ExecMetrics) -> Reply {
        match cmd {
            Command::Set(k, v) => {
                m.bytes_written = v.len();
                m.records = 1;
                self.map.insert(k.clone(), Value::Str(v.clone()));
                Reply::Ok
            }
            Command::Get(k) => match self.map.get(k) {
                None => Reply::Nil,
                Some(Value::Str(s)) => {
                    m.bytes_read = s.len();
                    m.records = 1;
                    Reply::Bulk(s.clone())
                }
                Some(v) => wrongtype(v),
            },
            Command::Del(k) => {
                let n = self.map.remove(k).is_some() as i64;
                m.records = n as usize;
                Reply::Int(n)
            }
            Command::Exists(k) => Reply::Int(self.map.contains_key(k) as i64),
            Command::Incr(k) => match self.map.get_mut(k) {
                None => {
                    self.map
                        .insert(k.clone(), Value::Str(Bytes::from_static(b"1")));
                    m.records = 1;
                    Reply::Int(1)
                }
                Some(Value::Str(s)) => {
                    let Ok(cur) = std::str::from_utf8(s).unwrap_or("x").parse::<i64>() else {
                        return Reply::Err("value is not an integer".to_string());
                    };
                    let next = cur + 1;
                    *s = Bytes::from(next.to_string());
                    m.records = 1;
                    Reply::Int(next)
                }
                Some(v) => wrongtype(v),
            },
            Command::Append(k, v) => match self.map.get_mut(k) {
                None => {
                    m.bytes_written = v.len();
                    self.map.insert(k.clone(), Value::Str(v.clone()));
                    Reply::Int(v.len() as i64)
                }
                Some(Value::Str(s)) => {
                    let mut joined = Vec::with_capacity(s.len() + v.len());
                    joined.extend_from_slice(s);
                    joined.extend_from_slice(v);
                    m.bytes_written = v.len();
                    let len = joined.len();
                    *s = Bytes::from(joined);
                    Reply::Int(len as i64)
                }
                Some(v) => wrongtype(v),
            },
            Command::LPush(k, v) | Command::RPush(k, v) => {
                let front = matches!(cmd, Command::LPush(..));
                let entry = self
                    .map
                    .entry(k.clone())
                    .or_insert_with(|| Value::List(VecDeque::new()));
                match entry {
                    Value::List(l) => {
                        m.bytes_written = v.len();
                        m.records = 1;
                        if front {
                            l.push_front(v.clone());
                        } else {
                            l.push_back(v.clone());
                        }
                        Reply::Int(l.len() as i64)
                    }
                    other => wrongtype(other),
                }
            }
            Command::LPop(k) => match self.map.get_mut(k) {
                None => Reply::Nil,
                Some(Value::List(l)) => match l.pop_front() {
                    Some(v) => {
                        m.bytes_read = v.len();
                        m.records = 1;
                        Reply::Bulk(v)
                    }
                    None => Reply::Nil,
                },
                Some(v) => wrongtype(v),
            },
            Command::LLen(k) => match self.map.get(k) {
                None => Reply::Int(0),
                Some(Value::List(l)) => Reply::Int(l.len() as i64),
                Some(v) => wrongtype(v),
            },
            Command::LRange(k, lo, hi) => match self.map.get(k) {
                None => Reply::Array(vec![]),
                Some(Value::List(l)) => {
                    let lo = *lo as usize;
                    let hi = (*hi as usize).min(l.len().saturating_sub(1));
                    let mut items = Vec::new();
                    if lo <= hi {
                        for e in l.iter().skip(lo).take(hi - lo + 1) {
                            m.bytes_read += e.len();
                            m.records += 1;
                            items.push(Reply::Bulk(e.clone()));
                        }
                    }
                    Reply::Array(items)
                }
                Some(v) => wrongtype(v),
            },
            Command::HSet(k, f, v) => {
                let entry = self
                    .map
                    .entry(k.clone())
                    .or_insert_with(|| Value::Hash(BTreeMap::new()));
                match entry {
                    Value::Hash(h) => {
                        m.bytes_written = f.len() + v.len();
                        m.records = 1;
                        let fresh = h.insert(f.clone(), v.clone()).is_none();
                        Reply::Int(fresh as i64)
                    }
                    other => wrongtype(other),
                }
            }
            Command::HGet(k, f) => match self.map.get(k) {
                None => Reply::Nil,
                Some(Value::Hash(h)) => match h.get(f) {
                    Some(v) => {
                        m.bytes_read = v.len();
                        m.records = 1;
                        Reply::Bulk(v.clone())
                    }
                    None => Reply::Nil,
                },
                Some(v) => wrongtype(v),
            },
            Command::HDel(k, f) => match self.map.get_mut(k) {
                None => Reply::Int(0),
                Some(Value::Hash(h)) => {
                    let n = h.remove(f).is_some() as i64;
                    m.records = n as usize;
                    Reply::Int(n)
                }
                Some(v) => wrongtype(v),
            },
            Command::HLen(k) => match self.map.get(k) {
                None => Reply::Int(0),
                Some(Value::Hash(h)) => Reply::Int(h.len() as i64),
                Some(v) => wrongtype(v),
            },
            Command::HGetAll(k) => match self.map.get(k) {
                None => Reply::Array(vec![]),
                Some(Value::Hash(h)) => {
                    let mut items = Vec::with_capacity(h.len() * 2);
                    for (f, v) in h {
                        m.bytes_read += f.len() + v.len();
                        m.records += 1;
                        items.push(Reply::Bulk(f.clone()));
                        items.push(Reply::Bulk(v.clone()));
                    }
                    Reply::Array(items)
                }
                Some(v) => wrongtype(v),
            },
            Command::SAdd(k, v) => {
                let entry = self
                    .map
                    .entry(k.clone())
                    .or_insert_with(|| Value::Set(BTreeSet::new()));
                match entry {
                    Value::Set(s) => {
                        m.bytes_written = v.len();
                        m.records = 1;
                        Reply::Int(s.insert(v.clone()) as i64)
                    }
                    other => wrongtype(other),
                }
            }
            Command::SRem(k, v) => match self.map.get_mut(k) {
                None => Reply::Int(0),
                Some(Value::Set(s)) => {
                    let n = s.remove(v) as i64;
                    m.records = n as usize;
                    Reply::Int(n)
                }
                Some(v) => wrongtype(v),
            },
            Command::SIsMember(k, v) => match self.map.get(k) {
                None => Reply::Int(0),
                Some(Value::Set(s)) => Reply::Int(s.contains(v) as i64),
                Some(v) => wrongtype(v),
            },
            Command::SCard(k) => match self.map.get(k) {
                None => Reply::Int(0),
                Some(Value::Set(s)) => Reply::Int(s.len() as i64),
                Some(v) => wrongtype(v),
            },
            Command::Insert(t, k, rec) => {
                // The YCSB-E module op: one atomic record insert.
                m.bytes_written = rec.len();
                m.records = 1;
                self.map.insert(table_key(t, k), Value::Str(rec.clone()));
                Reply::Ok
            }
            Command::Scan(t, k, n) => {
                // Ordered range walk over the table's composite keys.
                let start = table_key(t, k);
                let mut prefix = t.to_vec();
                prefix.push(b'/');
                let mut items = Vec::new();
                for (key, val) in self.map.range(start..) {
                    if items.len() / 2 >= *n as usize || !key.starts_with(&prefix) {
                        break;
                    }
                    match val {
                        Value::Str(rec) => {
                            m.bytes_read += key.len() + rec.len();
                            m.records += 1;
                            items.push(Reply::Bulk(key.clone()));
                            items.push(Reply::Bulk(rec.clone()));
                        }
                        other => return wrongtype(other),
                    }
                }
                Reply::Array(items)
            }
            Command::DbSize => Reply::Int(self.map.len() as i64),
            Command::FlushAll => {
                m.records = self.map.len();
                self.map.clear();
                Reply::Ok
            }
            Command::Ping => Reply::Bulk(Bytes::from_static(b"PONG")),
        }
    }
}

// Snapshot decoding primitives: each consumes from the front of `cur` and
// returns `None` on underrun.

fn take_u8(cur: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = cur.split_first()?;
    *cur = rest;
    Some(b)
}

fn take_u32(cur: &mut &[u8]) -> Option<u32> {
    let (head, rest) = cur.split_at_checked(4)?;
    *cur = rest;
    Some(u32::from_be_bytes(head.try_into().expect("4 bytes")))
}

fn take_u64(cur: &mut &[u8]) -> Option<u64> {
    let (head, rest) = cur.split_at_checked(8)?;
    *cur = rest;
    Some(u64::from_be_bytes(head.try_into().expect("8 bytes")))
}

fn take_bytes(cur: &mut &[u8]) -> Option<Bytes> {
    let len = take_u32(cur)? as usize;
    let (head, rest) = cur.split_at_checked(len)?;
    *cur = rest;
    Some(Bytes::copy_from_slice(head))
}

fn take_seq(cur: &mut &[u8]) -> Option<Vec<Bytes>> {
    let n = take_u32(cur)?;
    let mut v = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        v.push(take_bytes(cur)?);
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn string_ops() {
        let mut s = Store::new();
        assert_eq!(s.execute(&Command::Get(b("k"))).0, Reply::Nil);
        assert_eq!(s.execute(&Command::Set(b("k"), b("v1"))).0, Reply::Ok);
        assert_eq!(s.execute(&Command::Get(b("k"))).0, Reply::Bulk(b("v1")));
        assert_eq!(s.execute(&Command::Exists(b("k"))).0, Reply::Int(1));
        assert_eq!(
            s.execute(&Command::Append(b("k"), b("+2"))).0,
            Reply::Int(4)
        );
        assert_eq!(s.execute(&Command::Get(b("k"))).0, Reply::Bulk(b("v1+2")));
        assert_eq!(s.execute(&Command::Del(b("k"))).0, Reply::Int(1));
        assert_eq!(s.execute(&Command::Del(b("k"))).0, Reply::Int(0));
    }

    #[test]
    fn incr_semantics() {
        let mut s = Store::new();
        assert_eq!(s.execute(&Command::Incr(b("c"))).0, Reply::Int(1));
        assert_eq!(s.execute(&Command::Incr(b("c"))).0, Reply::Int(2));
        assert_eq!(s.execute(&Command::Get(b("c"))).0, Reply::Bulk(b("2")));
        s.execute(&Command::Set(b("c"), b("not-a-number")));
        assert!(s.execute(&Command::Incr(b("c"))).0.is_err());
    }

    #[test]
    fn list_ops() {
        let mut s = Store::new();
        s.execute(&Command::RPush(b("l"), b("b")));
        s.execute(&Command::RPush(b("l"), b("c")));
        s.execute(&Command::LPush(b("l"), b("a")));
        assert_eq!(s.execute(&Command::LLen(b("l"))).0, Reply::Int(3));
        let (r, m) = s.execute(&Command::LRange(b("l"), 0, 10));
        assert_eq!(
            r,
            Reply::Array(vec![
                Reply::Bulk(b("a")),
                Reply::Bulk(b("b")),
                Reply::Bulk(b("c"))
            ])
        );
        assert_eq!(m.records, 3);
        assert_eq!(s.execute(&Command::LPop(b("l"))).0, Reply::Bulk(b("a")));
        assert_eq!(
            s.execute(&Command::LRange(b("l"), 1, 1)).0,
            Reply::Array(vec![Reply::Bulk(b("c"))])
        );
    }

    #[test]
    fn hash_ops() {
        let mut s = Store::new();
        assert_eq!(
            s.execute(&Command::HSet(b("h"), b("f1"), b("v1"))).0,
            Reply::Int(1)
        );
        assert_eq!(
            s.execute(&Command::HSet(b("h"), b("f1"), b("v2"))).0,
            Reply::Int(0)
        );
        s.execute(&Command::HSet(b("h"), b("f0"), b("v0")));
        assert_eq!(
            s.execute(&Command::HGet(b("h"), b("f1"))).0,
            Reply::Bulk(b("v2"))
        );
        assert_eq!(s.execute(&Command::HLen(b("h"))).0, Reply::Int(2));
        // Deterministic (sorted) field order.
        assert_eq!(
            s.execute(&Command::HGetAll(b("h"))).0,
            Reply::Array(vec![
                Reply::Bulk(b("f0")),
                Reply::Bulk(b("v0")),
                Reply::Bulk(b("f1")),
                Reply::Bulk(b("v2")),
            ])
        );
        assert_eq!(s.execute(&Command::HDel(b("h"), b("f0"))).0, Reply::Int(1));
        assert_eq!(s.execute(&Command::HLen(b("h"))).0, Reply::Int(1));
    }

    #[test]
    fn set_ops() {
        let mut s = Store::new();
        assert_eq!(s.execute(&Command::SAdd(b("s"), b("x"))).0, Reply::Int(1));
        assert_eq!(s.execute(&Command::SAdd(b("s"), b("x"))).0, Reply::Int(0));
        s.execute(&Command::SAdd(b("s"), b("y")));
        assert_eq!(s.execute(&Command::SCard(b("s"))).0, Reply::Int(2));
        assert_eq!(
            s.execute(&Command::SIsMember(b("s"), b("x"))).0,
            Reply::Int(1)
        );
        assert_eq!(s.execute(&Command::SRem(b("s"), b("x"))).0, Reply::Int(1));
        assert_eq!(
            s.execute(&Command::SIsMember(b("s"), b("x"))).0,
            Reply::Int(0)
        );
    }

    #[test]
    fn wrongtype_errors() {
        let mut s = Store::new();
        s.execute(&Command::Set(b("k"), b("v")));
        assert!(s.execute(&Command::LPush(b("k"), b("x"))).0.is_err());
        assert!(s.execute(&Command::HGet(b("k"), b("f"))).0.is_err());
        assert!(s.execute(&Command::SAdd(b("k"), b("m"))).0.is_err());
        // The failed commands must not have clobbered the value.
        assert_eq!(s.execute(&Command::Get(b("k"))).0, Reply::Bulk(b("v")));
    }

    #[test]
    fn ycsbe_insert_and_scan() {
        let mut s = Store::new();
        for i in [3u32, 1, 4, 1, 5, 9, 2, 6] {
            let key = format!("user{i:04}");
            s.execute(&Command::Insert(b("usertable"), b(&key), b("record")));
        }
        assert_eq!(s.execute(&Command::DbSize).0, Reply::Int(7)); // 1 duplicate
        let (r, m) = s.execute(&Command::Scan(b("usertable"), b("user0002"), 3));
        match r {
            Reply::Array(items) => {
                assert_eq!(items.len(), 6, "3 key/record pairs");
                assert_eq!(items[0], Reply::Bulk(b("usertable/user0002")));
                assert_eq!(items[2], Reply::Bulk(b("usertable/user0003")));
                assert_eq!(items[4], Reply::Bulk(b("usertable/user0004")));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.records, 3);
        assert!(m.bytes_read > 0);
    }

    #[test]
    fn scan_respects_table_boundary() {
        let mut s = Store::new();
        s.execute(&Command::Insert(b("aaa"), b("k9"), b("r")));
        s.execute(&Command::Insert(b("bbb"), b("k1"), b("r")));
        let (r, _) = s.execute(&Command::Scan(b("aaa"), b("k0"), 10));
        match r {
            Reply::Array(items) => assert_eq!(items.len(), 2, "only table aaa"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scan_count_limits_results() {
        let mut s = Store::new();
        for i in 0..50 {
            let key = format!("user{i:04}");
            s.execute(&Command::Insert(b("t"), b(&key), b("r")));
        }
        let (r, m) = s.execute(&Command::Scan(b("t"), b("user0000"), 10));
        match r {
            Reply::Array(items) => assert_eq!(items.len(), 20),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.records, 10, "YCSB-E max scan length honoured");
    }

    #[test]
    fn flush_and_dbsize() {
        let mut s = Store::new();
        s.execute(&Command::Set(b("a"), b("1")));
        s.execute(&Command::Set(b("b"), b("2")));
        assert_eq!(s.execute(&Command::DbSize).0, Reply::Int(2));
        assert_eq!(s.execute(&Command::FlushAll).0, Reply::Ok);
        assert!(s.is_empty());
    }

    #[test]
    fn snapshot_round_trips_every_value_type() {
        let mut s = Store::new();
        s.execute(&Command::Set(b("str"), b("hello")));
        s.execute(&Command::RPush(b("list"), b("x")));
        s.execute(&Command::RPush(b("list"), b("y")));
        s.execute(&Command::HSet(b("hash"), b("f"), b("v")));
        s.execute(&Command::SAdd(b("set"), b("m")));
        s.execute(&Command::Insert(b("t"), b("user0001"), b("rec")));
        let snap = s.snapshot();
        let mut r = Store::new();
        assert!(r.restore(&snap));
        assert_eq!(r.len(), s.len());
        assert_eq!(
            r.execute(&Command::Get(b("str"))).0,
            Reply::Bulk(b("hello"))
        );
        assert_eq!(
            r.execute(&Command::LRange(b("list"), 0, 9)).0,
            Reply::Array(vec![Reply::Bulk(b("x")), Reply::Bulk(b("y"))])
        );
        assert_eq!(
            r.execute(&Command::HGet(b("hash"), b("f"))).0,
            Reply::Bulk(b("v"))
        );
        assert_eq!(
            r.execute(&Command::SIsMember(b("set"), b("m"))).0,
            Reply::Int(1)
        );
        assert_eq!(
            r.snapshot(),
            snap,
            "restored store re-encodes byte-identically"
        );
    }

    #[test]
    fn snapshot_encoding_is_deterministic_across_insertion_orders() {
        // Same final state reached via different key insertion orders must
        // serialize identically (BTreeMap order, not insertion order).
        let mut a = Store::new();
        let mut z = Store::new();
        for i in 0..20 {
            a.execute(&Command::Set(b(&format!("k{i:02}")), b("v")));
            z.execute(&Command::Set(b(&format!("k{:02}", 19 - i)), b("v")));
        }
        assert_eq!(a.snapshot(), z.snapshot());
    }

    #[test]
    fn malformed_snapshot_is_rejected() {
        let mut s = Store::new();
        s.execute(&Command::Set(b("k"), b("v")));
        let snap = s.snapshot();
        let mut r = Store::new();
        assert!(!r.restore(&snap[..snap.len() - 1]), "truncated blob");
        assert!(r.is_empty(), "failed restore leaves the store empty");
        assert!(r.restore(&[]) || r.is_empty());
        assert!(Store::new().restore(&Store::new().snapshot()), "empty ok");
    }

    #[test]
    fn execution_is_deterministic_across_instances() {
        // Same command sequence on two stores → identical replies; the SMR
        // determinism contract.
        let cmds: Vec<Command> = (0..100)
            .flat_map(|i| {
                let key = format!("user{:04}", (i * 37) % 50);
                vec![
                    Command::Insert(b("t"), b(&key), b("r")),
                    Command::Scan(b("t"), b(&key), 5),
                    Command::Incr(b("ctr")),
                ]
            })
            .collect();
        let mut s1 = Store::new();
        let mut s2 = Store::new();
        for c in &cmds {
            assert_eq!(s1.execute(c).0, s2.execute(c).0);
        }
        assert_eq!(s1.len(), s2.len());
    }
}
