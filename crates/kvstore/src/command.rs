//! The command set and its binary codec.
//!
//! Commands are encoded as `[opcode u8][arg]*` where each argument is a
//! `u32`-length-prefixed byte string — binary-safe and cheap to parse, the
//! moral equivalent of RESP for a kernel-bypass deployment. The YCSB-E
//! module operations (`INSERT`, `SCAN`) mirror the paper's user-defined
//! Redis module (§7.5): each executes as one atomic, isolated command.

use bytes::{BufMut, Bytes, BytesMut};

/// A parsed command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    // -- strings ------------------------------------------------------------
    /// Set `key` to `value`.
    Set(Bytes, Bytes),
    /// Get the value of `key`.
    Get(Bytes),
    /// Delete `key`; yields the number of keys removed (0 or 1).
    Del(Bytes),
    /// Whether `key` exists (any type).
    Exists(Bytes),
    /// Increment the integer at `key` by 1 (initializing to 0).
    Incr(Bytes),
    /// Append `value` to the string at `key`; yields the new length.
    Append(Bytes, Bytes),
    // -- lists --------------------------------------------------------------
    /// Push `value` at the head of the list at `key`.
    LPush(Bytes, Bytes),
    /// Push `value` at the tail of the list at `key`.
    RPush(Bytes, Bytes),
    /// Pop from the head.
    LPop(Bytes),
    /// List length.
    LLen(Bytes),
    /// Elements `[start, stop]` (inclusive, saturating).
    LRange(Bytes, u32, u32),
    // -- hashes ---------------------------------------------------------------
    /// Set hash `key`'s `field` to `value`.
    HSet(Bytes, Bytes, Bytes),
    /// Get hash `key`'s `field`.
    HGet(Bytes, Bytes),
    /// Delete hash `key`'s `field`.
    HDel(Bytes, Bytes),
    /// Number of fields in the hash.
    HLen(Bytes),
    /// All field/value pairs, deterministically ordered.
    HGetAll(Bytes),
    // -- sets ---------------------------------------------------------------
    /// Add `member` to the set at `key`.
    SAdd(Bytes, Bytes),
    /// Remove `member`.
    SRem(Bytes, Bytes),
    /// Membership test.
    SIsMember(Bytes, Bytes),
    /// Set cardinality.
    SCard(Bytes),
    // -- YCSB-E module ops (§7.5) --------------------------------------------
    /// Insert a record: `table`, `key`, and the serialized field map —
    /// atomically, as a single state-machine operation.
    Insert(Bytes, Bytes, Bytes),
    /// Scan up to `count` records of `table` starting at `key` (inclusive),
    /// returning key/record pairs — the threaded-conversation read.
    Scan(Bytes, Bytes, u32),
    // -- admin ---------------------------------------------------------------
    /// Number of keys in the keyspace.
    DbSize,
    /// Drop everything.
    FlushAll,
    /// Liveness probe.
    Ping,
}

impl Command {
    /// True if the command cannot mutate state — safe to tag
    /// `REPLICATED_REQ_R` and load-balance (§3.5).
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            Command::Get(_)
                | Command::Exists(_)
                | Command::LLen(_)
                | Command::LRange(..)
                | Command::HGet(..)
                | Command::HLen(_)
                | Command::HGetAll(_)
                | Command::SIsMember(..)
                | Command::SCard(_)
                | Command::Scan(..)
                | Command::DbSize
                | Command::Ping
        )
    }
}

/// Codec errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input shorter than a frame demanded.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Argument count or shape mismatch.
    BadArity,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated command"),
            CodecError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            CodecError::BadArity => write!(f, "wrong argument shape"),
        }
    }
}
impl std::error::Error for CodecError {}

mod op {
    pub const SET: u8 = 0x01;
    pub const GET: u8 = 0x02;
    pub const DEL: u8 = 0x03;
    pub const EXISTS: u8 = 0x04;
    pub const INCR: u8 = 0x05;
    pub const APPEND: u8 = 0x06;
    pub const LPUSH: u8 = 0x10;
    pub const RPUSH: u8 = 0x11;
    pub const LPOP: u8 = 0x12;
    pub const LLEN: u8 = 0x13;
    pub const LRANGE: u8 = 0x14;
    pub const HSET: u8 = 0x20;
    pub const HGET: u8 = 0x21;
    pub const HDEL: u8 = 0x22;
    pub const HLEN: u8 = 0x23;
    pub const HGETALL: u8 = 0x24;
    pub const SADD: u8 = 0x30;
    pub const SREM: u8 = 0x31;
    pub const SISMEMBER: u8 = 0x32;
    pub const SCARD: u8 = 0x33;
    pub const INSERT: u8 = 0x40;
    pub const SCAN: u8 = 0x41;
    pub const DBSIZE: u8 = 0x50;
    pub const FLUSHALL: u8 = 0x51;
    pub const PING: u8 = 0x52;
}

fn put_arg(buf: &mut BytesMut, a: &[u8]) {
    buf.put_u32(a.len() as u32);
    buf.put_slice(a);
}

fn take_arg(buf: &mut &[u8]) -> Result<Bytes, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if buf.len() < 4 + len {
        return Err(CodecError::Truncated);
    }
    let arg = Bytes::copy_from_slice(&buf[4..4 + len]);
    *buf = &buf[4 + len..];
    Ok(arg)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let v = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    *buf = &buf[4..];
    Ok(v)
}

impl Command {
    /// Encodes into the binary wire form.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(32);
        match self {
            Command::Set(k, v) => {
                b.put_u8(op::SET);
                put_arg(&mut b, k);
                put_arg(&mut b, v);
            }
            Command::Get(k) => {
                b.put_u8(op::GET);
                put_arg(&mut b, k);
            }
            Command::Del(k) => {
                b.put_u8(op::DEL);
                put_arg(&mut b, k);
            }
            Command::Exists(k) => {
                b.put_u8(op::EXISTS);
                put_arg(&mut b, k);
            }
            Command::Incr(k) => {
                b.put_u8(op::INCR);
                put_arg(&mut b, k);
            }
            Command::Append(k, v) => {
                b.put_u8(op::APPEND);
                put_arg(&mut b, k);
                put_arg(&mut b, v);
            }
            Command::LPush(k, v) => {
                b.put_u8(op::LPUSH);
                put_arg(&mut b, k);
                put_arg(&mut b, v);
            }
            Command::RPush(k, v) => {
                b.put_u8(op::RPUSH);
                put_arg(&mut b, k);
                put_arg(&mut b, v);
            }
            Command::LPop(k) => {
                b.put_u8(op::LPOP);
                put_arg(&mut b, k);
            }
            Command::LLen(k) => {
                b.put_u8(op::LLEN);
                put_arg(&mut b, k);
            }
            Command::LRange(k, lo, hi) => {
                b.put_u8(op::LRANGE);
                put_arg(&mut b, k);
                b.put_u32(*lo);
                b.put_u32(*hi);
            }
            Command::HSet(k, f, v) => {
                b.put_u8(op::HSET);
                put_arg(&mut b, k);
                put_arg(&mut b, f);
                put_arg(&mut b, v);
            }
            Command::HGet(k, f) => {
                b.put_u8(op::HGET);
                put_arg(&mut b, k);
                put_arg(&mut b, f);
            }
            Command::HDel(k, f) => {
                b.put_u8(op::HDEL);
                put_arg(&mut b, k);
                put_arg(&mut b, f);
            }
            Command::HLen(k) => {
                b.put_u8(op::HLEN);
                put_arg(&mut b, k);
            }
            Command::HGetAll(k) => {
                b.put_u8(op::HGETALL);
                put_arg(&mut b, k);
            }
            Command::SAdd(k, m) => {
                b.put_u8(op::SADD);
                put_arg(&mut b, k);
                put_arg(&mut b, m);
            }
            Command::SRem(k, m) => {
                b.put_u8(op::SREM);
                put_arg(&mut b, k);
                put_arg(&mut b, m);
            }
            Command::SIsMember(k, m) => {
                b.put_u8(op::SISMEMBER);
                put_arg(&mut b, k);
                put_arg(&mut b, m);
            }
            Command::SCard(k) => {
                b.put_u8(op::SCARD);
                put_arg(&mut b, k);
            }
            Command::Insert(t, k, rec) => {
                b.put_u8(op::INSERT);
                put_arg(&mut b, t);
                put_arg(&mut b, k);
                put_arg(&mut b, rec);
            }
            Command::Scan(t, k, n) => {
                b.put_u8(op::SCAN);
                put_arg(&mut b, t);
                put_arg(&mut b, k);
                b.put_u32(*n);
            }
            Command::DbSize => b.put_u8(op::DBSIZE),
            Command::FlushAll => b.put_u8(op::FLUSHALL),
            Command::Ping => b.put_u8(op::PING),
        }
        b.freeze()
    }

    /// Decodes from the binary wire form.
    pub fn decode(buf: &[u8]) -> Result<Command, CodecError> {
        let Some((&opcode, mut rest)) = buf.split_first() else {
            return Err(CodecError::Truncated);
        };
        let r = &mut rest;
        let cmd = match opcode {
            op::SET => Command::Set(take_arg(r)?, take_arg(r)?),
            op::GET => Command::Get(take_arg(r)?),
            op::DEL => Command::Del(take_arg(r)?),
            op::EXISTS => Command::Exists(take_arg(r)?),
            op::INCR => Command::Incr(take_arg(r)?),
            op::APPEND => Command::Append(take_arg(r)?, take_arg(r)?),
            op::LPUSH => Command::LPush(take_arg(r)?, take_arg(r)?),
            op::RPUSH => Command::RPush(take_arg(r)?, take_arg(r)?),
            op::LPOP => Command::LPop(take_arg(r)?),
            op::LLEN => Command::LLen(take_arg(r)?),
            op::LRANGE => Command::LRange(take_arg(r)?, take_u32(r)?, take_u32(r)?),
            op::HSET => Command::HSet(take_arg(r)?, take_arg(r)?, take_arg(r)?),
            op::HGET => Command::HGet(take_arg(r)?, take_arg(r)?),
            op::HDEL => Command::HDel(take_arg(r)?, take_arg(r)?),
            op::HLEN => Command::HLen(take_arg(r)?),
            op::HGETALL => Command::HGetAll(take_arg(r)?),
            op::SADD => Command::SAdd(take_arg(r)?, take_arg(r)?),
            op::SREM => Command::SRem(take_arg(r)?, take_arg(r)?),
            op::SISMEMBER => Command::SIsMember(take_arg(r)?, take_arg(r)?),
            op::SCARD => Command::SCard(take_arg(r)?),
            op::INSERT => Command::Insert(take_arg(r)?, take_arg(r)?, take_arg(r)?),
            op::SCAN => Command::Scan(take_arg(r)?, take_arg(r)?, take_u32(r)?),
            op::DBSIZE => Command::DbSize,
            op::FLUSHALL => Command::FlushAll,
            op::PING => Command::Ping,
            other => return Err(CodecError::BadOpcode(other)),
        };
        if !r.is_empty() {
            return Err(CodecError::BadArity);
        }
        Ok(cmd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn roundtrip_every_variant() {
        let cmds = vec![
            Command::Set(b("k"), b("v")),
            Command::Get(b("k")),
            Command::Del(b("k")),
            Command::Exists(b("k")),
            Command::Incr(b("ctr")),
            Command::Append(b("k"), b("more")),
            Command::LPush(b("l"), b("a")),
            Command::RPush(b("l"), b("z")),
            Command::LPop(b("l")),
            Command::LLen(b("l")),
            Command::LRange(b("l"), 0, 9),
            Command::HSet(b("h"), b("f"), b("v")),
            Command::HGet(b("h"), b("f")),
            Command::HDel(b("h"), b("f")),
            Command::HLen(b("h")),
            Command::HGetAll(b("h")),
            Command::SAdd(b("s"), b("m")),
            Command::SRem(b("s"), b("m")),
            Command::SIsMember(b("s"), b("m")),
            Command::SCard(b("s")),
            Command::Insert(b("usertable"), b("user42"), b("record-bytes")),
            Command::Scan(b("usertable"), b("user42"), 10),
            Command::DbSize,
            Command::FlushAll,
            Command::Ping,
        ];
        for c in cmds {
            let enc = c.encode();
            assert_eq!(Command::decode(&enc).unwrap(), c, "{c:?}");
        }
    }

    #[test]
    fn binary_safe_arguments() {
        let c = Command::Set(
            Bytes::from(vec![0u8, 255, 10, 13]),
            Bytes::from(vec![0u8; 100]),
        );
        assert_eq!(Command::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Command::decode(&[]), Err(CodecError::Truncated));
        assert_eq!(Command::decode(&[0xff]), Err(CodecError::BadOpcode(0xff)));
        assert_eq!(
            Command::decode(&[op::GET, 0, 0, 0, 10, b'x']),
            Err(CodecError::Truncated)
        );
        // Trailing junk is rejected.
        let mut enc = Command::Ping.encode().to_vec();
        enc.push(0);
        assert_eq!(Command::decode(&enc), Err(CodecError::BadArity));
    }

    #[test]
    fn read_only_classification() {
        assert!(Command::Get(b("k")).is_read_only());
        assert!(Command::Scan(b("t"), b("k"), 10).is_read_only());
        assert!(Command::HGetAll(b("h")).is_read_only());
        assert!(!Command::Set(b("k"), b("v")).is_read_only());
        assert!(!Command::Insert(b("t"), b("k"), b("r")).is_read_only());
        assert!(!Command::Incr(b("k")).is_read_only());
        assert!(!Command::FlushAll.is_read_only());
    }
}
