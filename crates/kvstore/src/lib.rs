//! # minikv — a deterministic, Redis-like in-memory data store
//!
//! The application substrate for the HovercRaft reproduction's §7.5
//! experiment: the paper runs Redis with a user-defined module implementing
//! the YCSB-E `INSERT`/`SCAN` operations as single atomic commands. This
//! crate provides the equivalent, built for state-machine replication from
//! the start:
//!
//! * **deterministic**: all iteration orders come from B-tree structures,
//!   so identical command sequences produce identical replies and state on
//!   every replica;
//! * **binary-safe codec**: commands ([`Command`]) and replies ([`Reply`])
//!   have compact binary wire forms — the analogue of RESP;
//! * **module ops**: [`Command::Insert`] and [`Command::Scan`] execute as
//!   isolated transactions over composite `table/key` records, modelling
//!   the paper's Redis module (§7.5);
//! * **cost model**: [`CostModel`] converts per-command execution metrics
//!   into application-thread CPU time for the simulator, calibrated to the
//!   tens-of-µs YCSB-E regime;
//! * **SMR adapter**: [`KvService`] implements `hovercraft::Service`, so
//!   the store becomes fault-tolerant with zero code changes — the paper's
//!   application-agnostic claim, demonstrated.

#![warn(missing_docs)]

mod command;
mod cost;
mod reply;
mod service;
mod store;
mod value;

pub use command::{CodecError, Command};
pub use cost::CostModel;
pub use reply::Reply;
pub use service::KvService;
pub use store::{ExecMetrics, Store};
pub use value::Value;
