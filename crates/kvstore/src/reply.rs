//! Replies and their wire encoding.

use bytes::{BufMut, ByteArena, Bytes, BytesMut};

/// A command's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Generic success.
    Ok,
    /// Key/field/element absent.
    Nil,
    /// An integer result (counts, lengths, INCR).
    Int(i64),
    /// A single binary string.
    Bulk(Bytes),
    /// An ordered collection of results (LRANGE, HGETALL, SCAN).
    Array(Vec<Reply>),
    /// An error, e.g. WRONGTYPE.
    Err(String),
}

impl Reply {
    /// True for error replies.
    pub fn is_err(&self) -> bool {
        matches!(self, Reply::Err(_))
    }

    /// Encodes to wire bytes (a compact binary analogue of RESP).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Exact wire size of [`Reply::encode`]'s output.
    pub fn encoded_len(&self) -> usize {
        match self {
            Reply::Ok | Reply::Nil => 1,
            Reply::Int(_) => 1 + 8,
            Reply::Bulk(body) => 1 + 4 + body.len(),
            Reply::Array(items) => 1 + 4 + items.iter().map(Reply::encoded_len).sum::<usize>(),
            Reply::Err(msg) => 1 + 4 + msg.len(),
        }
    }

    /// [`Reply::encode`], but written directly into a pooled buffer from
    /// `arena` — no staging `Vec`, no per-reply heap allocation once the
    /// pool is warm. Output is byte-identical to `encode`.
    pub fn encode_in(&self, arena: &mut ByteArena) -> Bytes {
        let len = self.encoded_len();
        arena.alloc_with(len, |buf| {
            let mut cur = buf;
            self.encode_into_slice(&mut cur);
            debug_assert!(cur.is_empty(), "encoded_len mismatch");
        })
    }

    fn encode_into_slice(&self, out: &mut &mut [u8]) {
        fn put(out: &mut &mut [u8], src: &[u8]) {
            let (head, tail) = std::mem::take(out).split_at_mut(src.len());
            head.copy_from_slice(src);
            *out = tail;
        }
        match self {
            Reply::Ok => put(out, b"+"),
            Reply::Nil => put(out, b"_"),
            Reply::Int(i) => {
                put(out, b":");
                put(out, &i.to_be_bytes());
            }
            Reply::Bulk(body) => {
                put(out, b"$");
                put(out, &(body.len() as u32).to_be_bytes());
                put(out, body);
            }
            Reply::Array(items) => {
                put(out, b"*");
                put(out, &(items.len() as u32).to_be_bytes());
                for it in items {
                    it.encode_into_slice(out);
                }
            }
            Reply::Err(msg) => {
                put(out, b"-");
                put(out, &(msg.len() as u32).to_be_bytes());
                put(out, msg.as_bytes());
            }
        }
    }

    fn encode_into(&self, b: &mut BytesMut) {
        match self {
            Reply::Ok => b.put_u8(b'+'),
            Reply::Nil => b.put_u8(b'_'),
            Reply::Int(i) => {
                b.put_u8(b':');
                b.put_i64(*i);
            }
            Reply::Bulk(body) => {
                b.put_u8(b'$');
                b.put_u32(body.len() as u32);
                b.put_slice(body);
            }
            Reply::Array(items) => {
                b.put_u8(b'*');
                b.put_u32(items.len() as u32);
                for it in items {
                    it.encode_into(b);
                }
            }
            Reply::Err(msg) => {
                b.put_u8(b'-');
                b.put_u32(msg.len() as u32);
                b.put_slice(msg.as_bytes());
            }
        }
    }

    /// Decodes wire bytes produced by [`Reply::encode`].
    pub fn decode(buf: &[u8]) -> Option<Reply> {
        let (r, rest) = Self::decode_one(buf)?;
        rest.is_empty().then_some(r)
    }

    fn decode_one(buf: &[u8]) -> Option<(Reply, &[u8])> {
        let (&tag, rest) = buf.split_first()?;
        match tag {
            b'+' => Some((Reply::Ok, rest)),
            b'_' => Some((Reply::Nil, rest)),
            b':' => {
                let v = i64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                Some((Reply::Int(v), &rest[8..]))
            }
            b'$' => {
                let len = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                let body = rest.get(4..4 + len)?;
                Some((Reply::Bulk(Bytes::copy_from_slice(body)), &rest[4 + len..]))
            }
            b'*' => {
                let n = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                let mut cur = &rest[4..];
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let (it, nxt) = Self::decode_one(cur)?;
                    items.push(it);
                    cur = nxt;
                }
                Some((Reply::Array(items), cur))
            }
            b'-' => {
                let len = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                let msg = rest.get(4..4 + len)?;
                Some((
                    Reply::Err(String::from_utf8_lossy(msg).into_owned()),
                    &rest[4 + len..],
                ))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_shapes() {
        let replies = vec![
            Reply::Ok,
            Reply::Nil,
            Reply::Int(-42),
            Reply::Bulk(Bytes::from_static(b"hello\0world")),
            Reply::Err("WRONGTYPE expected list, found string".to_string()),
            Reply::Array(vec![
                Reply::Bulk(Bytes::from_static(b"k")),
                Reply::Int(7),
                Reply::Array(vec![Reply::Nil]),
            ]),
        ];
        for r in replies {
            assert_eq!(Reply::decode(&r.encode()), Some(r.clone()), "{r:?}");
        }
    }

    #[test]
    fn pooled_encode_matches_vec_encode() {
        let mut arena = ByteArena::new();
        let replies = vec![
            Reply::Ok,
            Reply::Nil,
            Reply::Int(i64::MIN),
            Reply::Bulk(Bytes::from_static(b"payload")),
            Reply::Err("ERR oops".to_string()),
            Reply::Array(vec![
                Reply::Bulk(Bytes::from_static(b"nested")),
                Reply::Array(vec![Reply::Int(1), Reply::Ok]),
            ]),
        ];
        for r in &replies {
            let fresh = r.encode();
            assert_eq!(r.encoded_len(), fresh.len(), "{r:?}");
            // Twice, so the second pass exercises a recycled buffer.
            for _ in 0..2 {
                assert_eq!(r.encode_in(&mut arena), fresh, "{r:?}");
            }
        }
        assert!(arena.hits() > 0, "second passes must recycle");
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut enc = Reply::Ok.encode().to_vec();
        enc.push(9);
        assert_eq!(Reply::decode(&enc), None);
    }

    #[test]
    fn err_predicate() {
        assert!(Reply::Err("x".into()).is_err());
        assert!(!Reply::Ok.is_err());
    }
}
