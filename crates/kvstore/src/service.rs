//! Adapter exposing the store as an SMR-replicable RPC service.
//!
//! This is the moral equivalent of the paper's "port of Redis to R2P2"
//! (§7.5): the store itself knows nothing about replication; this thin
//! wrapper decodes command bytes, executes them, encodes the reply, and
//! reports the CPU cost — and the very same object runs unreplicated or
//! under any HovercRaft mode without modification.

use hovercraft::{Executed, Service};

use crate::command::Command;
use crate::cost::CostModel;
use crate::reply::Reply;
use crate::store::Store;

/// The store wrapped as a [`Service`].
pub struct KvService {
    store: Store,
    cost: CostModel,
    /// Commands that failed to decode (protocol errors).
    pub decode_errors: u64,
}

impl Default for KvService {
    fn default() -> Self {
        KvService::new(CostModel::default())
    }
}

impl KvService {
    /// Wraps a fresh store with the given cost model.
    pub fn new(cost: CostModel) -> KvService {
        KvService {
            store: Store::new(),
            cost,
            decode_errors: 0,
        }
    }

    /// The underlying store (for test inspection).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store access (e.g. dataset preloading).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }
}

impl Service for KvService {
    fn execute(&mut self, body: &[u8], read_only: bool, arena: &mut bytes::ByteArena) -> Executed {
        match Command::decode(body) {
            Ok(cmd) => {
                debug_assert!(
                    !read_only || cmd.is_read_only(),
                    "client tagged a mutating command read-only: {cmd:?}"
                );
                let (reply, metrics) = self.store.execute(&cmd);
                Executed {
                    reply: reply.encode_in(arena),
                    cost_ns: self.cost.cost_ns(&metrics),
                }
            }
            Err(e) => {
                self.decode_errors += 1;
                Executed {
                    reply: Reply::Err(format!("ERR {e}")).encode_in(arena),
                    cost_ns: 500,
                }
            }
        }
    }

    fn snapshot(&self) -> bytes::Bytes {
        self.store.snapshot()
    }

    fn restore(&mut self, snap: &[u8]) {
        self.store.restore(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn executes_encoded_commands() {
        let mut arena = bytes::ByteArena::new();
        let mut svc = KvService::default();
        let set = Command::Set(b("k"), b("v")).encode();
        let r = svc.execute(&set, false, &mut arena);
        assert_eq!(Reply::decode(&r.reply), Some(Reply::Ok));
        assert!(r.cost_ns > 0);
        let get = Command::Get(b("k")).encode();
        let r = svc.execute(&get, true, &mut arena);
        assert_eq!(Reply::decode(&r.reply), Some(Reply::Bulk(b("v"))));
    }

    #[test]
    fn decode_errors_are_reported_not_fatal() {
        let mut arena = bytes::ByteArena::new();
        let mut svc = KvService::default();
        let r = svc.execute(&[0xff, 0x00], false, &mut arena);
        assert!(Reply::decode(&r.reply).unwrap().is_err());
        assert_eq!(svc.decode_errors, 1);
    }

    #[test]
    fn service_snapshot_round_trips_through_trait() {
        use hovercraft::Service as _;
        let mut arena = bytes::ByteArena::new();
        let mut a = KvService::default();
        a.execute(&Command::Set(b("k"), b("v")).encode(), false, &mut arena);
        a.execute(&Command::SAdd(b("s"), b("m")).encode(), false, &mut arena);
        let snap = a.snapshot();
        let mut restored = KvService::default();
        restored.restore(&snap);
        let r = restored.execute(&Command::Get(b("k")).encode(), true, &mut arena);
        assert_eq!(Reply::decode(&r.reply), Some(Reply::Bulk(b("v"))));
        assert_eq!(restored.snapshot(), snap, "deterministic re-encode");
    }

    #[test]
    fn scan_cost_exceeds_point_read_cost() {
        let mut arena = bytes::ByteArena::new();
        let mut svc = KvService::default();
        for i in 0..20 {
            let key = format!("user{i:04}");
            let rec = vec![0u8; 1000];
            let cmd = Command::Insert(b("t"), b(&key), Bytes::from(rec)).encode();
            svc.execute(&cmd, false, &mut arena);
        }
        let scan = svc.execute(
            &Command::Scan(b("t"), b("user0000"), 10).encode(),
            true,
            &mut arena,
        );
        let get = svc.execute(&Command::Exists(b("t/user0000")).encode(), true, &mut arena);
        assert!(scan.cost_ns > 3 * get.cost_ns);
    }
}
