//! CPU cost model for command execution.
//!
//! The simulated application thread must be charged a realistic per-command
//! CPU time so the CPU-bound behaviour of YCSB-E on Redis (§7.5) emerges.
//! The model is affine in the work a command did: a fixed dispatch cost plus
//! per-record and per-byte terms, with the constants calibrated so that the
//! YCSB-E mix (95 % SCAN of ≤10 × 1 kB records, 5 % INSERT) lands in the
//! tens-of-microseconds regime the paper's unreplicated Redis exhibits
//! (≈35 kRPS on one node).

use crate::store::ExecMetrics;

/// Affine CPU cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed per-command dispatch/parse cost, ns.
    pub base_ns: u64,
    /// Per record touched, ns (pointer chasing, allocation).
    pub per_record_ns: u64,
    /// Per byte read from the store, ns (copy to reply).
    pub per_byte_read_ns_x100: u64,
    /// Per byte written into the store, ns (copy + allocation).
    pub per_byte_write_ns_x100: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated against §7.5 twice over: (1) the unreplicated YCSB-E
        // throughput (~35 kRPS on one core ⇒ mean op ≈ 27µs), and (2) the
        // paper's statement that the 4× speedup at N=7 matches Amdahl's law
        // "given the relative cost of SCAN and INSERT" — which pins
        // INSERT ≈ 2.3× a mean SCAN (the serial fraction). A mean SCAN
        // (≈5.5 × 1 kB records) costs ≈ 25µs; an INSERT of a 1 kB record
        // ≈ 55µs (allocation, tree rebalancing, and module bookkeeping
        // dominate the raw copy).
        CostModel {
            base_ns: 3_000,
            per_record_ns: 1_500,
            per_byte_read_ns_x100: 250,    // 2.5 ns/byte scanned
            per_byte_write_ns_x100: 5_000, // 50 ns/byte inserted
        }
    }
}

impl CostModel {
    /// CPU nanoseconds for a command with the given execution metrics.
    pub fn cost_ns(&self, m: &ExecMetrics) -> u64 {
        self.base_ns
            + self.per_record_ns * m.records as u64
            + self.per_byte_read_ns_x100 * m.bytes_read as u64 / 100
            + self.per_byte_write_ns_x100 * m.bytes_written as u64 / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_outweighs_mean_scan_per_amdahl_calibration() {
        // §7.5: the 4x speedup bound at N=7 pins INSERT ≈ 2.3x a mean SCAN.
        let c = CostModel::default();
        let mean_scan = ExecMetrics {
            bytes_read: 5_500,
            bytes_written: 0,
            records: 6,
        };
        let insert = ExecMetrics {
            bytes_read: 0,
            bytes_written: 1_000,
            records: 1,
        };
        let ratio = c.cost_ns(&insert) as f64 / c.cost_ns(&mean_scan) as f64;
        assert!((1.8..2.8).contains(&ratio), "insert/scan = {ratio:.2}");
    }

    #[test]
    fn ycsbe_mix_lands_in_tens_of_micros() {
        let c = CostModel::default();
        // Mean scan touches ~5.5 records of 1kB.
        let scan = ExecMetrics {
            bytes_read: 5_500,
            bytes_written: 0,
            records: 6,
        };
        let insert = ExecMetrics {
            bytes_read: 0,
            bytes_written: 1_000,
            records: 1,
        };
        let mean = 0.95 * c.cost_ns(&scan) as f64 + 0.05 * c.cost_ns(&insert) as f64;
        let rps = 1e9 / mean;
        assert!(
            (28_000.0..45_000.0).contains(&rps),
            "single-core YCSB-E ≈ {rps:.0} RPS (paper: ~35k)"
        );
    }

    #[test]
    fn cost_is_monotone_in_work() {
        let c = CostModel::default();
        let small = ExecMetrics {
            bytes_read: 10,
            bytes_written: 0,
            records: 1,
        };
        let big = ExecMetrics {
            bytes_read: 10_000,
            bytes_written: 0,
            records: 10,
        };
        assert!(c.cost_ns(&big) > c.cost_ns(&small));
        assert!(c.cost_ns(&ExecMetrics::default()) >= c.base_ns);
    }
}
