//! Behavioral tests of the simulation engine: latency composition, resource
//! serialization, multicast semantics, loss, failure, timers, and the
//! app-thread model.

use std::any::Any;

use simnet::{
    Addr, Agent, Ctx, FabricParams, FaultCmd, LinkFault, NicParams, Packet, SchedulerKind, Sim,
    SimDur, SimTime, SwitchEmit, SwitchProgram, ThreadClass, TimerId, Verdict,
};

#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Ping(u64),
    Pong(u64),
}

/// Replies to every ping with a pong of the same size.
struct Echo;
impl Agent<Msg> for Echo {
    fn on_packet(&mut self, pkt: Packet<Msg>, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Ping(x) = pkt.payload {
            ctx.send(pkt.src, pkt.size, Msg::Pong(x));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends `n` pings of `size` bytes at configurable spacing and records the
/// arrival time of each pong.
struct Pinger {
    server: Addr,
    n: u64,
    size: u32,
    spacing: SimDur,
    replies: Vec<(u64, SimTime)>,
}
impl Pinger {
    fn new(server: Addr, n: u64, size: u32, spacing: SimDur) -> Self {
        Pinger {
            server,
            n,
            size,
            spacing,
            replies: Vec::new(),
        }
    }
}
impl Agent<Msg> for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for i in 0..self.n {
            ctx.set_timer(self.spacing * i, i);
        }
    }
    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<'_, Msg>) {
        ctx.send(self.server, self.size, Msg::Ping(kind));
    }
    fn on_packet(&mut self, pkt: Packet<Msg>, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Pong(x) = pkt.payload {
            self.replies.push((x, ctx.now()));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts every packet delivered, remembering payloads.
struct Sink {
    got: Vec<(Msg, SimTime)>,
}
impl Agent<Msg> for Sink {
    fn on_packet(&mut self, pkt: Packet<Msg>, ctx: &mut Ctx<'_, Msg>) {
        self.got.push((pkt.payload, ctx.now()));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn sim() -> Sim<Msg> {
    Sim::new(FabricParams::default(), 42)
}

#[test]
fn round_trip_is_microsecond_scale() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        1,
        64,
        SimDur::micros(1),
    )));
    s.run_for(SimDur::millis(1));
    let p = s.agent::<Pinger>(cli);
    assert_eq!(p.replies.len(), 1);
    let rtt = p.replies[0].1 - SimTime::ZERO;
    // §2.3: any two NICs communicate in ≤10µs; a full RTT of two small
    // messages through our model must land well inside 2×10µs.
    assert!(
        rtt > SimDur::micros(2) && rtt < SimDur::micros(15),
        "rtt = {rtt}"
    );
}

#[test]
fn unloaded_latency_is_deterministic_across_runs() {
    let run = || {
        let mut s = sim();
        let srv = s.add_node(Box::new(Echo));
        let cli = s.add_node(Box::new(Pinger::new(
            Addr::node(srv),
            100,
            64,
            SimDur::micros(5),
        )));
        s.run_for(SimDur::millis(10));
        s.agent::<Pinger>(cli).replies.clone()
    };
    assert_eq!(run(), run());
}

#[test]
fn large_messages_pay_serialization() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let small = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        1,
        64,
        SimDur::micros(1),
    )));
    s.run_for(SimDur::millis(1));
    let rtt_small = s.agent::<Pinger>(small).replies[0].1 - SimTime::ZERO;

    let mut s2 = sim();
    let srv2 = s2.add_node(Box::new(Echo));
    let big = s2.add_node(Box::new(Pinger::new(
        Addr::node(srv2),
        1,
        9000,
        SimDur::micros(1),
    )));
    s2.run_for(SimDur::millis(1));
    let rtt_big = s2.agent::<Pinger>(big).replies[0].1 - SimTime::ZERO;

    // 9kB each way = ~14.4µs of extra wire time vs 64B.
    assert!(
        rtt_big > rtt_small + SimDur::micros(10),
        "small {rtt_small} big {rtt_big}"
    );
}

#[test]
fn wire_serializes_back_to_back_sends() {
    // Two 6kB pings sent at the same instant: the second pong must trail the
    // first by at least one 6kB serialization (~5µs at 10G).
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        2,
        6000,
        SimDur::ZERO,
    )));
    s.run_for(SimDur::millis(1));
    let r = &s.agent::<Pinger>(cli).replies;
    assert_eq!(r.len(), 2);
    let gap = r[1].1 - r[0].1;
    assert!(gap > SimDur::micros(4), "gap = {gap}");
}

#[test]
fn multicast_delivers_to_all_members_but_not_sender() {
    let mut s = sim();
    let a = s.add_node(Box::new(Sink { got: Vec::new() }));
    let b = s.add_node(Box::new(Sink { got: Vec::new() }));
    let c = s.add_node(Box::new(Sink { got: Vec::new() }));
    let g = Addr::group(0);
    s.add_group(g, vec![a, b, c]);
    // Node a multicasts into its own group.
    struct Caster {
        group: Addr,
    }
    impl Agent<Msg> for Caster {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.group, 100, Msg::Ping(9));
        }
        fn on_packet(&mut self, _p: Packet<Msg>, _c: &mut Ctx<'_, Msg>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let caster = s.add_node(Box::new(Caster { group: g }));
    let _ = caster;
    s.run_for(SimDur::millis(1));
    for n in [a, b, c] {
        assert_eq!(s.agent::<Sink>(n).got.len(), 1, "node {n}");
    }
    // Sender transmitted exactly once (switch does the replication).
    assert_eq!(s.counters(caster).tx_msgs, 1);
}

#[test]
fn multicast_from_member_excludes_itself() {
    let mut s = sim();
    struct SelfCaster {
        group: Addr,
        got: u32,
    }
    impl Agent<Msg> for SelfCaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.group, 100, Msg::Ping(1));
        }
        fn on_packet(&mut self, _p: Packet<Msg>, _c: &mut Ctx<'_, Msg>) {
            self.got += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let g = Addr::group(0);
    let a = s.add_node(Box::new(SelfCaster { group: g, got: 0 }));
    let b = s.add_node(Box::new(Sink { got: Vec::new() }));
    s.add_group(g, vec![a, b]);
    s.run_for(SimDur::millis(1));
    assert_eq!(s.agent::<SelfCaster>(a).got, 0, "no self-delivery");
    assert_eq!(s.agent::<Sink>(b).got.len(), 1);
}

#[test]
fn loss_rate_drops_copies_independently() {
    let mut s = sim();
    s.set_loss_rate(0.5);
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        1000,
        64,
        SimDur::micros(2),
    )));
    s.run_for(SimDur::millis(10));
    let replies = s.agent::<Pinger>(cli).replies.len();
    // Each RTT survives with p = 0.25; with 1000 trials expect ~250.
    assert!(
        (150..400).contains(&replies),
        "{replies} replies survived at 50% loss"
    );
    assert!(s.counters(srv).dropped_loss + s.counters(cli).dropped_loss > 500);
}

#[test]
fn drop_filter_targets_specific_copies() {
    let mut s = sim();
    // Drop every ping with an even sequence number.
    s.set_drop_filter(Some(Box::new(
        |pkt, _node, _now| matches!(pkt.payload, Msg::Ping(x) if x % 2 == 0),
    )));
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        10,
        64,
        SimDur::micros(5),
    )));
    s.run_for(SimDur::millis(1));
    let got: Vec<u64> = s.agent::<Pinger>(cli).replies.iter().map(|r| r.0).collect();
    assert_eq!(got, vec![1, 3, 5, 7, 9]);
}

#[test]
fn killed_node_goes_silent() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        10,
        64,
        SimDur::micros(100),
    )));
    s.kill_at(srv, SimTime::ZERO + SimDur::micros(450));
    s.run_for(SimDur::millis(2));
    // Pings 0..=4 go out before the kill takes effect; later ones are eaten.
    let replies = s.agent::<Pinger>(cli).replies.len();
    assert!(replies <= 5, "{replies}");
    assert!(replies >= 4, "{replies}");
    assert!(s.counters(srv).dropped_dead >= 5);
    assert!(!s.is_alive(srv));
}

#[test]
fn rx_ring_overflow_drops_arrivals() {
    let mut s = Sim::new(FabricParams::default(), 7);
    let nic = NicParams {
        rx_ring: 4,
        // Make RX processing glacial so the ring fills.
        rx_cpu_per_frag: SimDur::micros(100),
        ..NicParams::default()
    };
    let srv = s.add_node_with(Box::new(Echo), nic);
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        64,
        64,
        SimDur::micros(1),
    )));
    let _ = cli;
    s.run_for(SimDur::millis(20));
    let c = s.counters(srv);
    assert!(c.rx_dropped_backlog > 0, "{c:?}");
    assert!(c.rx_msgs < 64);
}

#[test]
fn app_thread_serializes_work_and_replies_from_app() {
    // A server that defers each request to the app thread for 10µs and
    // replies from `on_app_done`: two simultaneous requests must complete
    // 10µs apart, demonstrating app-thread FIFO serialization.
    struct AppServer {
        pending: Vec<(Addr, u64)>,
    }
    impl Agent<Msg> for AppServer {
        fn on_packet(&mut self, pkt: Packet<Msg>, ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Ping(x) = pkt.payload {
                self.pending.push((pkt.src, x));
                ctx.exec_app(SimDur::micros(10), self.pending.len() as u64 - 1);
            }
        }
        fn on_app_done(&mut self, token: u64, ctx: &mut Ctx<'_, Msg>) {
            assert_eq!(ctx.thread(), ThreadClass::App);
            let (dst, x) = self.pending[token as usize];
            ctx.send(dst, 8, Msg::Pong(x));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut s = sim();
    let srv = s.add_node(Box::new(AppServer {
        pending: Vec::new(),
    }));
    let cli = s.add_node(Box::new(Pinger::new(Addr::node(srv), 2, 64, SimDur::ZERO)));
    s.run_for(SimDur::millis(1));
    let r = &s.agent::<Pinger>(cli).replies;
    assert_eq!(r.len(), 2);
    let gap = r[1].1 - r[0].1;
    assert!(
        gap >= SimDur::micros(10) && gap < SimDur::micros(12),
        "gap = {gap}"
    );
}

#[test]
fn cancelled_timer_does_not_fire() {
    struct T {
        fired: u32,
    }
    impl Agent<Msg> for T {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            let id = ctx.set_timer(SimDur::micros(10), 1);
            ctx.set_timer(SimDur::micros(20), 2);
            ctx.cancel_timer(id);
        }
        fn on_timer(&mut self, _id: TimerId, kind: u64, _ctx: &mut Ctx<'_, Msg>) {
            assert_eq!(kind, 2, "cancelled timer fired");
            self.fired += 1;
        }
        fn on_packet(&mut self, _p: Packet<Msg>, _c: &mut Ctx<'_, Msg>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut s = sim();
    let n = s.add_node(Box::new(T { fired: 0 }));
    s.run_for(SimDur::millis(1));
    assert_eq!(s.agent::<T>(n).fired, 1);
}

#[test]
fn switch_program_can_rewrite_and_consume() {
    /// Redirects pings addressed to a virtual address onto a group, and
    /// swallows pongs entirely.
    struct Redirector {
        vip: Addr,
        group: Addr,
        seen: u64,
    }
    impl SwitchProgram<Msg> for Redirector {
        fn process(
            &mut self,
            mut pkt: Packet<Msg>,
            _now: SimTime,
            _out: &mut SwitchEmit<Msg>,
        ) -> Verdict<Msg> {
            self.seen += 1;
            match pkt.payload {
                Msg::Ping(_) if pkt.dst == self.vip => {
                    pkt.dst = self.group;
                    Verdict::Forward(pkt)
                }
                Msg::Pong(_) => Verdict::Consume,
                _ => Verdict::Forward(pkt),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let mut s = sim();
    let vip = Addr::group(99);
    let g = Addr::group(0);
    let a = s.add_node(Box::new(Sink { got: Vec::new() }));
    let b = s.add_node(Box::new(Sink { got: Vec::new() }));
    s.add_group(g, vec![a, b]);
    s.add_group(vip, vec![]);
    let prog = s.add_switch_program(Box::new(Redirector {
        vip,
        group: g,
        seen: 0,
    }));
    let cli = s.add_node(Box::new(Pinger::new(vip, 3, 64, SimDur::micros(1))));
    s.run_for(SimDur::millis(1));
    assert_eq!(s.agent::<Sink>(a).got.len(), 3);
    assert_eq!(s.agent::<Sink>(b).got.len(), 3);
    assert!(s.agent::<Pinger>(cli).replies.is_empty(), "pongs consumed");
    assert!(s.switch_program_mut::<Redirector>(prog).seen >= 3);
}

#[test]
fn counters_track_traffic() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        5,
        200,
        SimDur::micros(1),
    )));
    s.run_for(SimDur::millis(1));
    let cs = s.counters(srv);
    let cc = s.counters(cli);
    assert_eq!(cs.rx_msgs, 5);
    assert_eq!(cs.tx_msgs, 5);
    assert_eq!(cs.rx_bytes, 1000);
    assert_eq!(cc.tx_msgs, 5);
    assert_eq!(cc.rx_msgs, 5);
    s.reset_counters();
    assert_eq!(s.counters(srv).rx_msgs, 0);
}

#[test]
fn inject_sends_as_if_from_node() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Sink { got: Vec::new() }));
    // Inject a ping "from" the sink node; the echo replies to it.
    s.inject(cli, Addr::node(srv), 64, Msg::Ping(5));
    s.run_for(SimDur::millis(1));
    let got = &s.agent::<Sink>(cli).got;
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, Msg::Pong(5));
    assert_eq!(s.counters(cli).tx_msgs, 1, "charged to the injecting node");
}

#[test]
fn burn_delays_subsequent_net_work() {
    /// Burns 50µs of net-thread time on the first packet, then echoes.
    struct Burner {
        first: bool,
    }
    impl Agent<Msg> for Burner {
        fn on_packet(&mut self, pkt: Packet<Msg>, ctx: &mut Ctx<'_, Msg>) {
            if self.first {
                self.first = false;
                ctx.burn(SimDur::micros(50), ThreadClass::Net);
            }
            if let Msg::Ping(x) = pkt.payload {
                ctx.send(pkt.src, pkt.size, Msg::Pong(x));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut s = sim();
    let srv = s.add_node(Box::new(Burner { first: true }));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        2,
        64,
        SimDur::micros(10),
    )));
    s.run_for(SimDur::millis(1));
    let r = &s.agent::<Pinger>(cli).replies;
    assert_eq!(r.len(), 2);
    // The burn occupies the network thread before the reply send in the
    // same handler, so even the first reply leaves after ~50µs — and the
    // second ping's processing queues behind it as well.
    let t0 = r[0].1 - SimTime::ZERO;
    assert!(t0 >= SimDur::micros(50), "first reply at {t0}");
    assert!(r[1].1 >= r[0].1, "FIFO preserved");
}

#[test]
fn kill_in_the_past_clamps_to_now_and_repeat_kills_are_noops() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let _cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        30,
        64,
        SimDur::micros(100),
    )));
    s.run_for(SimDur::millis(1));
    // Randomly generated fault schedules can land before `now`; the kill
    // must fire immediately rather than panic or rewind virtual time.
    s.kill_at(srv, SimTime::ZERO + SimDur::micros(1));
    s.kill_at(srv, SimTime::ZERO); // second (also past) kill on a dead node
    s.run_for(SimDur::millis(5));
    assert!(!s.is_alive(srv));
    assert_eq!(s.restarts(srv), 0, "kill is not a restart");
}

#[test]
fn paused_node_defers_delivery_until_resume() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        10,
        64,
        SimDur::micros(50),
    )));
    s.pause_at(srv, SimTime::ZERO);
    s.resume_at(srv, SimTime::ZERO + SimDur::millis(1));
    s.run_for(SimDur::millis(2));
    let replies = &s.agent::<Pinger>(cli).replies;
    assert_eq!(replies.len(), 10, "a stall loses nothing that fit the ring");
    let resumed = SimTime::ZERO + SimDur::millis(1);
    assert!(
        replies.iter().all(|&(_, at)| at >= resumed),
        "no echo may leave the server while it is stalled: {replies:?}"
    );
}

#[test]
fn partitioned_groups_cannot_exchange_packets_until_heal() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        20,
        64,
        SimDur::micros(100),
    )));
    s.partition_at(vec![vec![srv], vec![cli]], SimTime::ZERO);
    s.heal_at(SimTime::ZERO + SimDur::micros(950));
    s.run_for(SimDur::millis(4));
    let replies = &s.agent::<Pinger>(cli).replies;
    // Pings 0..=9 fall inside the partition window and are dropped (no
    // retransmission at this layer); 10..=19 complete after the heal.
    let answered: Vec<u64> = replies.iter().map(|r| r.0).collect();
    assert_eq!(answered, (10..20).collect::<Vec<u64>>());
}

#[test]
fn restart_bumps_the_epoch_and_the_rebuilt_agent_serves_on() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        20,
        64,
        SimDur::micros(100),
    )));
    // The hook decides what survives the crash; Echo is stateless, so
    // "durable state" is the whole agent.
    s.set_restart_hook(Box::new(|_node, _now, old| old));
    s.restart_at(srv, SimTime::ZERO + SimDur::millis(1));
    s.run_for(SimDur::millis(4));
    assert!(s.is_alive(srv));
    assert_eq!(s.restarts(srv), 1);
    let replies = s.agent::<Pinger>(cli).replies.len();
    // At most the ping in flight at the crash instant is lost.
    assert!(replies >= 19, "served {replies}/20 across a restart");
}

#[test]
fn duplicate_link_fault_delivers_matching_copies_twice() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        5,
        64,
        SimDur::micros(100),
    )));
    s.schedule_fault(
        SimTime::ZERO,
        FaultCmd::Link {
            fault: LinkFault {
                src: None,
                dst: Some(srv),
                extra_delay: SimDur::ZERO,
                dup_prob: 1.0,
                until: SimTime::ZERO + SimDur::millis(1),
            },
        },
    );
    s.run_for(SimDur::millis(2));
    // Every ping reaches the echo server twice; the pongs travel on an
    // unfaulted link, so the client sees exactly double.
    assert_eq!(s.agent::<Pinger>(cli).replies.len(), 10);
}

#[test]
fn delay_link_fault_slows_matching_copies() {
    let mut s = sim();
    let srv = s.add_node(Box::new(Echo));
    let cli = s.add_node(Box::new(Pinger::new(
        Addr::node(srv),
        1,
        64,
        SimDur::micros(10),
    )));
    s.schedule_fault(
        SimTime::ZERO,
        FaultCmd::Link {
            fault: LinkFault {
                src: None,
                dst: Some(srv),
                extra_delay: SimDur::micros(300),
                dup_prob: 0.0,
                until: SimTime::ZERO + SimDur::millis(1),
            },
        },
    );
    s.run_for(SimDur::millis(2));
    let replies = &s.agent::<Pinger>(cli).replies;
    assert_eq!(replies.len(), 1);
    let rtt = replies[0].1 - SimTime::ZERO;
    assert!(
        rtt >= SimDur::micros(300),
        "spike must slow the request: {rtt}"
    );
}

/// Arms a huge batch of timers all expiring at the same instant, then goes
/// quiet — the same-instant storm shape that used to high-watermark the
/// event slab's free list forever.
struct TimerStorm {
    timers: u64,
    fired: u64,
}
impl Agent<Msg> for TimerStorm {
    fn on_packet(&mut self, _pkt: Packet<Msg>, _ctx: &mut Ctx<'_, Msg>) {}
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for _ in 0..self.timers {
            ctx.set_timer(SimDur::millis(1), 0);
        }
    }
    fn on_timer(&mut self, _id: TimerId, _kind: u64, _ctx: &mut Ctx<'_, Msg>) {
        self.fired += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn slab_capacity_is_reclaimed_after_a_same_instant_burst() {
    const STORM: u64 = 1_000_000;
    let mut sim = Sim::new(FabricParams::default(), 11);
    let n = sim.add_node(Box::new(TimerStorm {
        timers: STORM,
        fired: 0,
    }));
    sim.run_for(SimDur::millis(2));
    assert_eq!(sim.agent::<TimerStorm>(n).fired, STORM);
    let (slab_cap, free, bucket_cap) = sim.sched_footprint();
    assert!(
        slab_cap < STORM as usize / 64,
        "slab capacity {slab_cap} still holds the 10^6-event burst"
    );
    assert!(free <= slab_cap, "free list {free} exceeds slab {slab_cap}");
    assert!(
        bucket_cap <= 4096,
        "now-bucket capacity {bucket_cap} not reclaimed"
    );
    // The engine must stay fully usable after the shrink: run a normal
    // request/reply exchange through the compacted structures.
    let server = sim.add_node(Box::new(Echo));
    let c = sim.add_node(Box::new(Pinger::new(
        Addr::node(server),
        16,
        64,
        SimDur::micros(5),
    )));
    sim.run_for(SimDur::millis(2));
    assert_eq!(sim.agent::<Pinger>(c).replies.len(), 16);
}

// ---- timer-wheel scheduler behavior (engine level) -------------------------

/// The wheel and the heap are interchangeable schedulers: an identical
/// world driven under both must produce identical deliveries at identical
/// instants, event for event. (The chaos-digest CI gate checks the same
/// property on the full protocol stack; this is the minimal engine-level
/// version that a scheduler regression would hit first.)
#[test]
fn wheel_and_heap_engines_replay_identically() {
    let run = |sched: SchedulerKind| {
        let mut s = Sim::new_with_scheduler(FabricParams::default(), 42, sched);
        let server = s.add_node(Box::new(Echo));
        // Mixed spacings: some pings land within one level-0 wheel window
        // of each other, others force the origin across cascade boundaries.
        let c1 = s.add_node(Box::new(Pinger::new(
            Addr::node(server),
            40,
            200,
            SimDur::nanos(700),
        )));
        let c2 = s.add_node(Box::new(Pinger::new(
            Addr::node(server),
            15,
            1000,
            SimDur::micros(90),
        )));
        s.run_for(SimDur::millis(3));
        let mut replies = s.agent::<Pinger>(c1).replies.clone();
        replies.extend(s.agent::<Pinger>(c2).replies.iter().copied());
        (replies, s.events_processed())
    };
    assert_eq!(run(SchedulerKind::Wheel), run(SchedulerKind::Heap));
}

/// Cancelling a timer must stick even after the wheel has internally
/// cascaded the entry between levels: the deadline sits several overflow
/// levels up at arm time, and the cancel happens after enough virtual time
/// has passed that the entry has been redistributed at least once.
#[test]
fn cancelled_timer_cancels_even_after_cascading() {
    struct T {
        victim: Option<TimerId>,
        fired_kinds: Vec<u64>,
    }
    impl Agent<Msg> for T {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            // 500 µs from origin: far above the wheel's near level, so the
            // entry starts high and cascades as the origin advances.
            self.victim = Some(ctx.set_timer(SimDur::micros(500), 1));
            // Intermediate timers march the wheel origin across cascade
            // boundaries while the victim is still pending.
            for i in 0..8 {
                ctx.set_timer(SimDur::micros(50 * (i + 1)), 10 + i);
            }
        }
        fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<'_, Msg>) {
            assert_ne!(kind, 1, "cancelled timer fired");
            self.fired_kinds.push(kind);
            // Cancel at the second-to-last intermediate (400 µs), long
            // after the victim's entry has been moved between levels.
            if kind == 17 {
                ctx.cancel_timer(self.victim.take().expect("armed once"));
            }
        }
        fn on_packet(&mut self, _p: Packet<Msg>, _c: &mut Ctx<'_, Msg>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut s = sim();
    let n = s.add_node(Box::new(T {
        victim: None,
        fired_kinds: Vec::new(),
    }));
    s.run_for(SimDur::millis(2));
    assert_eq!(
        s.agent::<T>(n).fired_kinds,
        (10..18).collect::<Vec<u64>>(),
        "every intermediate fired in deadline order, the victim never did"
    );
}

/// Timers armed for the same instant fire in arming order — the engine's
/// (time, seq) total order reaches through the wheel's same-instant drain
/// and the now-bucket alike.
#[test]
fn same_instant_timers_fire_in_arming_order() {
    struct T {
        fired_kinds: Vec<u64>,
    }
    impl Agent<Msg> for T {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            for kind in 0..6 {
                ctx.set_timer(SimDur::micros(25), kind);
            }
        }
        fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<'_, Msg>) {
            self.fired_kinds.push(kind);
            // First firing re-arms two more for the *same* instant: they
            // route through the engine's now-bucket rather than the wheel
            // and must still come out in arming order, after the batch.
            if kind == 0 {
                ctx.set_timer(SimDur::ZERO, 100);
                ctx.set_timer(SimDur::ZERO, 101);
            }
        }
        fn on_packet(&mut self, _p: Packet<Msg>, _c: &mut Ctx<'_, Msg>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut s = sim();
    let n = s.add_node(Box::new(T {
        fired_kinds: Vec::new(),
    }));
    s.run_for(SimDur::millis(1));
    assert_eq!(
        s.agent::<T>(n).fired_kinds,
        vec![0, 1, 2, 3, 4, 5, 100, 101]
    );
}
