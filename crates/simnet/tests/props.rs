//! Property-based tests of the simulation engine: conservation (every sent
//! message is delivered or accounted as dropped), FIFO ordering between a
//! sender/receiver pair, and bit-exact determinism.

use std::any::Any;

use proptest::prelude::*;
use simnet::{Addr, Agent, Ctx, FabricParams, Packet, Sim, SimDur, TimerId};

/// Sends a scripted schedule of messages; records everything received.
struct Scripted {
    /// (delay_us, dst, size) triples fired from start.
    plan: Vec<(u64, u32, u32)>,
    received: Vec<(u32, u64)>, // (src, seq)
    seq: u64,
}

impl Agent<(u32, u64)> for Scripted {
    fn on_start(&mut self, ctx: &mut Ctx<'_, (u32, u64)>) {
        for (i, &(delay, _, _)) in self.plan.iter().enumerate() {
            ctx.set_timer(SimDur::micros(delay), i as u64);
        }
    }
    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<'_, (u32, u64)>) {
        let (_, dst, size) = self.plan[kind as usize];
        let seq = self.seq;
        self.seq += 1;
        ctx.send(Addr(dst), size.clamp(1, 9000), (ctx.node_id(), seq));
    }
    fn on_packet(&mut self, pkt: Packet<(u32, u64)>, _ctx: &mut Ctx<'_, (u32, u64)>) {
        self.received.push(pkt.payload);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn build(plans: &[Vec<(u64, u32, u32)>], seed: u64, loss: f64) -> Sim<(u32, u64)> {
    let mut sim = Sim::new(FabricParams::default(), seed);
    for p in plans {
        sim.add_node(Box::new(Scripted {
            plan: p.clone(),
            received: Vec::new(),
            seq: 0,
        }));
    }
    sim.set_loss_rate(loss);
    sim
}

fn arb_plan(n_nodes: u32) -> impl Strategy<Value = Vec<(u64, u32, u32)>> {
    proptest::collection::vec((0u64..5_000, 0..n_nodes, 1u32..3_000), 0..40)
}

proptest! {
    /// Without loss, every message sent to a live node is delivered exactly
    /// once (conservation).
    #[test]
    fn conservation_without_loss(
        plans in proptest::collection::vec(arb_plan(4), 4..5),
        seed in any::<u64>(),
    ) {
        let mut sim = build(&plans, seed, 0.0);
        sim.run_for(SimDur::secs(1));
        let mut sent_total = 0usize;
        for p in &plans {
            // Self-sends are legal unicast.
            sent_total += p.len();
        }
        let mut received_total = 0usize;
        let mut dropped = 0u64;
        for n in 0..4u32 {
            received_total += sim.agent::<Scripted>(n).received.len();
            let c = sim.counters(n);
            dropped += c.rx_dropped_backlog + c.dropped_loss + c.dropped_dead;
        }
        prop_assert_eq!(received_total as u64 + dropped, sent_total as u64);
        prop_assert_eq!(dropped, 0);
    }

    /// Same-pair messages of equal size arrive in send order (per-sender
    /// FIFO through the serial NIC/wire resources).
    #[test]
    fn per_pair_fifo_for_equal_sizes(
        delays in proptest::collection::vec(0u64..2_000, 1..50),
        seed in any::<u64>(),
    ) {
        let plan: Vec<(u64, u32, u32)> = delays.iter().map(|&d| (d, 1, 64)).collect();
        let plans = vec![plan, Vec::new()];
        let mut sim = build(&plans, seed, 0.0);
        sim.run_for(SimDur::secs(1));
        let received = &sim.agent::<Scripted>(1).received;
        let seqs: Vec<u64> = received.iter().map(|(_, s)| *s).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seqs, sorted, "same-size same-pair messages reordered");
    }

    /// Bit-exact determinism for any plan, seed, and loss rate.
    #[test]
    fn engine_is_deterministic(
        plans in proptest::collection::vec(arb_plan(3), 3..4),
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
    ) {
        let run = || {
            let mut sim = build(&plans, seed, loss);
            sim.run_for(SimDur::secs(1));
            (0..3u32)
                .map(|n| (sim.agent::<Scripted>(n).received.clone(), sim.counters(n)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
