//! Packets and addressing.
//!
//! The simulator is generic over the message payload type `M`; protocols
//! define their own message enums and the network only cares about sizes and
//! destinations. Addresses form a flat space: low values are node unicast
//! addresses (assigned by [`crate::Sim::add_node`] in order) and addresses at
//! or above [`Addr::GROUP_BASE`] are multicast groups that must be registered
//! with [`crate::Sim::add_group`].

use crate::time::SimTime;

/// Identifier of a simulated node (server, client, or middlebox host).
pub type NodeId = u32;

/// A network address: either a node's unicast address or a multicast group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr(pub u32);

impl Addr {
    /// Addresses at or above this value denote multicast groups.
    pub const GROUP_BASE: u32 = 0x8000_0000;

    /// The unicast address of node `n`.
    #[inline]
    pub const fn node(n: NodeId) -> Addr {
        Addr(n)
    }

    /// The `k`-th multicast group address.
    #[inline]
    pub const fn group(k: u32) -> Addr {
        Addr(Addr::GROUP_BASE + k)
    }

    /// True if this address denotes a multicast group.
    #[inline]
    pub const fn is_group(self) -> bool {
        self.0 >= Addr::GROUP_BASE
    }

    /// The node id, if this is a unicast address.
    #[inline]
    pub fn as_node(self) -> Option<NodeId> {
        if self.is_group() {
            None
        } else {
            Some(self.0)
        }
    }
}

/// A packet in flight.
///
/// `size` is the total message size in bytes on the wire (headers included);
/// the NIC model charges serialization and per-fragment CPU costs from it.
/// `payload` is the protocol message itself, passed by value to the receiving
/// agent. Multicast delivery clones the payload per receiver.
#[derive(Clone, Debug)]
pub struct Packet<M> {
    /// Unicast address of the sender.
    pub src: Addr,
    /// Destination: a node or a multicast group.
    pub dst: Addr,
    /// Wire size in bytes.
    pub size: u32,
    /// Protocol message.
    pub payload: M,
    /// Time the packet was handed to the sender's transmit path. Useful for
    /// switch programs and tracing; not used by the forwarding logic.
    pub sent_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_classification() {
        assert!(!Addr::node(0).is_group());
        assert!(!Addr::node(1234).is_group());
        assert!(Addr::group(0).is_group());
        assert!(Addr::group(7).is_group());
        assert_eq!(Addr::node(3).as_node(), Some(3));
        assert_eq!(Addr::group(3).as_node(), None);
    }

    #[test]
    fn group_addresses_are_distinct() {
        assert_ne!(Addr::group(0), Addr::group(1));
        assert_ne!(Addr::group(0), Addr::node(0));
    }
}
