//! Per-thread simulation profiling counters.
//!
//! The figure suite runs whole simulator worlds on pool worker threads, and
//! a world runs start-to-finish on one thread — so plain thread-local
//! counters, snapshotted before and after a run on the executing thread,
//! attribute costs to worlds with zero synchronization on the hot path. An
//! increment here is one thread-local `u64` bump (no atomics, no locks);
//! the counters are always on, and the `sim_throughput` events/sec gate
//! bounds their cost.
//!
//! Three cost classes are counted:
//!
//! * **Scheduler ops** — event-queue pushes and pops in the engine
//!   ([`ProfileSnapshot::sched_ops`]); the baseline "how much work did this
//!   world do" denominator.
//! * **Tracer lock acquisitions** — every acquisition of a tracer's ring
//!   lock ([`ProfileSnapshot::tracer_locks`]); this is the counter that
//!   distinguishes "the tracer lock is hot" from "the tracer lock is
//!   contended" when diagnosing parallel-suite slowdowns.
//! * **Heap traffic** — allocation calls and bytes, counted only when the
//!   running binary installs [`CountingAlloc`] as its global allocator
//!   (the bench binaries do; unit tests don't and simply read zeros).
//!   Measured oversubscription cost on this container tracks allocator
//!   pressure, so bytes-allocated-per-world is the headline `--profile`
//!   number.
//!
//! Snapshots subtract ([`ProfileSnapshot::delta_since`]) so callers bracket
//! a region: snapshot, run the world, snapshot, diff.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    static TRACER_LOCKS: Cell<u64> = const { Cell::new(0) };
    static SCHED_OPS: Cell<u64> = const { Cell::new(0) };
    static WHEEL_CASCADES: Cell<u64> = const { Cell::new(0) };
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Point-in-time reading of this thread's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Tracer ring-lock acquisitions on this thread.
    pub tracer_locks: u64,
    /// Engine event-queue operations (pushes + pops) on this thread.
    pub sched_ops: u64,
    /// Timer-wheel cascade entry moves on this thread: each count is one
    /// pending event redistributed from an overflow level toward the near
    /// wheel. The ratio `wheel_cascades / sched_ops` says how often the
    /// workload's delays outrun the near wheel's horizon.
    pub wheel_cascades: u64,
    /// Global-allocator calls (alloc / realloc / alloc_zeroed) on this
    /// thread. Zero unless the binary installs [`CountingAlloc`].
    pub alloc_calls: u64,
    /// Bytes requested from the global allocator on this thread. Zero
    /// unless the binary installs [`CountingAlloc`].
    pub alloc_bytes: u64,
}

impl ProfileSnapshot {
    /// Reads the current thread's counters.
    pub fn now() -> ProfileSnapshot {
        ProfileSnapshot {
            tracer_locks: TRACER_LOCKS.with(Cell::get),
            sched_ops: SCHED_OPS.with(Cell::get),
            wheel_cascades: WHEEL_CASCADES.with(Cell::get),
            alloc_calls: ALLOC_CALLS.with(Cell::get),
            alloc_bytes: ALLOC_BYTES.with(Cell::get),
        }
    }

    /// Counter deltas accumulated since `earlier` (taken on the same
    /// thread).
    pub fn delta_since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        ProfileSnapshot {
            tracer_locks: self.tracer_locks - earlier.tracer_locks,
            sched_ops: self.sched_ops - earlier.sched_ops,
            wheel_cascades: self.wheel_cascades - earlier.wheel_cascades,
            alloc_calls: self.alloc_calls - earlier.alloc_calls,
            alloc_bytes: self.alloc_bytes - earlier.alloc_bytes,
        }
    }

    /// Adds `other`'s counts into `self` (for merging per-world deltas
    /// into a suite total).
    pub fn accumulate(&mut self, other: &ProfileSnapshot) {
        self.tracer_locks += other.tracer_locks;
        self.sched_ops += other.sched_ops;
        self.wheel_cascades += other.wheel_cascades;
        self.alloc_calls += other.alloc_calls;
        self.alloc_bytes += other.alloc_bytes;
    }
}

#[inline]
pub(crate) fn note_tracer_lock() {
    // `try_with` instead of `with`: never panic from inside the tracing
    // hot path, even during thread teardown.
    let _ = TRACER_LOCKS.try_with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn note_sched_op() {
    let _ = SCHED_OPS.try_with(|c| c.set(c.get() + 1));
}

/// Counts `n` timer-wheel cascade entry moves (one per pending event
/// redistributed from an overflow level toward the near wheel).
#[inline]
pub(crate) fn note_wheel_cascades(n: u64) {
    let _ = WHEEL_CASCADES.try_with(|c| c.set(c.get() + n));
}

/// Global allocator wrapper that counts calls and bytes per thread, then
/// delegates to [`System`]. Install it in a binary to light up the
/// `alloc_*` fields of [`ProfileSnapshot`]:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: simnet::CountingAlloc = simnet::CountingAlloc;
/// ```
///
/// The counters are const-initialized thread-locals with no destructor, so
/// counting is safe from any allocation context, including before `main`
/// and during thread teardown (where the increment is silently skipped).
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + new_size as u64));
        System.realloc(ptr, layout, new_size)
    }
}

/// A minimal test-and-test-and-set spin lock that **cannot poison**.
///
/// The tracer ring is private to one simulator world and worlds are
/// single-threaded, so its lock is uncontended by construction — what
/// matters is the *uncontended* acquire cost (one compare-exchange, no
/// futex bookkeeping) and the failure behavior: the guard releases on drop
/// **including during a panic unwind**, so a checker panicking inside
/// [`crate::Tracer::for_each_since`] leaves the tracer fully usable for
/// the violation-bundle dump instead of cascading `PoisonError` panics
/// through every other clone holder (which used to bury the original
/// panic message). Spinning is acceptable precisely because contention is
/// limited to "a panic dump racing a recorder" — transient by nature.
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: std::cell::UnsafeCell<T>,
}

// Same bounds as Mutex: the lock hands out &mut T across threads.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Wraps `value` in an unlocked lock.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            value: std::cell::UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning until it is free. Never fails, never
    /// poisons.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Test-and-test-and-set: spin on a plain load so the waiting
            // core doesn't bounce the cache line with failed RMWs.
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
        SpinGuard { lock: self }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Best-effort, like std's Mutex: don't block a Debug print.
        f.debug_struct("SpinLock")
            .field("locked", &self.locked.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// RAII guard for [`SpinLock`]; releases on drop, unwind included.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard holds the lock, so access is exclusive.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn snapshot_delta_isolates_a_region() {
        let before = ProfileSnapshot::now();
        note_sched_op();
        note_sched_op();
        note_tracer_lock();
        let after = ProfileSnapshot::now();
        let d = after.delta_since(&before);
        assert_eq!(d.sched_ops, 2);
        assert_eq!(d.tracer_locks, 1);
    }

    #[test]
    fn counters_are_per_thread() {
        let before = ProfileSnapshot::now();
        std::thread::spawn(|| {
            for _ in 0..1000 {
                note_sched_op();
            }
        })
        .join()
        .unwrap();
        let after = ProfileSnapshot::now();
        assert_eq!(
            after.delta_since(&before).sched_ops,
            0,
            "another thread's ops must not bleed into this thread's counters"
        );
    }

    #[test]
    fn spinlock_guards_exclusive_access() {
        let lock = Arc::new(SpinLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn spinlock_releases_on_unwind() {
        let lock = SpinLock::new(7u64);
        let res = catch_unwind(AssertUnwindSafe(|| {
            let _g = lock.lock();
            panic!("holder dies");
        }));
        assert!(res.is_err());
        // A poisoning lock would deadlock or panic here; the spin lock
        // must simply be free again.
        assert_eq!(*lock.lock(), 7);
    }
}
