//! Structured protocol-event tracing.
//!
//! A [`Tracer`] is a cheap, clonable handle to a bounded ring buffer of
//! [`TraceEvent`]s. Protocol layers (Raft, HovercRaft nodes, the switch
//! programs) record virtual-time-stamped events through it; the testbed's
//! invariant checker scans the stream incrementally, and on a test failure
//! the last few hundred events are dumped as a replayable bundle. Because
//! the simulation is deterministic, re-running the same configuration and
//! seed reproduces the identical stream.
//!
//! Events are intentionally flat: a static `kind` tag, one numeric `key`
//! (request id, log index, term — whatever identifies the event), and a
//! [`Detail`] payload. Keeping the key numeric lets checkers (e.g.
//! exactly-one-reply-per-request) scan without parsing strings — and the
//! detail is *lazy*: hot paths record a render function plus up to three
//! raw words, and the human-readable text is produced only when a trace is
//! actually displayed (a violation bundle, a test failure dump). At full
//! load the simulator records millions of events and renders none of them.

use crate::packet::{Addr, NodeId};
use crate::profile::{self, SpinGuard, SpinLock};
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Renders a lazily recorded detail payload from its three raw words.
///
/// Plain-std function-pointer type so protocol crates can expose renderers
/// without depending on `simnet`.
pub type DetailFn = fn(&mut fmt::Formatter<'_>, u64, u64, u64) -> fmt::Result;

/// The human-readable context of a [`TraceEvent`], rendered on demand.
#[derive(Clone, Debug)]
pub enum Detail {
    /// No payload beyond `kind` and `key`.
    None,
    /// Eagerly rendered text — for cold paths (fault transitions, test
    /// scaffolding) where a `format!` per event is fine.
    Text(String),
    /// Deferred rendering: a function pointer plus its arguments. Recording
    /// one of these is a few word moves — no allocation, no formatting.
    Lazy {
        /// Renders `args` into display form.
        render: DetailFn,
        /// Raw words interpreted by `render`.
        args: (u64, u64, u64),
    },
}

impl fmt::Display for Detail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Detail::None => Ok(()),
            Detail::Text(s) => f.write_str(s),
            Detail::Lazy {
                render,
                args: (a, b, c),
            } => render(f, *a, *b, *c),
        }
    }
}

impl Detail {
    /// Renders to an owned string (test and checker convenience; the hot
    /// path never calls this).
    pub fn to_text(&self) -> String {
        self.to_string()
    }
}

// Semantic equality: two details are equal when they render identically.
// (Comparing the `Lazy` function pointers would be both meaningless — the
// compiler may merge or duplicate them — and wrong: equality of a trace
// event is about what an observer would read.)
impl PartialEq for Detail {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Detail::None, Detail::None) => true,
            (Detail::Text(a), Detail::Text(b)) => a == b,
            _ => self.to_text() == other.to_text(),
        }
    }
}
impl Eq for Detail {}

impl From<String> for Detail {
    fn from(s: String) -> Detail {
        Detail::Text(s)
    }
}

impl From<&str> for Detail {
    fn from(s: &str) -> Detail {
        Detail::Text(s.to_string())
    }
}

/// One protocol event, stamped with virtual time and the emitting node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (never reused, survives ring eviction).
    pub seq: u64,
    /// Virtual time at which the event was recorded.
    pub at: SimTime,
    /// Emitting entity: a server's [`NodeId`], or a group address raw value
    /// (high bit set) for in-network switch programs.
    pub node: NodeId,
    /// Static event tag, e.g. `"reply"`, `"commit_advance"`, `"fc_admit"`.
    pub kind: &'static str,
    /// Primary numeric identifier (request id, log index, term, ...);
    /// `0` when the event has no natural key.
    pub key: u64,
    /// Human-readable context, rendered on demand.
    pub detail: Detail,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.at.as_nanos();
        // Switch programs record their group address as the "node"; render
        // those as swN to distinguish them from servers.
        if self.node & Addr::GROUP_BASE != 0 {
            write!(
                f,
                "[{:>12}ns] sw{:<3} {:<16} {}",
                ns,
                self.node & !Addr::GROUP_BASE,
                self.kind,
                self.detail
            )
        } else {
            write!(
                f,
                "[{:>12}ns] n{:<4} {:<16} {}",
                ns, self.node, self.kind, self.detail
            )
        }
    }
}

struct Inner {
    cap: usize,
    next_seq: u64,
    buf: VecDeque<TraceEvent>,
}

/// Clonable handle to a shared, bounded event ring.
///
/// All clones append to the same buffer; when the ring is full the oldest
/// event is evicted (its `seq` is never reused, so incremental consumers
/// can detect gaps).
///
/// The handle is `Send + Sync` (an `Arc<SpinLock<_>>`, not
/// `Rc<RefCell<_>>`) so a whole `Sim` world — which clones the tracer into
/// every server, switch program, and restart hook — can be *constructed
/// and driven on a pool worker thread*. Each simulation still owns a
/// private tracer, so the lock is uncontended by construction; the spin
/// lock keeps the uncontended acquire to one compare-exchange with no
/// futex bookkeeping, and — unlike a std `Mutex` — it **cannot poison**: a
/// checker panicking inside [`Tracer::for_each_since`] releases the lock
/// on unwind and every other clone holder keeps working, so the original
/// panic message and the violation-bundle dump survive intact. Lock
/// acquisitions are counted into the thread's
/// [`crate::ProfileSnapshot::tracer_locks`].
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<SpinLock<Inner>>,
}

/// Default ring capacity: enough to hold the interesting tail of a
/// millisecond-scale checking window at full load.
pub const DEFAULT_TRACE_CAP: usize = 16_384;

impl Default for Tracer {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAP)
    }
}

impl Tracer {
    /// Creates a tracer whose ring holds at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Tracer {
            inner: Arc::new(SpinLock::new(Inner {
                cap: cap.max(1),
                next_seq: 0,
                buf: VecDeque::new(),
            })),
        }
    }

    /// Acquires the ring lock, counting the acquisition into the calling
    /// thread's profiling counters. Every method goes through here.
    fn ring(&self) -> SpinGuard<'_, Inner> {
        profile::note_tracer_lock();
        self.inner.lock()
    }

    /// Appends one event, evicting the oldest if the ring is full.
    pub fn record(
        &self,
        at: SimTime,
        node: NodeId,
        kind: &'static str,
        key: u64,
        detail: impl Into<Detail>,
    ) {
        let mut g = self.ring();
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.buf.len() == g.cap {
            g.buf.pop_front();
        }
        g.buf.push_back(TraceEvent {
            seq,
            at,
            node,
            kind,
            key,
            detail: detail.into(),
        });
    }

    /// Appends one event with no detail payload — the zero-allocation fast
    /// path for events whose `kind` and `key` say everything.
    pub fn record_kv(&self, at: SimTime, node: NodeId, kind: &'static str, key: u64) {
        self.record(at, node, kind, key, Detail::None);
    }

    /// Appends one event with a lazily rendered detail: `render` is invoked
    /// on `(a, b, c)` only if the event is ever displayed. The hot-path
    /// record primitive — a handful of word moves, no allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn record_lazy(
        &self,
        at: SimTime,
        node: NodeId,
        kind: &'static str,
        key: u64,
        render: DetailFn,
        a: u64,
        b: u64,
        c: u64,
    ) {
        self.record(
            at,
            node,
            kind,
            key,
            Detail::Lazy {
                render,
                args: (a, b, c),
            },
        );
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring().next_seq
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        self.ring().buf.len()
    }

    /// True when the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every buffered event with `seq >= since`, oldest first,
    /// without cloning. The ring holds seqs contiguously, so the start is
    /// found by offset, not by scanning: incremental consumers (the
    /// invariant checker, trace digests) pay only for *new* events per
    /// call. If eviction outpaced the consumer the visit starts later than
    /// requested — compare the first visited `seq` against `since` to
    /// detect the gap.
    pub fn for_each_since(&self, since: u64, mut f: impl FnMut(&TraceEvent)) {
        let g = self.ring();
        let Some(first) = g.buf.front().map(|e| e.seq) else {
            return;
        };
        let skip = since.saturating_sub(first).min(g.buf.len() as u64) as usize;
        let (a, b) = g.buf.as_slices();
        if skip < a.len() {
            for e in &a[skip..] {
                f(e);
            }
            for e in b {
                f(e);
            }
        } else {
            for e in &b[skip - a.len()..] {
                f(e);
            }
        }
    }

    /// Snapshot of everything currently in the ring, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring().buf.iter().cloned().collect()
    }

    /// Events with `seq >= since`, oldest first. Use for incremental scans:
    /// call with the last seen `seq + 1`. If eviction outpaced the consumer
    /// the returned slice starts later than requested — compare the first
    /// returned `seq` against `since` to detect the gap.
    pub fn events_since(&self, since: u64) -> Vec<TraceEvent> {
        self.ring()
            .buf
            .iter()
            .filter(|e| e.seq >= since)
            .cloned()
            .collect()
    }

    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let g = self.ring();
        let skip = g.buf.len().saturating_sub(n);
        g.buf.iter().skip(skip).cloned().collect()
    }

    /// Renders the last `n` events as one line each, streamed into a single
    /// buffer straight from the ring — no event clones, one allocation
    /// (growing the output string). Violation bundles and failure dumps go
    /// through here.
    pub fn render_tail(&self, n: usize) -> String {
        use fmt::Write as _;
        let g = self.ring();
        let take = n.min(g.buf.len());
        let skip = g.buf.len() - take;
        let mut out = String::with_capacity(take * 56);
        for e in g.buf.iter().skip(skip) {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// Drops all buffered events (sequence numbers keep advancing).
    pub fn clear(&self) {
        self.ring().buf.clear();
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.ring();
        f.debug_struct("Tracer")
            .field("cap", &g.cap)
            .field("len", &g.buf.len())
            .field("total", &g.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let t = Tracer::new(3);
        for i in 0..5u64 {
            t.record(SimTime::ZERO, 0, "ev", i, format!("#{i}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 2);
        assert_eq!(evs[2].seq, 4);
        assert_eq!(t.total_recorded(), 5);
    }

    #[test]
    fn incremental_scan_sees_only_new_events() {
        let t = Tracer::new(16);
        t.record(SimTime::ZERO, 1, "a", 0, String::new());
        t.record(SimTime::ZERO, 1, "b", 0, String::new());
        let first = t.events_since(0);
        assert_eq!(first.len(), 2);
        let cursor = first.last().unwrap().seq + 1;
        t.record(SimTime::ZERO, 2, "c", 7, String::new());
        let fresh = t.events_since(cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].kind, "c");
        assert_eq!(fresh[0].key, 7);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::new(8);
        let t2 = t.clone();
        t2.record(SimTime::ZERO, 0, "x", 0, String::new());
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn tail_renders_one_line_per_event() {
        let t = Tracer::new(8);
        t.record(SimTime::ZERO, 0, "x", 1, "one");
        t.record(SimTime::ZERO, 0, "y", 2, "two");
        let s = t.render_tail(10);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("one") && s.contains("two"));
    }

    #[test]
    fn tracer_and_events_are_send_and_sync() {
        // Compile-time assertion: the tracing seam must stay `Send` so
        // whole simulator worlds can run on pool worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tracer>();
        assert_send_sync::<TraceEvent>();
        assert_send_sync::<Detail>();
    }

    #[test]
    fn panic_during_scan_does_not_poison_the_tracer() {
        // A checker panicking inside `for_each_since` (while the ring lock
        // is held) must leave the tracer fully usable: recording, scanning,
        // and dumping all still work, and no secondary panic ever replaces
        // the checker's own message. This is what lets a violation bundle
        // be rendered *after* the invariant checker has already panicked.
        let t = Tracer::new(8);
        t.record(SimTime::ZERO, 0, "before", 1, "pre-panic");
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.for_each_since(0, |_| panic!("checker violation: original message"));
        }));
        let payload = res.expect_err("checker panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("checker violation: original message"),
            "first panic message must survive intact, got {msg:?}"
        );
        // Every clone holder keeps working after the unwind.
        let t2 = t.clone();
        t2.record(SimTime::ZERO, 0, "after", 2, "post-panic");
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_recorded(), 2);
        let dump = t.render_tail(10);
        assert!(dump.contains("pre-panic") && dump.contains("post-panic"));
    }

    #[test]
    fn lazy_detail_renders_identically_to_eager_text() {
        fn r(f: &mut fmt::Formatter<'_>, a: u64, b: u64, _c: u64) -> fmt::Result {
            write!(f, "index={a} id={b}")
        }
        let t = Tracer::new(8);
        t.record_lazy(SimTime::ZERO, 3, "reply", 9, r, 4, 9, 0);
        t.record(SimTime::ZERO, 3, "reply", 9, "index=4 id=9");
        let s = t.render_tail(2);
        let mut lines = s.lines();
        let (lazy, eager) = (lines.next().unwrap(), lines.next().unwrap());
        assert_eq!(lazy, eager);
        assert!(lazy.ends_with("index=4 id=9"));
    }
}
