//! The agent abstraction: protocol code running on a simulated node.
//!
//! An [`Agent`] is the software of one node. The engine invokes its handlers
//! at the simulated instants where the node's network thread (or application
//! thread) would run them, and the agent reacts through the [`Ctx`] handed to
//! every handler: sending packets, arming timers, and scheduling application
//! work.
//!
//! # Thread model
//!
//! Following the paper's implementation (§6), every node has **two logical
//! threads**: a *network thread* that owns the RX ring and runs the protocol
//! logic, and an *application thread* that executes state-machine operations.
//! `on_packet`, `on_timer`, and `on_start` run on the network thread;
//! `on_app_done` runs on the application thread. Packet sends issued from a
//! handler charge per-fragment CPU time to the thread the handler runs on —
//! each thread has its own TX queue, as in the DPDK setup of §6 — while both
//! share the single NIC wire.

use std::any::Any;

use bytes::ByteArena;
use rand::rngs::SmallRng;

use crate::packet::{Addr, NodeId, Packet};
use crate::time::{SimDur, SimTime};

/// Identifier of an armed timer, unique per simulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// Which logical thread a handler is running on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadClass {
    /// The network/protocol thread.
    Net,
    /// The application/state-machine thread.
    App,
}

/// Effects an agent requests from a handler; drained by the engine after the
/// handler returns.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send {
        dst: Addr,
        size: u32,
        payload: M,
        thread: ThreadClass,
    },
    Timer {
        delay: SimDur,
        kind: u64,
        id: TimerId,
    },
    CancelTimer {
        id: TimerId,
    },
    AppWork {
        cost: SimDur,
        token: u64,
    },
    Burn {
        cost: SimDur,
        thread: ThreadClass,
    },
}

/// Handler context: the node's view of the simulator.
///
/// A `Ctx` is only valid for the duration of one handler invocation.
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) thread: ThreadClass,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) arena: &'a mut ByteArena,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    #[inline]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The logical thread this handler is running on.
    #[inline]
    pub fn thread(&self) -> ThreadClass {
        self.thread
    }

    /// The node's deterministic random-number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The world's byte-buffer arena. Message bodies, framed payloads, and
    /// service replies built through it recycle per-world chunks instead
    /// of hitting the global allocator per packet (see
    /// [`bytes::ByteArena`]).
    #[inline]
    pub fn arena(&mut self) -> &mut ByteArena {
        self.arena
    }

    /// Transmits a message of `size` bytes to `dst` (a node or a multicast
    /// group). Per-fragment CPU time is charged to the calling thread; the
    /// wire is serialized once regardless of group fan-out (the switch
    /// replicates multicast copies).
    pub fn send(&mut self, dst: Addr, size: u32, payload: M) {
        let thread = self.thread;
        self.effects.push(Effect::Send {
            dst,
            size,
            payload,
            thread,
        });
    }

    /// Like [`Ctx::send`], but charges the per-fragment TX CPU time to the
    /// given thread regardless of which thread the handler runs on. Models
    /// work the other thread picks up asynchronously — e.g. protocol
    /// messages the network thread emits after polling the application
    /// thread's applied index (§6 of the paper: the network thread owns all
    /// consensus I/O).
    pub fn send_from(&mut self, dst: Addr, size: u32, payload: M, thread: ThreadClass) {
        self.effects.push(Effect::Send {
            dst,
            size,
            payload,
            thread,
        });
    }

    /// Consumes `cost` of CPU time on `thread` without producing a packet —
    /// models protocol work proportional to data handled (e.g. copying
    /// request payloads into per-follower AppendEntries buffers, the very
    /// cost HovercRaft's metadata-only replication eliminates).
    pub fn burn(&mut self, cost: SimDur, thread: ThreadClass) {
        self.effects.push(Effect::Burn { cost, thread });
    }

    /// Arms a one-shot timer firing after `delay`; `kind` is returned to
    /// [`Agent::on_timer`] so one agent can multiplex several timer uses.
    pub fn set_timer(&mut self, delay: SimDur, kind: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::Timer { delay, kind, id });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Schedules `cost` of work on the node's application thread. Work items
    /// run serially in submission order; when this one finishes,
    /// [`Agent::on_app_done`] is invoked with `token`.
    pub fn exec_app(&mut self, cost: SimDur, token: u64) {
        self.effects.push(Effect::AppWork { cost, token });
    }
}

/// Protocol software running on one simulated node.
///
/// All handlers are optional except [`Agent::on_packet`]; the defaults do
/// nothing. Agents must be `'static` so experiment code can downcast them
/// back out of the simulator to harvest results (see [`crate::Sim::agent`]).
pub trait Agent<M>: Any {
    /// Called once at simulation start (or at the instant the node is added,
    /// if later). Typical use: arm election or injection timers.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// A packet addressed to this node (or to a group it belongs to) has
    /// been processed by the network thread.
    fn on_packet(&mut self, pkt: Packet<M>, ctx: &mut Ctx<'_, M>);

    /// A timer armed with [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _id: TimerId, _kind: u64, _ctx: &mut Ctx<'_, M>) {}

    /// An application work item scheduled with [`Ctx::exec_app`] finished.
    fn on_app_done(&mut self, _token: u64, _ctx: &mut Ctx<'_, M>) {}

    /// Upcast for result extraction; implement as `self`.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for result extraction; implement as `self`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
