//! Calibration parameters for the simulated testbed.
//!
//! The defaults model the paper's infrastructure (§7): Xeon servers with
//! Intel x520 10GbE NICs behind a single cut-through ToR switch, running a
//! DPDK kernel-bypass stack with one network thread and one application
//! thread per server (§6). The constants are chosen so that the unreplicated
//! R2P2 service with S = 1µs saturates just under 1 MRPS — the envelope the
//! paper reports — while preserving the relative costs that create each
//! bottleneck of §2.1.2.

use crate::time::SimDur;

/// Per-NIC / per-node resource parameters.
#[derive(Clone, Copy, Debug)]
pub struct NicParams {
    /// Link rate in bits per second (default: 10 GbE).
    pub link_bps: u64,
    /// Maximum transmission unit in bytes; larger messages are fragmented
    /// and pay per-fragment CPU and framing costs (default: 1500).
    pub mtu: u32,
    /// Per-fragment wire framing overhead in bytes (Ethernet + IP + UDP +
    /// preamble/IFG, default: 60).
    pub per_frag_overhead: u32,
    /// Network-thread CPU cost to receive and classify one fragment.
    pub rx_cpu_per_frag: SimDur,
    /// Network-thread CPU cost to build and enqueue one fragment for TX.
    pub tx_cpu_per_frag: SimDur,
    /// Capacity of the RX descriptor ring: fragments that have finished
    /// arriving but whose handler has not yet run. Beyond this, arrivals are
    /// dropped (counted in [`crate::Counters::rx_dropped_backlog`]).
    pub rx_ring: u32,
}

impl Default for NicParams {
    fn default() -> Self {
        NicParams {
            link_bps: 10_000_000_000,
            mtu: 1500,
            per_frag_overhead: 60,
            // DPDK-grade per-packet costs with batched descriptor rings:
            // ~180ns of RX classification/protocol work per fragment and
            // ~60ns to enqueue a fragment for TX. A Raft leader touching
            // ~6 packets per request (client RX + 2 AE TX + 2 reply RX +
            // response TX) then sustains ≈1 MRPS on its network thread,
            // matching the §7.1 envelope.
            rx_cpu_per_frag: SimDur::nanos(180),
            tx_cpu_per_frag: SimDur::nanos(60),
            rx_ring: 4096,
        }
    }
}

impl NicParams {
    /// Number of wire fragments for a message of `size` bytes.
    #[inline]
    pub fn frags(&self, size: u32) -> u32 {
        size.div_ceil(self.mtu).max(1)
    }

    /// Wire serialization time for a message of `size` bytes, including
    /// per-fragment framing overhead.
    #[inline]
    pub fn wire_time(&self, size: u32) -> SimDur {
        let frags = self.frags(size) as u64;
        let bytes = size as u64 + frags * self.per_frag_overhead as u64;
        // bits / (bits-per-second) expressed in nanoseconds, rounded up so a
        // non-empty message never serializes in zero time.
        SimDur::nanos((bytes * 8 * 1_000_000_000).div_ceil(self.link_bps))
    }
}

/// Fabric-wide parameters.
#[derive(Clone, Copy, Debug)]
pub struct FabricParams {
    /// One-way propagation + PHY latency between a node and the ToR switch.
    pub prop_delay: SimDur,
    /// Cut-through switching latency inside the ToR.
    pub switch_delay: SimDur,
    /// Independent per-copy drop probability applied at the switch output
    /// (models lossy Ethernet; default 0 — loss is usually injected
    /// deliberately by tests via [`crate::Sim::set_loss_rate`]).
    pub loss_rate: f64,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            // ≈2µs node-to-node one-way at the hardware level (PCIe + DMA +
            // copper + cut-through hop), consistent with the ≤10µs RTT
            // budget of §2.3 on the paper's older hardware.
            prop_delay: SimDur::nanos(800),
            switch_delay: SimDur::nanos(300),
            loss_rate: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_wire_time_small_packet() {
        let nic = NicParams::default();
        // 24B payload + 60B overhead = 84B = 672 bits at 10Gbps = 67.2ns.
        let t = nic.wire_time(24);
        assert!(t.as_nanos() >= 60 && t.as_nanos() <= 75, "{t:?}");
    }

    #[test]
    fn fragmentation_counts() {
        let nic = NicParams::default();
        assert_eq!(nic.frags(0), 1);
        assert_eq!(nic.frags(1), 1);
        assert_eq!(nic.frags(1500), 1);
        assert_eq!(nic.frags(1501), 2);
        assert_eq!(nic.frags(6000), 4);
    }

    #[test]
    fn wire_time_scales_with_size() {
        let nic = NicParams::default();
        // A 6kB reply must take ≈5µs on a 10G link: at 200 kRPS that is a
        // fully utilized link, the IO bottleneck of Figure 10.
        let t = nic.wire_time(6_000);
        assert!(
            t.as_nanos() > 4_500 && t.as_nanos() < 5_500,
            "6kB wire time {t:?}"
        );
        assert!(nic.wire_time(12_000) > nic.wire_time(6_000));
    }

    #[test]
    fn ten_gig_reaches_link_capacity_bound() {
        // Sanity for Figure 10's claim: ~200k replies/s of 2-MTU messages
        // saturate a 10G link.
        let nic = NicParams::default();
        let per_reply = nic.wire_time(6_000).as_secs_f64();
        let rps = 1.0 / per_reply;
        assert!(rps > 180_000.0 && rps < 230_000.0, "rps = {rps}");
    }
}
