//! # simnet — a deterministic discrete-event datacenter fabric simulator
//!
//! This crate is the hardware substrate of the HovercRaft reproduction: it
//! stands in for the paper's physical testbed (DPDK kernel-bypass servers
//! with 10 GbE NICs behind a cut-through ToR switch, plus a Tofino P4
//! accelerator). Protocol code is written as [`Agent`]s — pure event
//! handlers — and the engine charges every packet its CPU, wire, and
//! propagation costs, so the leader I/O and CPU bottlenecks the paper
//! analyzes (§2.1.2) emerge from the model rather than being scripted.
//!
//! Key properties:
//!
//! * **Deterministic** — a run is a pure function of (topology, parameters,
//!   seed). All randomness flows from per-node `SmallRng`s.
//! * **Two-thread CPU model** — each node has a network thread and an
//!   application thread, like the paper's DPDK implementation (§6).
//! * **Real multicast** — one TX serialization at the sender, replication in
//!   the switch, independent per-copy loss; exactly the property HovercRaft
//!   exploits to separate replication from ordering.
//! * **Programmable dataplane** — [`SwitchProgram`]s process packets at line
//!   rate with zero server cost, hosting the HovercRaft++ aggregator and the
//!   flow-control middlebox.
//!
//! ## Example
//!
//! ```
//! use simnet::{Agent, Ctx, FabricParams, Packet, Sim, SimDur, SimTime, Addr};
//!
//! // An echo server and a client that measures one round trip.
//! struct Echo;
//! impl Agent<u32> for Echo {
//!     fn on_packet(&mut self, pkt: Packet<u32>, ctx: &mut Ctx<'_, u32>) {
//!         ctx.send(pkt.src, pkt.size, pkt.payload + 1);
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! struct Client { rtt: Option<SimDur>, server: Addr }
//! impl Agent<u32> for Client {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         ctx.send(self.server, 64, 7);
//!     }
//!     fn on_packet(&mut self, pkt: Packet<u32>, ctx: &mut Ctx<'_, u32>) {
//!         assert_eq!(pkt.payload, 8);
//!         self.rtt = Some(ctx.now() - SimTime::ZERO);
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = Sim::new(FabricParams::default(), 1);
//! let server = sim.add_node(Box::new(Echo));
//! let client = sim.add_node(Box::new(Client { rtt: None, server: Addr::node(server) }));
//! sim.run_for(SimDur::millis(1));
//! let rtt = sim.agent::<Client>(client).rtt.expect("reply received");
//! assert!(rtt < SimDur::micros(10)); // µs-scale fabric, §2.3
//! ```

#![warn(missing_docs)]

mod agent;
mod counters;
mod engine;
mod fault;
mod packet;
mod params;
mod profile;
mod switch;
mod time;
mod trace;
mod wheel;

pub use agent::{Agent, Ctx, ThreadClass, TimerId};
pub use counters::Counters;
pub use engine::{DropFilter, RestartHook, SchedulerKind, Sim};
pub use fault::{FaultCmd, FaultPlan, FaultPlanConfig, LinkFault};
pub use packet::{Addr, NodeId, Packet};
pub use params::{FabricParams, NicParams};
pub use profile::{CountingAlloc, ProfileSnapshot, SpinGuard, SpinLock};
pub use switch::{GroupTable, SwitchEmit, SwitchProgram, Verdict};
pub use time::{SimDur, SimTime};
pub use trace::{Detail, DetailFn, TraceEvent, Tracer, DEFAULT_TRACE_CAP};
pub use wheel::TimerWheel;
