//! The ToR switch: forwarding, multicast, loss, and programmable dataplane.
//!
//! All nodes hang off a single cut-through switch (the paper's testbed uses
//! one Quanta ToR plus a Tofino accelerator bolted onto it). Unicast packets
//! are forwarded to their destination port; multicast packets are replicated
//! to every group member except the sender. Before forwarding, packets pass
//! through an ordered pipeline of [`SwitchProgram`]s — this is where the
//! HovercRaft++ in-network aggregator and the flow-control middlebox plug in,
//! processing packets at line rate with zero server-CPU cost, exactly like a
//! P4 dataplane.

use crate::packet::{Addr, NodeId, Packet};
use crate::time::SimTime;

/// Packets emitted by a switch program, forwarded as if they originated at
/// the switch itself (no server CPU or wire cost at any host).
pub struct SwitchEmit<M> {
    pub(crate) packets: Vec<Packet<M>>,
}

impl<M> SwitchEmit<M> {
    /// Emits a packet from the switch. `src` should identify the logical
    /// originator (e.g. the aggregator keeps the leader's address so
    /// followers treat the message as coming from the leader).
    pub fn emit(&mut self, src: Addr, dst: Addr, size: u32, payload: M) {
        self.packets.push(Packet {
            src,
            dst,
            size,
            payload,
            sent_at: SimTime::ZERO, // stamped by the engine on emission
        });
    }
}

/// What a switch program decided about the packet it was handed.
pub enum Verdict<M> {
    /// Pass the (possibly rewritten) packet to the next pipeline stage and
    /// ultimately to normal forwarding.
    Forward(Packet<M>),
    /// The program consumed the packet; nothing is forwarded (packets added
    /// via [`SwitchEmit`] still go out).
    Consume,
}

/// A P4-style in-network program attached to the switch pipeline.
///
/// Programs run in registration order on every packet entering the switch.
/// They hold only *soft state* (the paper's correctness argument for
/// HovercRaft++ depends on this): the engine calls [`SwitchProgram::reset`]
/// when an experiment asks for dataplane state to be flushed, e.g. after a
/// simulated switch failure.
pub trait SwitchProgram<M>: 'static {
    /// Processes one packet at line rate.
    fn process(&mut self, pkt: Packet<M>, now: SimTime, out: &mut SwitchEmit<M>) -> Verdict<M>;

    /// Flushes all soft state, as a reboot/replacement of the device would.
    fn reset(&mut self) {}

    /// Upcast for inspection in tests.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for inspection in tests.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Multicast group table: group address → member nodes.
#[derive(Default, Debug, Clone)]
pub struct GroupTable {
    groups: Vec<(Addr, Vec<NodeId>)>,
}

impl GroupTable {
    /// Registers (or replaces) a multicast group.
    pub fn set(&mut self, addr: Addr, members: Vec<NodeId>) {
        assert!(addr.is_group(), "group table entries must be group addrs");
        if let Some(slot) = self.groups.iter_mut().find(|(a, _)| *a == addr) {
            slot.1 = members;
        } else {
            self.groups.push((addr, members));
        }
    }

    /// Looks up the member list of a group.
    pub fn get(&self, addr: Addr) -> Option<&[NodeId]> {
        self.groups
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|(_, m)| m.as_slice())
    }

    /// Resolves a destination to the list of receiving nodes, excluding
    /// `sender` from multicast fan-out (IGMP-style source suppression, which
    /// the paper's aggregator relies on when re-multicasting).
    pub fn resolve(&self, dst: Addr, sender: Option<NodeId>) -> Vec<NodeId> {
        match dst.as_node() {
            Some(n) => vec![n],
            None => self
                .get(dst)
                .map(|m| m.iter().copied().filter(|n| Some(*n) != sender).collect())
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_resolves_to_single_node() {
        let t = GroupTable::default();
        assert_eq!(t.resolve(Addr::node(4), None), vec![4]);
        // A sender can unicast to itself; suppression only applies to groups.
        assert_eq!(t.resolve(Addr::node(4), Some(4)), vec![4]);
    }

    #[test]
    fn group_resolution_excludes_sender() {
        let mut t = GroupTable::default();
        t.set(Addr::group(0), vec![0, 1, 2]);
        assert_eq!(t.resolve(Addr::group(0), Some(1)), vec![0, 2]);
        assert_eq!(t.resolve(Addr::group(0), None), vec![0, 1, 2]);
    }

    #[test]
    fn unknown_group_resolves_to_nothing() {
        let t = GroupTable::default();
        assert!(t.resolve(Addr::group(9), None).is_empty());
    }

    #[test]
    fn set_replaces_members() {
        let mut t = GroupTable::default();
        t.set(Addr::group(0), vec![0, 1]);
        t.set(Addr::group(0), vec![2]);
        assert_eq!(t.get(Addr::group(0)), Some(&[2][..]));
    }

    #[test]
    #[should_panic(expected = "group table entries")]
    fn set_rejects_unicast_addr() {
        let mut t = GroupTable::default();
        t.set(Addr::node(1), vec![0]);
    }
}
