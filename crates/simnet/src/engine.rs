//! The discrete-event simulation engine.
//!
//! [`Sim`] owns the nodes (agents plus their NIC/CPU resources), the switch
//! (multicast groups, loss model, programmable pipeline), and the event
//! queue. Time advances only by processing events; everything is
//! deterministic given the configuration and the seed.
//!
//! # Resource model
//!
//! Each node has four serial resources, matching the two-thread DPDK design
//! of the paper's §6:
//!
//! * **network thread CPU** — charged per fragment for both RX processing and
//!   TX enqueueing of packets sent from protocol handlers;
//! * **application thread CPU** — runs [`Ctx::exec_app`] work items in FIFO
//!   order; packets sent from `on_app_done` (e.g. client replies) charge this
//!   thread, not the network thread (each thread has its own TX queue);
//! * **TX wire** — one serialization of `size` bytes per send, even for
//!   multicast (the switch replicates);
//! * **RX wire** — one serialization per delivered copy.
//!
//! A packet sent at `t` therefore reaches a receiving agent at
//! `t + tx_cpu + tx_wire + prop + switch + prop + rx_wire + rx_cpu`, with
//! each stage additionally waiting for its resource to free up. Arrivals
//! beyond the RX ring capacity are dropped — this is what makes overload
//! behave like overload instead of an unbounded queue.

use std::collections::{BinaryHeap, VecDeque};
use std::fmt::Debug;

use bytes::ByteArena;
use fxhash::{FxHashMap, FxHashSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::agent::{Agent, Ctx, Effect, ThreadClass, TimerId};
use crate::counters::Counters;
use crate::fault::{FaultCmd, FaultPlan, LinkFault};
use crate::packet::{Addr, NodeId, Packet};
use crate::params::{FabricParams, NicParams};
use crate::switch::{GroupTable, SwitchEmit, SwitchProgram, Verdict};
use crate::time::{SimDur, SimTime};
use crate::trace::Tracer;
use crate::wheel::TimerWheel;

/// Predicate deciding whether a particular delivered copy is dropped;
/// used by tests to inject targeted, deterministic loss.
pub type DropFilter<M> = Box<dyn FnMut(&Packet<M>, NodeId, SimTime) -> bool>;

/// Rebuilds a node's agent on a crash–restart: receives the crashed agent
/// (so durable state can be extracted) and the restart instant, and returns
/// the rebooted agent with all volatile state wiped.
pub type RestartHook<M> = Box<dyn FnMut(NodeId, SimTime, Box<dyn Agent<M>>) -> Box<dyn Agent<M>>>;

enum Ev<M> {
    PktAtSwitch(Packet<M>),
    PktArrive {
        node: NodeId,
        pkt: Packet<M>,
    },
    PktDeliver {
        node: NodeId,
        pkt: Packet<M>,
        /// Incarnation that scheduled this delivery; stale after a restart.
        epoch: u64,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        kind: u64,
    },
    AppDone {
        node: NodeId,
        token: u64,
        /// Incarnation that queued this work item; stale after a restart.
        epoch: u64,
    },
    Start {
        node: NodeId,
    },
    Kill {
        node: NodeId,
    },
    Fault(FaultCmd),
}

/// A heap entry: the ordering key plus a slot index into the event slab.
/// Keeping the (large) `Ev<M>` payload *out* of the heap means every
/// sift-up/sift-down moves three words instead of a whole packet.
#[derive(Clone, Copy)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed so the `BinaryHeap` pops the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Slab storage for scheduled events: stable `u32` slots handed to the
/// scheduler, with freed slots recycled LIFO. At a steady state the event
/// loop allocates nothing per event; after a burst subsides, capacity is
/// reclaimed (see [`EventSlab::maybe_shrink`]) instead of being
/// high-watermarked for the rest of the run.
struct EventSlab<M> {
    slots: Vec<Option<Ev<M>>>,
    free: Vec<u32>,
    /// Free-list length at which the next shrink attempt triggers; bumped
    /// past the current length after every attempt so attempts stay at
    /// least [`SLAB_SHRINK_MIN`] removals apart. A failed attempt (live
    /// slot pinning the tail) costs O(1): the tail scan starts from the
    /// end and stops at the first live slot.
    next_shrink: usize,
}

/// Free-list length below which shrinking is never attempted.
const SLAB_SHRINK_MIN: usize = 8192;
/// Slot count a shrunken slab keeps, mirroring the initial capacity.
const SLAB_FLOOR: usize = 256;

impl<M> EventSlab<M> {
    fn new() -> Self {
        EventSlab {
            slots: Vec::with_capacity(SLAB_FLOOR),
            free: Vec::with_capacity(SLAB_FLOOR),
            next_shrink: SLAB_SHRINK_MIN,
        }
    }

    #[inline]
    fn insert(&mut self, ev: Ev<M>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(ev);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(ev));
                slot
            }
        }
    }

    #[inline]
    fn remove(&mut self, slot: u32) -> Ev<M> {
        let ev = self.slots[slot as usize].take().expect("live slab slot");
        self.free.push(slot);
        // Two triggers: mostly-free (≥ 7/8) past the rate-limit threshold,
        // or a large slab going *completely* idle — the moment a
        // same-instant storm has fully drained, which threshold crossings
        // can miss when the storm's tail slots are the last ones freed.
        let free = self.free.len();
        if (free >= self.next_shrink && free * 8 >= self.slots.len() * 7)
            || (free == self.slots.len() && free >= SLAB_SHRINK_MIN)
        {
            self.maybe_shrink();
        }
        ev
    }

    /// Releases capacity after a same-instant storm: once ≥ 7/8 of a
    /// large slab is free, truncate the all-free tail, drop the stale free
    /// entries, and return the backing memory. Slots below the last live
    /// one cannot move (the scheduler holds their indices), so a pinned
    /// tail makes this a no-op — the doubled `next_shrink` then backs off
    /// exponentially.
    fn maybe_shrink(&mut self) {
        let tail = self
            .slots
            .iter()
            .rposition(|s| s.is_some())
            .map_or(0, |i| i + 1);
        let new_len = tail.max(SLAB_FLOOR);
        if new_len * 2 <= self.slots.len() {
            self.slots.truncate(new_len);
            self.slots.shrink_to_fit();
            self.free.retain(|&s| (s as usize) < new_len);
            self.free.shrink_to_fit();
        }
        self.next_shrink = self.free.len() + SLAB_SHRINK_MIN;
    }
}

/// Which ordering structure schedules future events.
///
/// Both produce the identical `(time, seq)` dispatch order — the
/// determinism digests are bit-equal under either — so the choice is pure
/// performance. The wheel is the default; the heap remains selectable
/// (`HC_SCHED=heap`) as the reference implementation for equivalence
/// checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel ([`TimerWheel`]): O(1) amortized.
    #[default]
    Wheel,
    /// `BinaryHeap` ordered by `(time, seq)`: O(log n), the original.
    Heap,
}

impl SchedulerKind {
    /// Reads `HC_SCHED` (`wheel` | `heap`), defaulting to the wheel.
    fn from_env() -> SchedulerKind {
        match std::env::var("HC_SCHED").as_deref() {
            Ok("heap") => SchedulerKind::Heap,
            _ => SchedulerKind::Wheel,
        }
    }
}

enum EventQueue {
    Heap(BinaryHeap<Scheduled>),
    Wheel(TimerWheel),
}

struct AppState {
    queue: VecDeque<(SimDur, u64)>,
    busy: bool,
}

struct NodeSlot<M> {
    agent: Option<Box<dyn Agent<M>>>,
    nic: NicParams,
    alive: bool,
    /// Stalled-but-alive: the node is not scheduled, but its RX ring keeps
    /// filling (and overflowing) with arrivals.
    paused: bool,
    /// Incarnation number; bumped on every crash–restart so events scheduled
    /// for a previous incarnation are discarded.
    epoch: u64,
    /// When each crash–restart happened; `restarted_at.len() == epoch`.
    /// Lets observers attribute a timestamped event to the incarnation
    /// that was live when it occurred (the bounded trace ring may have
    /// evicted the `fault_restart` marker by the time they look).
    restarted_at: Vec<SimTime>,
    /// Events deferred while paused, redelivered on resume in order.
    stalled: Vec<Ev<M>>,
    net_busy: SimTime,
    tx_wire_busy: SimTime,
    rx_wire_busy: SimTime,
    net_backlog: u32,
    app: AppState,
    counters: Counters,
    rng: SmallRng,
    next_timer: u64,
    active_timers: FxHashSet<TimerId>,
    effects: Vec<Effect<M>>,
}

/// The simulator: nodes, switch, and the event loop.
pub struct Sim<M> {
    now: SimTime,
    seq: u64,
    /// Events dispatched so far (the denominator of engine throughput).
    processed: u64,
    fabric: FabricParams,
    nodes: Vec<NodeSlot<M>>,
    groups: GroupTable,
    programs: Vec<Box<dyn SwitchProgram<M>>>,
    queue: EventQueue,
    /// Event payloads, indexed by the heap/bucket slot.
    slab: EventSlab<M>,
    /// Events scheduled for exactly the current instant, kept out of the
    /// heap: `(seq, slot)` in FIFO order. The bulk of a busy instant's
    /// follow-on events (zero-delay sends, immediate deliveries) land here
    /// and skip two O(log n) heap operations each.
    now_bucket: VecDeque<(u64, u32)>,
    /// Scratch reused across `at_switch` calls (program emissions).
    emit_scratch: Vec<Packet<M>>,
    /// Scratch reused across group fan-outs (resolved member list).
    members_scratch: Vec<NodeId>,
    switch_rng: SmallRng,
    drop_filter: Option<DropFilter<M>>,
    /// Active partition: node → group id. Nodes absent from the map are
    /// connected to everyone (clients typically stay global).
    partition: Option<FxHashMap<NodeId, u32>>,
    /// Active per-link delay/duplication windows.
    link_faults: Vec<LinkFault>,
    restart_hook: Option<RestartHook<M>>,
    tracer: Option<Tracer>,
    /// Per-world buffer pool handed to agents via [`Ctx::arena`]; message
    /// bodies built through it recycle chunks instead of allocating.
    arena: ByteArena,
    seed: u64,
}

impl<M: Clone + Debug + 'static> Sim<M> {
    /// Creates an empty simulation with the given fabric parameters and
    /// master seed. All per-node RNGs derive deterministically from the seed.
    /// The event scheduler defaults to the timer wheel; set `HC_SCHED=heap`
    /// to select the reference binary heap (identical dispatch order).
    pub fn new(fabric: FabricParams, seed: u64) -> Self {
        Self::new_with_scheduler(fabric, seed, SchedulerKind::from_env())
    }

    /// Like [`Sim::new`] with an explicit scheduler choice, ignoring the
    /// `HC_SCHED` environment variable (used by equivalence tests that
    /// run both schedulers in one process).
    pub fn new_with_scheduler(fabric: FabricParams, seed: u64, sched: SchedulerKind) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            fabric,
            nodes: Vec::new(),
            groups: GroupTable::default(),
            programs: Vec::new(),
            queue: match sched {
                SchedulerKind::Heap => EventQueue::Heap(BinaryHeap::with_capacity(1024)),
                SchedulerKind::Wheel => EventQueue::Wheel(TimerWheel::new()),
            },
            slab: EventSlab::new(),
            now_bucket: VecDeque::with_capacity(64),
            emit_scratch: Vec::new(),
            members_scratch: Vec::new(),
            switch_rng: SmallRng::seed_from_u64(seed ^ 0x5151_5151_dead_beef),
            drop_filter: None,
            partition: None,
            link_faults: Vec::new(),
            restart_hook: None,
            tracer: None,
            arena: ByteArena::new(),
            seed,
        }
    }

    /// Adds a node with explicit NIC parameters; returns its id (also its
    /// unicast address value). The agent's `on_start` runs at the current
    /// simulated time.
    pub fn add_node_with(&mut self, agent: Box<dyn Agent<M>>, nic: NicParams) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let rng =
            SmallRng::seed_from_u64(self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ id as u64);
        self.nodes.push(NodeSlot {
            agent: Some(agent),
            nic,
            alive: true,
            paused: false,
            epoch: 0,
            restarted_at: Vec::new(),
            stalled: Vec::new(),
            net_busy: self.now,
            tx_wire_busy: self.now,
            rx_wire_busy: self.now,
            net_backlog: 0,
            app: AppState {
                queue: VecDeque::new(),
                busy: false,
            },
            counters: Counters::default(),
            rng,
            next_timer: 0,
            active_timers: FxHashSet::default(),
            effects: Vec::new(),
        });
        self.push(self.now, Ev::Start { node: id });
        id
    }

    /// Adds a node with the default NIC parameters.
    pub fn add_node(&mut self, agent: Box<dyn Agent<M>>) -> NodeId {
        self.add_node_with(agent, NicParams::default())
    }

    /// Registers (or replaces) a multicast group.
    pub fn add_group(&mut self, addr: Addr, members: Vec<NodeId>) {
        self.groups.set(addr, members);
    }

    /// Appends a program to the switch pipeline; returns its index. Programs
    /// see every packet entering the switch, in registration order. Packets
    /// *emitted* by a program bypass the pipeline (a P4 program does not
    /// recirculate by default).
    pub fn add_switch_program(&mut self, prog: Box<dyn SwitchProgram<M>>) -> usize {
        self.programs.push(prog);
        self.programs.len() - 1
    }

    /// Downcasts a switch program for test inspection.
    ///
    /// # Panics
    /// Panics if the index is out of range or the type does not match.
    pub fn switch_program_mut<T: 'static>(&mut self, idx: usize) -> &mut T {
        self.programs[idx]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("switch program type mismatch")
    }

    /// Flushes soft state in every switch program (device reboot).
    pub fn reset_switch_programs(&mut self) {
        for p in &mut self.programs {
            p.reset();
        }
    }

    /// Sets the independent per-copy loss probability at the switch output.
    pub fn set_loss_rate(&mut self, p: f64) {
        self.fabric.loss_rate = p;
    }

    /// Installs (or clears) a targeted drop filter; the filter sees each
    /// about-to-be-delivered copy and returns `true` to drop it.
    pub fn set_drop_filter(&mut self, f: Option<DropFilter<M>>) {
        self.drop_filter = f;
    }

    /// Schedules a fail-stop of `node` at time `at`. From that instant the
    /// node neither receives, sends, executes, nor fires timers. Times in
    /// the past are clamped to `now` so randomly generated fault schedules
    /// can't abort the harness; killing an already-dead node is a no-op.
    pub fn kill_at(&mut self, node: NodeId, at: SimTime) {
        self.push(at.max(self.now), Ev::Kill { node });
    }

    /// Immediately fail-stops `node`.
    pub fn kill_now(&mut self, node: NodeId) {
        self.apply_fault(FaultCmd::Kill { node });
    }

    /// Schedules a single fault transition (clamped to `now` if `at` is in
    /// the past).
    pub fn schedule_fault(&mut self, at: SimTime, cmd: FaultCmd) {
        self.push(at.max(self.now), Ev::Fault(cmd));
    }

    /// Schedules every event of a [`FaultPlan`].
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for (at, cmd) in &plan.events {
            self.schedule_fault(*at, cmd.clone());
        }
    }

    /// Schedules a crash–restart of `node`: volatile state is wiped and the
    /// registered [`RestartHook`] rebuilds the agent from durable state.
    pub fn restart_at(&mut self, node: NodeId, at: SimTime) {
        self.schedule_fault(at, FaultCmd::Restart { node });
    }

    /// Schedules a stall of `node` (alive but not scheduled; RX ring fills).
    pub fn pause_at(&mut self, node: NodeId, at: SimTime) {
        self.schedule_fault(at, FaultCmd::Pause { node });
    }

    /// Schedules the end of a stall; deferred events are redelivered then.
    pub fn resume_at(&mut self, node: NodeId, at: SimTime) {
        self.schedule_fault(at, FaultCmd::Resume { node });
    }

    /// Schedules a network partition into `groups`; nodes absent from every
    /// group remain connected to all.
    pub fn partition_at(&mut self, groups: Vec<Vec<NodeId>>, at: SimTime) {
        self.schedule_fault(at, FaultCmd::Partition { groups });
    }

    /// Schedules removal of any active partition.
    pub fn heal_at(&mut self, at: SimTime) {
        self.schedule_fault(at, FaultCmd::Heal);
    }

    /// Registers the hook that rebuilds agents on [`FaultCmd::Restart`].
    pub fn set_restart_hook(&mut self, hook: RestartHook<M>) {
        self.restart_hook = Some(hook);
    }

    /// Attaches a tracer; fault transitions are recorded into it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Whether `node` is still alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node as usize].alive
    }

    /// Whether `node` is currently paused (stalled-but-alive).
    pub fn is_paused(&self, node: NodeId) -> bool {
        self.nodes[node as usize].paused
    }

    /// How many times `node` has crash–restarted (its incarnation number).
    pub fn restarts(&self, node: NodeId) -> u64 {
        self.nodes[node as usize].epoch
    }

    /// When each crash–restart of `node` happened, oldest first. The
    /// incarnation live at time `t` is the number of entries `<= t`.
    pub fn restart_times(&self, node: NodeId) -> &[SimTime] {
        &self.nodes[node as usize].restarted_at
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched by the engine so far. Wall-clock throughput
    /// of the simulator is `events_processed / elapsed` — the number the
    /// `sim_throughput` bench pins.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The world's byte-buffer arena, for allocations made outside agent
    /// callbacks (preloading, scripted injection). Agents use
    /// [`Ctx::arena`].
    pub fn arena_mut(&mut self) -> &mut ByteArena {
        &mut self.arena
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Traffic counters of `node`.
    pub fn counters(&self, node: NodeId) -> Counters {
        self.nodes[node as usize].counters
    }

    /// Zeroes all nodes' traffic counters (e.g. after warm-up).
    pub fn reset_counters(&mut self) {
        for n in &mut self.nodes {
            n.counters.reset();
        }
    }

    /// Borrows the agent of `node`, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the type does not match or the agent is mid-callback.
    pub fn agent<T: 'static>(&self, node: NodeId) -> &T {
        self.nodes[node as usize]
            .agent
            .as_ref()
            .expect("agent is mid-callback")
            .as_any()
            .downcast_ref::<T>()
            .expect("agent type mismatch")
    }

    /// Mutably borrows the agent of `node`, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the type does not match or the agent is mid-callback.
    pub fn agent_mut<T: 'static>(&mut self, node: NodeId) -> &mut T {
        self.nodes[node as usize]
            .agent
            .as_mut()
            .expect("agent is mid-callback")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("agent type mismatch")
    }

    /// Injects a packet into the fabric as if `from` had just transmitted
    /// it, charging the sender's normal TX CPU and wire costs. Useful for
    /// scripting scenarios from outside the agent callbacks (tests,
    /// examples).
    pub fn inject(&mut self, from: NodeId, dst: Addr, size: u32, payload: M) {
        let mut effects = vec![Effect::Send {
            dst,
            size,
            payload,
            thread: ThreadClass::Net,
        }];
        self.apply_effects(from, &mut effects);
    }

    /// Runs the event loop until the clock reaches `t` (all events strictly
    /// before or at `t` are processed); the clock then reads `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((at, slot)) = self.pop_next(t) {
            self.now = at;
            let ev = self.slab.remove(slot);
            self.dispatch(ev);
        }
        self.now = t;
    }

    /// Runs the event loop for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDur) {
        let t = self.now + d;
        self.run_until(t);
    }

    // ---- internals -------------------------------------------------------

    fn push(&mut self, at: SimTime, ev: Ev<M>) {
        crate::profile::note_sched_op();
        let seq = self.seq;
        self.seq += 1;
        let slot = self.slab.insert(ev);
        if at == self.now {
            // Same-instant follow-on event: FIFO bucket, no scheduler
            // traffic. Seqs are assigned monotonically, so bucket order
            // *is* (at, seq) order for this instant.
            self.now_bucket.push_back((seq, slot));
        } else {
            match &mut self.queue {
                EventQueue::Heap(h) => h.push(Scheduled { at, seq, slot }),
                EventQueue::Wheel(w) => w.insert(at.as_nanos(), seq, slot),
            }
        }
    }

    /// Pops the globally earliest `(at, seq)` event at or before `limit`,
    /// merging the scheduler with the exact-now bucket. The bucket drains
    /// fully before time can advance (its entries sort before any strictly
    /// later scheduler entry), preserving the single-queue dispatch order
    /// exactly.
    fn pop_next(&mut self, limit: SimTime) -> Option<(SimTime, u32)> {
        match &mut self.queue {
            EventQueue::Heap(h) => {
                let heap_key = h.peek().map(|s| (s.at, s.seq));
                let bucket_key = self.now_bucket.front().map(|&(seq, _)| (self.now, seq));
                let take_bucket = match (heap_key, bucket_key) {
                    (None, None) => return None,
                    (Some(_), None) => false,
                    (None, Some(_)) => true,
                    (Some(hk), Some(b)) => b < hk,
                };
                if take_bucket {
                    // Bucket entries are stamped `now <= limit` by
                    // construction.
                    let (_, slot) = self.now_bucket.pop_front().expect("checked front");
                    crate::profile::note_sched_op();
                    Self::maybe_shrink_bucket(&mut self.now_bucket);
                    Some((self.now, slot))
                } else {
                    let head = *h.peek().expect("checked peek");
                    if head.at > limit {
                        return None;
                    }
                    h.pop();
                    crate::profile::note_sched_op();
                    Some((head.at, head.slot))
                }
            }
            EventQueue::Wheel(w) => {
                // Mid-instant wheel entries precede everything: they share
                // the current instant with any bucket entries but carry
                // strictly smaller seqs (they were scheduled before time
                // reached this instant; bucket entries are scheduled *at*
                // it). Otherwise the bucket wins — once time has advanced
                // to `now`, the wheel holds nothing at or before `now`
                // (the drain that advanced time took the whole instant).
                if w.mid_instant() {
                    let (at, _seq, slot) = w.pop_next(limit.as_nanos()).expect("mid-instant");
                    crate::profile::note_sched_op();
                    debug_assert_eq!(at, self.now.as_nanos());
                    return Some((self.now, slot));
                }
                if let Some((_, slot)) = self.now_bucket.pop_front() {
                    crate::profile::note_sched_op();
                    Self::maybe_shrink_bucket(&mut self.now_bucket);
                    return Some((self.now, slot));
                }
                let (at, _seq, slot) = w.pop_next(limit.as_nanos())?;
                crate::profile::note_sched_op();
                Some((SimTime::from_nanos(at), slot))
            }
        }
    }

    /// Releases `now_bucket` capacity once a same-instant storm has fully
    /// drained (cheap: one capacity compare per empty transition).
    #[inline]
    fn maybe_shrink_bucket(bucket: &mut VecDeque<(u64, u32)>) {
        if bucket.is_empty() && bucket.capacity() > 4096 {
            bucket.shrink_to(64);
        }
    }

    /// Capacity diagnostics of the event storage: `(slab_slots, slab_free,
    /// now_bucket_capacity)`. Exposed so capacity-reclamation regression
    /// tests can observe that burst storage is returned, not
    /// high-watermarked.
    pub fn sched_footprint(&self) -> (usize, usize, usize) {
        (
            self.slab.slots.capacity(),
            self.slab.free.len(),
            self.now_bucket.capacity(),
        )
    }

    fn dispatch(&mut self, ev: Ev<M>) {
        self.processed += 1;
        // A paused node is alive but not scheduled: its compute events are
        // deferred until resume. (Arrivals still land in the RX ring via
        // `arrive`, so the ring fills and eventually overflows.)
        match &ev {
            Ev::PktDeliver { node, .. } | Ev::Timer { node, .. } | Ev::AppDone { node, .. } => {
                let slot = &mut self.nodes[*node as usize];
                if slot.paused {
                    slot.stalled.push(ev);
                    return;
                }
            }
            _ => {}
        }
        match ev {
            Ev::Start { node } => {
                self.invoke(node, ThreadClass::Net, |a, ctx| a.on_start(ctx));
            }
            Ev::Kill { node } => self.apply_fault(FaultCmd::Kill { node }),
            Ev::Fault(cmd) => self.apply_fault(cmd),
            Ev::PktAtSwitch(pkt) => self.at_switch(pkt),
            Ev::PktArrive { node, pkt } => self.arrive(node, pkt),
            Ev::PktDeliver { node, pkt, epoch } => {
                let slot = &mut self.nodes[node as usize];
                if epoch != slot.epoch {
                    // Scheduled before a restart; the backlog was reset.
                    return;
                }
                slot.net_backlog = slot.net_backlog.saturating_sub(1);
                if !slot.alive {
                    slot.counters.dropped_dead += 1;
                    return;
                }
                slot.counters.rx_msgs += 1;
                slot.counters.rx_bytes += pkt.size as u64;
                self.invoke(node, ThreadClass::Net, move |a, ctx| a.on_packet(pkt, ctx));
            }
            Ev::Timer { node, id, kind } => {
                let slot = &mut self.nodes[node as usize];
                if !slot.alive || !slot.active_timers.remove(&id) {
                    return;
                }
                self.invoke(node, ThreadClass::Net, move |a, ctx| {
                    a.on_timer(id, kind, ctx)
                });
            }
            Ev::AppDone { node, token, epoch } => {
                let slot = &self.nodes[node as usize];
                if epoch != slot.epoch || !slot.alive {
                    return;
                }
                let extra = self.invoke(node, ThreadClass::App, move |a, ctx| {
                    a.on_app_done(token, ctx)
                });
                let slot = &mut self.nodes[node as usize];
                slot.app.busy = false;
                if let Some((cost, token)) = slot.app.queue.pop_front() {
                    slot.app.busy = true;
                    let at = self.now + extra + cost;
                    self.push(at, Ev::AppDone { node, token, epoch });
                }
            }
        }
    }

    /// Applies one fault transition and records it into the tracer.
    fn apply_fault(&mut self, cmd: FaultCmd) {
        let now = self.now;
        match &cmd {
            FaultCmd::Kill { node } => {
                let slot = &mut self.nodes[*node as usize];
                slot.alive = false;
                slot.paused = false;
                slot.stalled.clear();
            }
            FaultCmd::Restart { node } => {
                let n = *node;
                let slot = &mut self.nodes[n as usize];
                let old = slot.agent.take().expect("restart during agent callback");
                slot.epoch += 1;
                slot.restarted_at.push(now);
                slot.alive = true;
                slot.paused = false;
                slot.stalled.clear();
                slot.net_backlog = 0;
                slot.app.queue.clear();
                slot.app.busy = false;
                slot.active_timers.clear();
                slot.effects.clear();
                slot.net_busy = now;
                slot.tx_wire_busy = now;
                slot.rx_wire_busy = now;
                let hook = self
                    .restart_hook
                    .as_mut()
                    .expect("FaultCmd::Restart requires Sim::set_restart_hook");
                let fresh = hook(n, now, old);
                self.nodes[n as usize].agent = Some(fresh);
                self.push(now, Ev::Start { node: n });
            }
            FaultCmd::Pause { node } => {
                let slot = &mut self.nodes[*node as usize];
                if slot.alive {
                    slot.paused = true;
                }
            }
            FaultCmd::Resume { node } => {
                let n = *node as usize;
                if self.nodes[n].paused {
                    self.nodes[n].paused = false;
                    let stalled = std::mem::take(&mut self.nodes[n].stalled);
                    for ev in stalled {
                        // Re-pushed at `now` with fresh seqs: relative order
                        // among the deferred events is preserved.
                        self.push(now, ev);
                    }
                }
            }
            FaultCmd::Partition { groups } => {
                let mut map = FxHashMap::default();
                for (gi, g) in groups.iter().enumerate() {
                    for &n in g {
                        map.insert(n, gi as u32);
                    }
                }
                self.partition = Some(map);
            }
            FaultCmd::Heal => self.partition = None,
            FaultCmd::Link { fault } => {
                self.link_faults.retain(|lf| lf.until > now);
                self.link_faults.push(fault.clone());
            }
        }
        if let Some(tr) = &self.tracer {
            let (node, detail) = match &cmd {
                FaultCmd::Kill { node }
                | FaultCmd::Restart { node }
                | FaultCmd::Pause { node }
                | FaultCmd::Resume { node } => (*node, String::new()),
                FaultCmd::Partition { groups } => (0, format!("{groups:?}")),
                FaultCmd::Heal => (0, String::new()),
                FaultCmd::Link { fault } => {
                    (fault.dst.or(fault.src).unwrap_or(0), format!("{fault:?}"))
                }
            };
            tr.record(now, node, cmd.kind(), 0, detail);
        }
    }

    /// Whether a copy from `sender` may reach `receiver` under the current
    /// partition (unlisted nodes are connected to everyone).
    fn connected(&self, sender: NodeId, receiver: NodeId) -> bool {
        match &self.partition {
            Some(map) => match (map.get(&sender), map.get(&receiver)) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            },
            None => true,
        }
    }

    /// Runs one agent callback and applies its effects. Returns the extra
    /// app-thread CPU time consumed by sends issued from an app callback.
    fn invoke(
        &mut self,
        node: NodeId,
        thread: ThreadClass,
        f: impl FnOnce(&mut dyn Agent<M>, &mut Ctx<'_, M>),
    ) -> SimDur {
        let slot = &mut self.nodes[node as usize];
        if !slot.alive {
            return SimDur::ZERO;
        }
        let mut agent = slot.agent.take().expect("re-entrant agent callback");
        let mut effects = std::mem::take(&mut slot.effects);
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                thread,
                effects: &mut effects,
                rng: &mut slot.rng,
                next_timer: &mut slot.next_timer,
                arena: &mut self.arena,
            };
            f(agent.as_mut(), &mut ctx);
        }
        let slot = &mut self.nodes[node as usize];
        slot.agent = Some(agent);
        let extra = self.apply_effects(node, &mut effects);
        effects.clear();
        self.nodes[node as usize].effects = effects;
        extra
    }

    fn apply_effects(&mut self, node: NodeId, effects: &mut Vec<Effect<M>>) -> SimDur {
        let now = self.now;
        let mut app_extra = SimDur::ZERO;
        for eff in effects.drain(..) {
            match eff {
                Effect::Send {
                    dst,
                    size,
                    payload,
                    thread: charge,
                } => {
                    let slot = &mut self.nodes[node as usize];
                    let frags = slot.nic.frags(size) as u64;
                    let tx_cpu = slot.nic.tx_cpu_per_frag * frags;
                    // CPU stage: charged to the thread that owns the send
                    // (usually the calling thread; see `Ctx::send_from`).
                    let cpu_done = match charge {
                        ThreadClass::Net => {
                            let t = slot.net_busy.max(now) + tx_cpu;
                            slot.net_busy = t;
                            t
                        }
                        ThreadClass::App => {
                            app_extra += tx_cpu;
                            now + app_extra
                        }
                    };
                    // Wire stage: one serialization regardless of fan-out.
                    let t2 = slot.tx_wire_busy.max(cpu_done) + slot.nic.wire_time(size);
                    slot.tx_wire_busy = t2;
                    slot.counters.tx_msgs += 1;
                    slot.counters.tx_bytes += size as u64;
                    let pkt = Packet {
                        src: Addr::node(node),
                        dst,
                        size,
                        payload,
                        sent_at: now,
                    };
                    let at = t2 + self.fabric.prop_delay;
                    self.push(at, Ev::PktAtSwitch(pkt));
                }
                Effect::Timer { delay, kind, id } => {
                    self.nodes[node as usize].active_timers.insert(id);
                    self.push(now + delay, Ev::Timer { node, id, kind });
                }
                Effect::CancelTimer { id } => {
                    self.nodes[node as usize].active_timers.remove(&id);
                }
                Effect::AppWork { cost, token } => {
                    let slot = &mut self.nodes[node as usize];
                    if slot.app.busy {
                        slot.app.queue.push_back((cost, token));
                    } else {
                        slot.app.busy = true;
                        let epoch = slot.epoch;
                        self.push(now + cost, Ev::AppDone { node, token, epoch });
                    }
                }
                Effect::Burn { cost, thread: t } => {
                    let slot = &mut self.nodes[node as usize];
                    match t {
                        ThreadClass::Net => {
                            slot.net_busy = slot.net_busy.max(now) + cost;
                        }
                        ThreadClass::App => {
                            app_extra += cost;
                        }
                    }
                }
            }
        }
        app_extra
    }

    fn at_switch(&mut self, pkt: Packet<M>) {
        // Pipeline: programs may rewrite, consume, or emit packets. The
        // emission buffer is reused across calls (it is empty between them).
        let mut emit = SwitchEmit {
            packets: std::mem::take(&mut self.emit_scratch),
        };
        let mut cursor = Some(pkt);
        for prog in &mut self.programs {
            match cursor {
                Some(p) => match prog.process(p, self.now, &mut emit) {
                    Verdict::Forward(p2) => cursor = Some(p2),
                    Verdict::Consume => cursor = None,
                },
                None => break,
            }
        }
        // Emitted packets forward first, the pipeline survivor last — the
        // order the single-vec implementation always produced.
        let mut emitted = emit.packets;
        for p in emitted.drain(..) {
            self.forward(p);
        }
        self.emit_scratch = emitted;
        if let Some(p) = cursor {
            self.forward(p);
        }
    }

    /// Forwards one packet out of the switch: stamps switch-originated
    /// packets, resolves the destination, and schedules delivery copies.
    /// Unicast moves the payload straight through (zero clones); multicast
    /// clones n-1 times, moving the packet into the final copy.
    fn forward(&mut self, mut p: Packet<M>) {
        if p.sent_at == SimTime::ZERO {
            p.sent_at = self.now;
        }
        let sender = p.src.as_node();
        if let Some(n) = p.dst.as_node() {
            self.deliver_copy(p, sender, n);
            return;
        }
        let mut members = std::mem::take(&mut self.members_scratch);
        members.clear();
        if let Some(ms) = self.groups.get(p.dst) {
            members.extend(ms.iter().copied().filter(|n| Some(*n) != sender));
        }
        if let Some((&last, rest)) = members.split_last() {
            for &m in rest {
                self.deliver_copy(p.clone(), sender, m);
            }
            self.deliver_copy(p, sender, last);
        }
        self.members_scratch = members;
    }

    /// Applies one copy's fate — partition check, loss, link-fault delay and
    /// duplication — and schedules its arrival at `m`. The RNG draw order per
    /// member matches the historical per-member loop exactly; replay digests
    /// depend on it.
    fn deliver_copy(&mut self, p: Packet<M>, sender: Option<NodeId>, m: NodeId) {
        // Partition check: copies between disconnected groups are
        // silently dropped at the switch.
        if let Some(s) = sender {
            if !self.connected(s, m) {
                self.nodes[m as usize].counters.dropped_partition += 1;
                return;
            }
        }
        // Independent loss per delivered copy.
        let lost = (self.fabric.loss_rate > 0.0
            && self.switch_rng.gen::<f64>() < self.fabric.loss_rate)
            || self
                .drop_filter
                .as_mut()
                .map(|f| f(&p, m, self.now))
                .unwrap_or(false);
        if lost {
            self.nodes[m as usize].counters.dropped_loss += 1;
            return;
        }
        // Per-link fault windows: extra delay and duplication.
        let mut at = self.now + self.fabric.switch_delay + self.fabric.prop_delay;
        let mut dup_prob = 0.0f64;
        for lf in &self.link_faults {
            if self.now < lf.until
                && lf.src.is_none_or(|s| sender == Some(s))
                && lf.dst.is_none_or(|d| d == m)
            {
                at += lf.extra_delay;
                dup_prob = dup_prob.max(lf.dup_prob);
            }
        }
        if dup_prob > 0.0 && self.switch_rng.gen::<f64>() < dup_prob {
            self.nodes[m as usize].counters.duplicated += 1;
            self.push(
                at,
                Ev::PktArrive {
                    node: m,
                    pkt: p.clone(),
                },
            );
        }
        self.push(at, Ev::PktArrive { node: m, pkt: p });
    }

    fn arrive(&mut self, node: NodeId, pkt: Packet<M>) {
        let slot = &mut self.nodes[node as usize];
        if !slot.alive {
            slot.counters.dropped_dead += 1;
            return;
        }
        if slot.net_backlog >= slot.nic.rx_ring {
            slot.counters.rx_dropped_backlog += 1;
            return;
        }
        let frags = slot.nic.frags(pkt.size) as u64;
        let t5 = slot.rx_wire_busy.max(self.now) + slot.nic.wire_time(pkt.size);
        slot.rx_wire_busy = t5;
        let t6 = slot.net_busy.max(t5) + slot.nic.rx_cpu_per_frag * frags;
        slot.net_busy = t6;
        slot.net_backlog += 1;
        let epoch = slot.epoch;
        self.push(t6, Ev::PktDeliver { node, pkt, epoch });
    }
}
