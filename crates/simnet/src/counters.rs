//! Per-node traffic counters.
//!
//! These are maintained by the engine and are the ground truth for the
//! message-complexity accounting of the paper's Table 1.

/// Traffic counters for one node, maintained by the simulation engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Messages handed to the transmit path (multicast counts once).
    pub tx_msgs: u64,
    /// Bytes handed to the transmit path (multicast counts once).
    pub tx_bytes: u64,
    /// Messages delivered to the agent handler.
    pub rx_msgs: u64,
    /// Bytes delivered to the agent handler.
    pub rx_bytes: u64,
    /// Arrivals dropped because the RX ring was full.
    pub rx_dropped_backlog: u64,
    /// Copies dropped by the fabric loss model or targeted drop filters.
    pub dropped_loss: u64,
    /// Arrivals discarded because the node was killed.
    pub dropped_dead: u64,
    /// Copies dropped at the switch because sender and receiver were in
    /// different partition groups.
    pub dropped_partition: u64,
    /// Extra copies delivered by a duplicating link fault.
    pub duplicated: u64,
}

impl Counters {
    /// Resets every counter to zero (used when an experiment excludes its
    /// warm-up phase from accounting).
    pub fn reset(&mut self) {
        *self = Counters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_everything() {
        let mut c = Counters {
            tx_msgs: 4,
            tx_bytes: 100,
            rx_msgs: 2,
            rx_bytes: 50,
            rx_dropped_backlog: 1,
            dropped_loss: 3,
            dropped_dead: 9,
            dropped_partition: 2,
            duplicated: 1,
        };
        c.reset();
        assert_eq!(c, Counters::default());
    }
}
