//! Hierarchical timer wheel: the engine's default event scheduler.
//!
//! A discrete-event simulator spends a large share of its wall-clock budget
//! ordering future events. The classic `BinaryHeap` costs O(log n) per
//! push *and* per pop, and every sift moves entries around the backing
//! array. This wheel replaces both with O(1) amortized slot arithmetic
//! while reproducing the heap's pop order **bit-exactly** — the engine's
//! determinism digests (`chaos_digest`, mc digests, determinism_guard) are
//! the acceptance bar for any scheduler swap, so equivalence is not a
//! statistical claim but a structural one (see the invariants below and
//! the property tests at the bottom).
//!
//! # Structure
//!
//! A wide near level plus coarse overflow levels. Level 0 buckets deadlines
//! by bits `[0, 12)` of their absolute nanosecond timestamp — 4096 slots
//! resolving single nanoseconds across a 4.1 µs window, sized so that
//! packet-scale deltas (NIC serialization, fabric hops, app-thread bursts)
//! insert directly into level 0 and pop without ever cascading. Overflow
//! level `L ≥ 1` buckets by bits `[12+6(L−1), 12+6L)`; 12 + 6 × 9 = 66 bits
//! covers every representable `u64` deadline in 10 levels. A pending entry
//! lives at the *highest level where its timestamp differs from the wheel's
//! origin* (`base`):
//!
//! ```text
//! level(at) = 0                                  if (at XOR base) < 4096
//!             (highest_set_bit(at XOR base) − 12)/6 + 1   otherwise
//! slot(at)  = at & 4095                          at level 0
//!             (at >> (12 + 6·(level−1))) & 63    at level ≥ 1
//! ```
//!
//! The XOR trick (as in Linux/Tokio wheels) avoids ever computing a delta
//! that could wrap: because the invariant `at >= base` holds for every
//! stored entry, the highest differing bit alone identifies the coarsest
//! level at which `at` and `base` fall into different slots, and slot
//! indices at every level are monotonically ≥ the origin's — so a
//! `trailing_zeros` scan over a per-level occupancy bitmap (two-tier for
//! the 4096-bit level 0) finds the earliest slot with no wrap-around case
//! analysis.
//!
//! # Exact (time, seq) order
//!
//! Two structural facts make the pop order identical to a heap ordered by
//! `(at, seq)`:
//!
//! * A **level-0 slot holds exactly one timestamp.** Level 0 means all bits
//!   ≥ 12 agree with `base`, and the slot index pins bits 0–11, so `at` is
//!   fully determined. Draining a level-0 slot therefore yields entries of
//!   one instant; sorting them by `seq` alone (seqs are unique) gives the
//!   exact total order for that instant.
//! * A **cascade moves the origin to the start of the earliest occupied
//!   window.** All other entries are strictly later, so redistributing the
//!   window's entries with the new origin (each lands at a strictly lower
//!   level) never reorders anything across windows.
//!
//! # Safety of lazy advancement
//!
//! `base` only advances inside [`TimerWheel::pop_next`], and only up to
//! `limit` (the engine's `run_until` bound). The engine guarantees every
//! future insert is strictly later than its clock, and its clock never
//! falls behind `limit` once a pop returns — so `at >= base` holds for all
//! inserts and the wheel never needs the "timer in the past" slot-clamping
//! of wall-clock wheels.

use std::collections::VecDeque;

/// Bits resolved by the near level: 4096 slots, one nanosecond each.
const L0_BITS: u32 = 12;
/// Near-level slot count.
const L0_SLOTS: usize = 1 << L0_BITS;
/// Bits per overflow level: 64 slots.
const BITS: u32 = 6;
/// Overflow-level slot count.
const SLOTS: usize = 1 << BITS;
/// Total levels: 12 + 6 × 9 = 66 bits ≥ the full `u64` timestamp range.
const LEVELS: usize = 10;
/// Words in the level-0 occupancy bitmap (4096 bits).
const L0_WORDS: usize = L0_SLOTS / 64;

/// One pending event: absolute deadline, global push sequence number, and
/// the caller's payload handle (the engine's slab slot).
#[derive(Clone, Copy, Debug)]
struct Entry {
    at: u64,
    seq: u64,
    token: u32,
}

/// A hierarchical timer wheel ordering `(at, seq, token)` triples by
/// `(at, seq)`, exactly like a min-heap on that key.
///
/// `pop_next(limit)` never returns entries later than `limit` and never
/// advances the wheel's origin past `limit`, so interleaving pops with
/// inserts of strictly-later deadlines is always safe.
pub struct TimerWheel {
    /// Origin timestamp; invariant: every stored entry has `at >= base`.
    base: u64,
    /// Level-0 occupancy: 4096 bits in 64 words...
    l0_occ: Box<[u64; L0_WORDS]>,
    /// ...plus a summary word (bit `w` set iff `l0_occ[w] != 0`).
    l0_sum: u64,
    /// Overflow-level slot occupancy bitmaps (`occ[0]` unused).
    occ: [u64; LEVELS],
    /// Summary bitmap: bit 0 iff level 0 is occupied, bit `L ≥ 1` iff
    /// `occ[L] != 0`.
    level_occ: u16,
    /// Buckets: 4096 level-0 slots, then `SLOTS` per overflow level.
    slots: Box<[Vec<Entry>]>,
    /// The drained earliest instant, in seq order. Non-empty only between
    /// a drain and the pops that consume it; all entries share one `at`
    /// (== `base`).
    current: VecDeque<Entry>,
    /// Total entries stored (levels + `current`).
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel with origin 0.
    pub fn new() -> TimerWheel {
        TimerWheel {
            base: 0,
            l0_occ: Box::new([0; L0_WORDS]),
            l0_sum: 0,
            occ: [0; LEVELS],
            level_occ: 0,
            slots: (0..L0_SLOTS + (LEVELS - 1) * SLOTS)
                .map(|_| Vec::new())
                .collect(),
            current: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether a drained instant is still being consumed. While true, the
    /// front of the wheel is at the engine's *current* instant and
    /// [`TimerWheel::pop_next`] is guaranteed to return it regardless of
    /// `limit`.
    pub fn mid_instant(&self) -> bool {
        !self.current.is_empty()
    }

    /// Level and slot index (within the level) for `at` relative to `base`.
    #[inline]
    fn place(base: u64, at: u64) -> (usize, usize) {
        let d = at ^ base;
        if d < L0_SLOTS as u64 {
            (0, (at & (L0_SLOTS as u64 - 1)) as usize)
        } else {
            let level = ((63 - d.leading_zeros() - L0_BITS) / BITS) as usize + 1;
            let shift = L0_BITS as usize + BITS as usize * (level - 1);
            (level, ((at >> shift) & (SLOTS as u64 - 1)) as usize)
        }
    }

    /// Flat bucket index for a (level, slot) pair.
    #[inline]
    fn bucket(level: usize, slot: usize) -> usize {
        if level == 0 {
            slot
        } else {
            L0_SLOTS + (level - 1) * SLOTS + slot
        }
    }

    /// Inserts an entry. `at` must be `>= ` the wheel's origin, which the
    /// engine guarantees by never scheduling into the past.
    #[inline]
    pub fn insert(&mut self, at: u64, seq: u64, token: u32) {
        debug_assert!(
            at >= self.base,
            "insert at {at} behind wheel origin {}",
            self.base
        );
        let (level, slot) = Self::place(self.base, at);
        self.slots[Self::bucket(level, slot)].push(Entry { at, seq, token });
        if level == 0 {
            self.l0_occ[slot / 64] |= 1 << (slot % 64);
            self.l0_sum |= 1 << (slot / 64);
            self.level_occ |= 1;
        } else {
            self.occ[level] |= 1 << slot;
            self.level_occ |= 1 << level;
        }
        self.len += 1;
    }

    /// Start of the level-`level` (≥ 1), slot-`slot` window under the
    /// current origin: origin bits above the level's range, `slot` within
    /// it, zeros below.
    #[inline]
    fn window_start(&self, level: usize, slot: usize) -> u64 {
        let lo_shift = L0_BITS as usize + BITS as usize * (level - 1);
        let hi_shift = lo_shift + BITS as usize;
        let high = if hi_shift >= 64 {
            0
        } else {
            (self.base >> hi_shift) << hi_shift
        };
        high | ((slot as u64) << lo_shift)
    }

    /// Pops the earliest `(at, seq)` entry with `at <= limit`, or `None`
    /// if the wheel is empty or its earliest entry is later than `limit`.
    /// The origin never advances past `limit`.
    pub fn pop_next(&mut self, limit: u64) -> Option<(u64, u64, u32)> {
        loop {
            if let Some(e) = self.current.pop_front() {
                self.len -= 1;
                return Some((e.at, e.seq, e.token));
            }
            if self.level_occ == 0 {
                return None;
            }
            let level = self.level_occ.trailing_zeros() as usize;
            if level == 0 {
                // A level-0 slot is a single instant: bits ≥ 12 match the
                // origin, bits 0–11 are the slot index.
                let word = self.l0_sum.trailing_zeros() as usize;
                let bit = self.l0_occ[word].trailing_zeros() as usize;
                let slot = word * 64 + bit;
                let at = (self.base & !(L0_SLOTS as u64 - 1)) | slot as u64;
                if at > limit {
                    return None;
                }
                let mut v = std::mem::take(&mut self.slots[slot]);
                self.l0_occ[word] &= !(1 << bit);
                if self.l0_occ[word] == 0 {
                    self.l0_sum &= !(1 << word);
                    if self.l0_sum == 0 {
                        self.level_occ &= !1;
                    }
                }
                // Unique seqs: unstable sort is deterministic here.
                v.sort_unstable_by_key(|e| e.seq);
                self.base = at;
                self.current.extend(v.drain(..));
                self.slots[slot] = v; // keep the bucket's capacity
                continue;
            }
            let slot = self.occ[level].trailing_zeros() as usize;
            let idx = Self::bucket(level, slot);
            // Overflow level: cascade the earliest window down one or more
            // levels, re-anchoring the origin at the window start. Refuse
            // to advance past `limit` — entries in this window may still
            // be preceded by events the caller will schedule before it.
            let ws = self.window_start(level, slot);
            if ws > limit {
                return None;
            }
            let mut v = std::mem::take(&mut self.slots[idx]);
            self.occ[level] &= !(1 << slot);
            if self.occ[level] == 0 {
                self.level_occ &= !(1 << level);
            }
            self.base = ws;
            crate::profile::note_wheel_cascades(v.len() as u64);
            for e in v.drain(..) {
                let (l2, s2) = Self::place(self.base, e.at);
                debug_assert!(l2 < level, "cascade must descend");
                self.slots[Self::bucket(l2, s2)].push(e);
                if l2 == 0 {
                    self.l0_occ[s2 / 64] |= 1 << (s2 % 64);
                    self.l0_sum |= 1 << (s2 / 64);
                    self.level_occ |= 1;
                } else {
                    self.occ[l2] |= 1 << s2;
                    self.level_occ |= 1 << l2;
                }
            }
            self.slots[idx] = v;
        }
    }
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("base", &self.base)
            .field("len", &self.len)
            .field("mid_instant", &self.mid_instant())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    /// Reference scheduler: a min-heap on (at, seq).
    #[derive(Default)]
    struct RefHeap(BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>>);

    impl RefHeap {
        fn insert(&mut self, at: u64, seq: u64, token: u32) {
            self.0.push(std::cmp::Reverse((at, seq, token)));
        }
        fn pop_next(&mut self, limit: u64) -> Option<(u64, u64, u32)> {
            match self.0.peek() {
                Some(std::cmp::Reverse((at, _, _))) if *at <= limit => {
                    let std::cmp::Reverse(e) = self.0.pop().unwrap();
                    Some(e)
                }
                _ => None,
            }
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.insert(50, 1, 10);
        w.insert(50, 0, 11);
        w.insert(10, 2, 12);
        assert_eq!(w.pop_next(u64::MAX), Some((10, 2, 12)));
        assert_eq!(w.pop_next(u64::MAX), Some((50, 0, 11)));
        assert_eq!(w.pop_next(u64::MAX), Some((50, 1, 10)));
        assert_eq!(w.pop_next(u64::MAX), None);
        assert!(w.is_empty());
    }

    #[test]
    fn limit_bounds_pops_and_origin() {
        let mut w = TimerWheel::new();
        w.insert(1_000_000, 0, 1);
        assert_eq!(w.pop_next(999), None, "beyond limit");
        // A later insert *before* the far entry must still win: the origin
        // may not have advanced past the limit.
        w.insert(2_000, 1, 2);
        assert_eq!(w.pop_next(u64::MAX), Some((2_000, 1, 2)));
        assert_eq!(w.pop_next(u64::MAX), Some((1_000_000, 0, 1)));
    }

    #[test]
    fn maximum_delay_lands_in_top_level_and_pops() {
        let mut w = TimerWheel::new();
        // Bit 63 set: only the top level (bits 60..66) can hold it.
        w.insert(u64::MAX, 1, 7);
        w.insert(u64::MAX - 1, 0, 8);
        w.insert(5, 2, 9);
        assert_eq!(w.pop_next(u64::MAX), Some((5, 2, 9)));
        assert_eq!(w.pop_next(u64::MAX), Some((u64::MAX - 1, 0, 8)));
        assert_eq!(w.pop_next(u64::MAX), Some((u64::MAX, 1, 7)));
        assert_eq!(w.pop_next(u64::MAX), None);
    }

    #[test]
    fn same_instant_drain_is_seq_sorted_across_cascades() {
        let mut w = TimerWheel::new();
        // Seq 0 lands at a high level (far from origin 0); advance the
        // origin, then insert seq 1 at the same instant directly into
        // level 0. The drain must still yield seq order.
        w.insert(100_000, 0, 1);
        w.insert(10, 9, 2);
        assert_eq!(w.pop_next(u64::MAX), Some((10, 9, 2)));
        w.insert(100_000, 1, 3);
        assert_eq!(w.pop_next(u64::MAX), Some((100_000, 0, 1)));
        assert_eq!(w.pop_next(u64::MAX), Some((100_000, 1, 3)));
    }

    #[test]
    fn mid_instant_is_visible_while_draining() {
        let mut w = TimerWheel::new();
        w.insert(7, 0, 1);
        w.insert(7, 1, 2);
        assert!(!w.mid_instant());
        assert_eq!(w.pop_next(u64::MAX), Some((7, 0, 1)));
        assert!(w.mid_instant(), "second entry of the instant still queued");
        assert_eq!(w.pop_next(0), Some((7, 1, 2)), "limit ignored mid-instant");
        assert!(!w.mid_instant());
    }

    /// The structural equivalence claim, checked directly: any interleaving
    /// of inserts and bounded pops yields exactly the heap's pop sequence.
    fn equivalence_round(seed: u64, ops: usize) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut wheel = TimerWheel::new();
        let mut heap = RefHeap::default();
        let mut clock = 0u64; // engine's "now": inserts land strictly after
        let mut seq = 0u64;
        for i in 0..ops {
            if rng.gen_bool(0.6) {
                // Mixed horizons: mostly near, some far, a few extreme.
                let delta = match rng.gen_range(0u32..10) {
                    0..=5 => rng.gen_range(1..4_000),
                    6..=8 => rng.gen_range(1..5_000_000),
                    _ => rng.gen_range(1..(u64::MAX - clock).max(2)),
                };
                let at = clock + delta;
                wheel.insert(at, seq, i as u32);
                heap.insert(at, seq, i as u32);
                seq += 1;
            } else {
                let limit = clock.saturating_add(rng.gen_range(0..100_000));
                let w = wheel.pop_next(limit);
                let h = heap.pop_next(limit);
                assert_eq!(w, h, "divergence at op {i} (seed {seed})");
                if let Some((at, _, _)) = w {
                    clock = clock.max(at);
                } else {
                    clock = clock.max(limit);
                }
            }
        }
        // Drain both completely.
        loop {
            let w = wheel.pop_next(u64::MAX);
            let h = heap.pop_next(u64::MAX);
            assert_eq!(w, h, "drain divergence (seed {seed})");
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn equivalent_to_binary_heap_on_random_streams() {
        for seed in 0..50 {
            equivalence_round(seed, 400);
        }
    }

    #[test]
    fn equivalent_on_same_instant_storms() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let mut wheel = TimerWheel::new();
        let mut heap = RefHeap::default();
        // Many entries on few distinct instants: exercises slot Vecs with
        // mixed push/cascade arrival order.
        for seq in 0..2_000u64 {
            let at = 1 + rng.gen_range(0u64..8) * 700;
            wheel.insert(at, seq, seq as u32);
            heap.insert(at, seq, seq as u32);
        }
        loop {
            let w = wheel.pop_next(u64::MAX);
            assert_eq!(w, heap.pop_next(u64::MAX));
            if w.is_none() {
                break;
            }
        }
    }
}
