//! Simulated time.
//!
//! All simulation time is kept in integer nanoseconds. Two newtypes keep
//! instants and durations from being mixed up: [`SimTime`] is a point on the
//! simulation clock and [`SimDur`] is a span between two points. Both are
//! `Copy` and totally ordered, and arithmetic between them is defined the
//! same way as for `std::time` types (instant ± duration = instant,
//! instant − instant = duration, duration ± duration = duration).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// The instant `n` nanoseconds after the epoch (inverse of
    /// [`SimTime::as_nanos`]).
    #[inline]
    pub const fn from_nanos(n: u64) -> SimTime {
        SimTime(n)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDur {
    /// The zero-length span.
    pub const ZERO: SimDur = SimDur(0);

    /// A span of `n` nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> SimDur {
        SimDur(n)
    }

    /// A span of `n` microseconds.
    #[inline]
    pub const fn micros(n: u64) -> SimDur {
        SimDur(n * 1_000)
    }

    /// A span of `n` milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> SimDur {
        SimDur(n * 1_000_000)
    }

    /// A span of `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> SimDur {
        SimDur(n * 1_000_000_000)
    }

    /// A span of `us` (possibly fractional) microseconds, rounded to the
    /// nearest nanosecond.
    #[inline]
    pub fn micros_f64(us: f64) -> SimDur {
        SimDur((us * 1_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this span expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this span expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction of two spans.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl SubAssign for SimDur {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDur::nanos(7).as_nanos(), 7);
        assert_eq!(SimDur::micros(3).as_nanos(), 3_000);
        assert_eq!(SimDur::millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDur::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDur::micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDur::micros(10);
        assert_eq!(t1.as_nanos(), 10_000);
        assert_eq!(t1 - t0, SimDur::micros(10));
        assert_eq!((t1 - SimDur::micros(4)).as_nanos(), 6_000);
        assert_eq!(t1.since(t0), SimDur::micros(10));
        // `since` saturates rather than underflowing.
        assert_eq!(t0.since(t1), SimDur::ZERO);
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn float_conversions() {
        let t = SimTime(1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimDur::micros(2).as_micros_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_scalar_ops() {
        assert_eq!(SimDur::micros(2) * 3, SimDur::micros(6));
        assert_eq!(SimDur::micros(6) / 3, SimDur::micros(2));
        assert_eq!(
            SimDur::micros(5).saturating_sub(SimDur::micros(9)),
            SimDur::ZERO
        );
    }
}
