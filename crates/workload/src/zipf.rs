//! Zipfian key-choice generators, after the YCSB reference implementation
//! (Gray et al.'s rejection-free algorithm from "Quickly Generating
//! Billion-Record Synthetic Databases", as used by Cooper et al.'s YCSB).

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipfian generator over `0..n` with the YCSB-standard exponent 0.99.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Standard YCSB constant.
    pub const YCSB_THETA: f64 = 0.99;

    /// Creates a generator over `0..n` items with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "zipfian needs at least one item");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// YCSB defaults (`theta` = 0.99).
    pub fn ycsb(n: u64) -> Zipfian {
        Self::new(n, Self::YCSB_THETA)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for modest n; sufficient for simulation-scale keyspaces.
        let mut s = 0.0;
        for i in 1..=n {
            s += 1.0 / (i as f64).powf(theta);
        }
        s
    }

    /// Draws an item rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Grows the item count (used by "latest"-style workloads as inserts
    /// extend the keyspace). Cheap incremental zeta update.
    pub fn grow(&mut self, new_n: u64) {
        if new_n <= self.n {
            return;
        }
        for i in (self.n + 1)..=new_n {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.n = new_n;
        self.eta =
            (1.0 - (2.0 / self.n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zetan);
    }
}

/// Fowler–Noll–Vo scramble so that popular zipfian ranks spread over the
/// keyspace (YCSB's "scrambled zipfian").
pub fn fnv_scramble(v: u64, n: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn most_popular_item_dominates() {
        let z = Zipfian::ycsb(1_000);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hits0 = 0;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut rng) == 0 {
                hits0 += 1;
            }
        }
        // Rank 0 of a 1000-item zipf(0.99) carries ≈ 13% of the mass.
        let frac = hits0 as f64 / total as f64;
        assert!((0.08..0.20).contains(&frac), "rank-0 frac = {frac}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::ycsb(50);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn heavier_theta_is_more_skewed() {
        let hits_at = |theta: f64| {
            let z = Zipfian::new(1_000, theta);
            let mut rng = SmallRng::seed_from_u64(7);
            (0..50_000).filter(|_| z.sample(&mut rng) < 10).count()
        };
        assert!(hits_at(0.99) > hits_at(0.5));
    }

    #[test]
    fn grow_extends_range() {
        let mut z = Zipfian::ycsb(10);
        z.grow(1_000);
        assert_eq!(z.n(), 1_000);
        let mut rng = SmallRng::seed_from_u64(1);
        let saw_big = (0..200_000).any(|_| z.sample(&mut rng) >= 10);
        assert!(saw_big, "grown range is actually sampled");
        // Growing is consistent with building from scratch.
        let fresh = Zipfian::ycsb(1_000);
        assert!((z.zetan - fresh.zetan).abs() < 1e-9);
    }

    #[test]
    fn scramble_is_deterministic_and_in_range() {
        for v in 0..100 {
            let s1 = fnv_scramble(v, 1_000);
            let s2 = fnv_scramble(v, 1_000);
            assert_eq!(s1, s2);
            assert!(s1 < 1_000);
        }
        // Adjacent ranks land far apart (no accidental identity mapping).
        let distinct: std::collections::HashSet<u64> =
            (0..50).map(|v| fnv_scramble(v, 1_000_000)).collect();
        assert!(distinct.len() >= 49);
    }
}
