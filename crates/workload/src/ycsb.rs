//! YCSB workload generators (Cooper et al., SoCC '10), specialized for the
//! paper's §7.5 experiment: **YCSB-E on Redis**.
//!
//! Workload E models threaded conversations: 95 % `SCAN` (read the latest
//! posts of a thread: ordered, read-only, load-balanceable) and 5 %
//! `INSERT` (a new post: ordered read-write). Records are 1 kB — 10 fields
//! of 100 bytes (§7.5); scans return at most 10 records. Workloads A–D are
//! provided for extensions/ablations.

use bytes::Bytes;
use minikv::Command;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::zipf::{fnv_scramble, Zipfian};

/// The standard YCSB field layout (§7.5: 1 kB records, 10 × 100 B fields).
#[derive(Clone, Copy, Debug)]
pub struct RecordSpec {
    /// Fields per record.
    pub fields: usize,
    /// Bytes per field.
    pub field_len: usize,
}

impl Default for RecordSpec {
    fn default() -> Self {
        RecordSpec {
            fields: 10,
            field_len: 100,
        }
    }
}

impl RecordSpec {
    /// Total record payload size.
    pub fn record_len(&self) -> usize {
        self.fields * self.field_len
    }

    /// Builds a deterministic record for `key_rank` (field bytes derived
    /// from the rank so replicas can be diffed).
    pub fn build(&self, key_rank: u64) -> Bytes {
        let mut rec = Vec::with_capacity(self.record_len());
        for f in 0..self.fields {
            let fill = (key_rank as u8).wrapping_add(f as u8);
            rec.extend(std::iter::repeat_n(fill, self.field_len));
        }
        Bytes::from(rec)
    }
}

/// A standard YCSB workload letter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbWorkload {
    /// 50 % read / 50 % update, zipfian.
    A,
    /// 95 % read / 5 % update, zipfian.
    B,
    /// 100 % read, zipfian.
    C,
    /// 95 % read / 5 % insert, latest.
    D,
    /// 95 % scan / 5 % insert, zipfian start keys — the paper's benchmark.
    E,
}

/// One generated operation.
#[derive(Clone, Debug)]
pub struct YcsbOp {
    /// The encoded store command.
    pub body: Bytes,
    /// Whether the op is read-only (drives the R2P2 POLICY tag).
    pub read_only: bool,
}

/// Stateful YCSB operation generator.
pub struct YcsbGen {
    workload: YcsbWorkload,
    spec: RecordSpec,
    table: Bytes,
    /// Keys 0..insert_cursor exist.
    insert_cursor: u64,
    zipf: Zipfian,
    max_scan_len: u32,
    rng: SmallRng,
}

/// Formats the canonical YCSB key for a rank.
pub fn key_of(rank: u64) -> String {
    format!("user{rank:012}")
}

impl YcsbGen {
    /// Creates a generator over an initially loaded keyspace of
    /// `record_count` records.
    pub fn new(workload: YcsbWorkload, record_count: u64, spec: RecordSpec, seed: u64) -> YcsbGen {
        use rand::SeedableRng;
        assert!(record_count > 0);
        YcsbGen {
            workload,
            spec,
            table: Bytes::from_static(b"usertable"),
            insert_cursor: record_count,
            zipf: Zipfian::ycsb(record_count),
            max_scan_len: 10,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Commands that load the initial dataset (the YCSB load phase).
    pub fn load_phase(&self) -> Vec<Command> {
        (0..self.zipf.n())
            .map(|r| {
                Command::Insert(
                    self.table.clone(),
                    Bytes::from(key_of(r)),
                    self.spec.build(r),
                )
            })
            .collect()
    }

    fn zipf_key(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng);
        fnv_scramble(rank, self.zipf.n())
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let roll: f64 = self.rng.gen();
        match self.workload {
            YcsbWorkload::A => {
                if roll < 0.5 {
                    self.read_op()
                } else {
                    self.update_op()
                }
            }
            YcsbWorkload::B => {
                if roll < 0.95 {
                    self.read_op()
                } else {
                    self.update_op()
                }
            }
            YcsbWorkload::C => self.read_op(),
            YcsbWorkload::D => {
                if roll < 0.95 {
                    self.latest_read_op()
                } else {
                    self.insert_op()
                }
            }
            YcsbWorkload::E => {
                if roll < 0.95 {
                    self.scan_op()
                } else {
                    self.insert_op()
                }
            }
        }
    }

    fn read_op(&mut self) -> YcsbOp {
        let k = self.zipf_key();
        YcsbOp {
            body: Command::Scan(self.table.clone(), Bytes::from(key_of(k)), 1).encode(),
            read_only: true,
        }
    }

    fn latest_read_op(&mut self) -> YcsbOp {
        // "Latest": skew towards recently inserted keys.
        let back = self.zipf.sample(&mut self.rng).min(self.insert_cursor - 1);
        let k = self.insert_cursor - 1 - back;
        YcsbOp {
            body: Command::Scan(self.table.clone(), Bytes::from(key_of(k)), 1).encode(),
            read_only: true,
        }
    }

    fn update_op(&mut self) -> YcsbOp {
        let k = self.zipf_key();
        YcsbOp {
            body: Command::Insert(
                self.table.clone(),
                Bytes::from(key_of(k)),
                self.spec.build(k),
            )
            .encode(),
            read_only: false,
        }
    }

    fn insert_op(&mut self) -> YcsbOp {
        let k = self.insert_cursor;
        self.insert_cursor += 1;
        self.zipf.grow(self.insert_cursor);
        YcsbOp {
            body: Command::Insert(
                self.table.clone(),
                Bytes::from(key_of(k)),
                self.spec.build(k),
            )
            .encode(),
            read_only: false,
        }
    }

    fn scan_op(&mut self) -> YcsbOp {
        let k = self.zipf_key();
        let len = self.rng.gen_range(1..=self.max_scan_len);
        YcsbOp {
            body: Command::Scan(self.table.clone(), Bytes::from(key_of(k)), len).encode(),
            read_only: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minikv::{Reply, Store};

    #[test]
    fn record_spec_builds_1kb_records() {
        let spec = RecordSpec::default();
        assert_eq!(spec.record_len(), 1_000);
        assert_eq!(spec.build(7).len(), 1_000);
    }

    #[test]
    fn workload_e_mix_is_95_5() {
        let mut g = YcsbGen::new(YcsbWorkload::E, 1_000, RecordSpec::default(), 42);
        let mut scans = 0;
        let mut inserts = 0;
        for _ in 0..10_000 {
            let op = g.next_op();
            let cmd = Command::decode(&op.body).unwrap();
            match cmd {
                Command::Scan(_, _, n) => {
                    assert!(op.read_only);
                    assert!((1..=10).contains(&n));
                    scans += 1;
                }
                Command::Insert(..) => {
                    assert!(!op.read_only);
                    inserts += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((9_300..9_700).contains(&scans), "{scans} scans");
        assert_eq!(scans + inserts, 10_000);
    }

    #[test]
    fn inserts_extend_the_keyspace_monotonically() {
        let mut g = YcsbGen::new(YcsbWorkload::E, 10, RecordSpec::default(), 1);
        let mut seen = Vec::new();
        for _ in 0..2_000 {
            if let Command::Insert(_, k, _) = Command::decode(&g.next_op().body).unwrap() {
                seen.push(String::from_utf8_lossy(&k).into_owned());
            }
        }
        assert!(!seen.is_empty());
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "inserted keys are sequential (new posts)");
    }

    #[test]
    fn load_phase_populates_a_store_scannable_by_ops() {
        let spec = RecordSpec {
            fields: 2,
            field_len: 10,
        };
        let mut g = YcsbGen::new(YcsbWorkload::E, 100, spec, 5);
        let mut store = Store::new();
        for cmd in g.load_phase() {
            store.execute(&cmd);
        }
        assert_eq!(store.len(), 100);
        // Every generated scan hits loaded data.
        for _ in 0..200 {
            let op = g.next_op();
            let cmd = Command::decode(&op.body).unwrap();
            let (reply, _) = store.execute(&cmd);
            match reply {
                Reply::Array(items) => assert!(!items.is_empty(), "scan hit data"),
                Reply::Ok => {} // insert
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn workload_a_mixes_reads_and_updates() {
        let mut g = YcsbGen::new(YcsbWorkload::A, 100, RecordSpec::default(), 3);
        let ro = (0..2_000).filter(|_| g.next_op().read_only).count();
        assert!((800..1200).contains(&ro), "{ro} reads of 2000");
    }

    #[test]
    fn workload_c_is_all_reads() {
        let mut g = YcsbGen::new(YcsbWorkload::C, 100, RecordSpec::default(), 3);
        assert!((0..500).all(|_| g.next_op().read_only));
    }
}
