//! The synthetic microbenchmark service (§7: "synthetic microbenchmarks
//! depend on a synthetic service with configurable CPU service execution
//! time, request, and reply sizes").
//!
//! The per-request service time and reply size are sampled *client-side*
//! and encoded into the request body, so every replica that executes the
//! same request spins for the same duration and produces the same reply —
//! the SMR determinism contract, kept even for a synthetic workload.
//!
//! Body layout (little-endian): `[cost_ns u64][reply_size u32][padding]`,
//! padded to the configured request size.

use bytes::{ByteArena, Bytes};
use hovercraft::{Executed, Service};
use rand::rngs::SmallRng;

use crate::dist::ServiceDist;

/// Minimum body size that still carries its parameters.
pub const SYNTH_MIN_BODY: usize = 12;

/// Builds a synthetic request body of exactly `req_size` bytes (clamped up
/// to the 12-byte parameter header) encoding the service time and reply
/// size.
pub fn encode_request(cost_ns: u64, reply_size: u32, req_size: usize) -> Bytes {
    let mut arena = ByteArena::new();
    encode_request_in(cost_ns, reply_size, req_size, &mut arena)
}

/// [`encode_request`], but building the body in a pooled buffer from
/// `arena` — the form the open-loop client uses so per-request bodies
/// recycle instead of hitting the global allocator.
pub fn encode_request_in(
    cost_ns: u64,
    reply_size: u32,
    req_size: usize,
    arena: &mut ByteArena,
) -> Bytes {
    let len = req_size.max(SYNTH_MIN_BODY);
    arena.alloc_with(len, |b| {
        b[..8].copy_from_slice(&cost_ns.to_le_bytes());
        b[8..12].copy_from_slice(&reply_size.to_le_bytes());
    })
}

/// Decodes the parameters from a synthetic request body.
pub fn decode_request(body: &[u8]) -> Option<(u64, u32)> {
    if body.len() < SYNTH_MIN_BODY {
        return None;
    }
    let cost = u64::from_le_bytes(body[..8].try_into().ok()?);
    let reply = u32::from_le_bytes(body[8..12].try_into().ok()?);
    Some((cost, reply))
}

/// A generator for synthetic requests with the experiment's parameters.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Service-time distribution.
    pub dist: ServiceDist,
    /// Request body size, bytes (the paper's 24 B default and the 64/512 B
    /// points of Figure 8).
    pub req_size: usize,
    /// Reply body size, bytes (8 B default; 6 kB in Figure 10).
    pub reply_size: u32,
    /// Fraction of requests that are read-only (0.75 in Figure 11).
    pub ro_fraction: f64,
}

impl SynthSpec {
    /// The §7.1 baseline: S = 1µs, 24-byte requests, 8-byte replies, no
    /// read-only operations.
    pub fn baseline() -> SynthSpec {
        SynthSpec {
            dist: ServiceDist::Fixed { ns: 1_000 },
            req_size: 24,
            reply_size: 8,
            ro_fraction: 0.0,
        }
    }

    /// Draws one request: `(body, read_only)`.
    pub fn sample(&self, rng: &mut SmallRng) -> (Bytes, bool) {
        let mut arena = ByteArena::new();
        self.sample_in(rng, &mut arena)
    }

    /// [`SynthSpec::sample`] with the body built from a pooled buffer.
    pub fn sample_in(&self, rng: &mut SmallRng, arena: &mut ByteArena) -> (Bytes, bool) {
        use rand::Rng;
        let cost = self.dist.sample(rng);
        let ro = self.ro_fraction > 0.0 && rng.gen::<f64>() < self.ro_fraction;
        (
            encode_request_in(cost, self.reply_size, self.req_size, arena),
            ro,
        )
    }
}

/// The synthetic service: spins for the encoded time, returns the encoded
/// number of bytes.
#[derive(Debug, Default)]
pub struct SynthService {
    /// Operations executed.
    pub ops: u64,
    /// Mutating operations executed (used by replication tests).
    pub writes: u64,
    /// FNV-1a digest folded over the bodies of mutating operations, in
    /// apply order. Replicas with the same mutation prefix agree on it
    /// exactly, so recovery tests can compare a restored/transferred node
    /// bit-exactly against a replaying reference.
    pub state_hash: u64,
}

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a64_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Service for SynthService {
    fn execute(&mut self, body: &[u8], read_only: bool, arena: &mut ByteArena) -> Executed {
        self.ops += 1;
        if !read_only {
            self.writes += 1;
            if self.state_hash == 0 {
                self.state_hash = FNV_OFFSET;
            }
            self.state_hash = fnv1a64_fold(self.state_hash, body);
        }
        let (cost_ns, reply_size) = decode_request(body).unwrap_or((1_000, 8));
        Executed {
            reply: arena.alloc_zeroed(reply_size as usize),
            cost_ns,
        }
    }

    /// Snapshot = `(writes, state_hash)`, little-endian. `ops` is
    /// deliberately excluded: it counts read-only executions too, which
    /// diverge per node under replier-only read execution (§3.5), so it is
    /// not replicated state.
    fn snapshot(&self) -> Bytes {
        let mut b = Vec::with_capacity(16);
        b.extend_from_slice(&self.writes.to_le_bytes());
        b.extend_from_slice(&self.state_hash.to_le_bytes());
        Bytes::from(b)
    }

    fn restore(&mut self, snap: &[u8]) {
        if snap.len() == 16 {
            self.writes = u64::from_le_bytes(snap[..8].try_into().expect("8 bytes"));
            self.state_hash = u64::from_le_bytes(snap[8..16].try_into().expect("8 bytes"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn request_roundtrip() {
        let b = encode_request(10_000, 6_000, 24);
        assert_eq!(b.len(), 24);
        assert_eq!(decode_request(&b), Some((10_000, 6_000)));
    }

    #[test]
    fn tiny_request_size_is_clamped() {
        let b = encode_request(5, 8, 1);
        assert_eq!(b.len(), SYNTH_MIN_BODY);
        assert_eq!(decode_request(&b), Some((5, 8)));
    }

    #[test]
    fn pooled_and_fresh_requests_are_byte_identical() {
        let mut arena = ByteArena::new();
        // Drop each pooled body so the next one recycles its chunk; a
        // recycled buffer must still produce the exact same bytes.
        for i in 0..100u64 {
            let fresh = encode_request(i, 8, 24);
            let pooled = encode_request_in(i, 8, 24, &mut arena);
            assert_eq!(fresh, pooled);
        }
        assert!(arena.hits() > 90, "bodies recycled: {} hits", arena.hits());
    }

    #[test]
    fn service_obeys_encoded_parameters() {
        let mut arena = ByteArena::new();
        let mut s = SynthService::default();
        let r = s.execute(&encode_request(7_500, 100, 64), false, &mut arena);
        assert_eq!(r.cost_ns, 7_500);
        assert_eq!(r.reply.len(), 100);
        assert_eq!(s.ops, 1);
        assert_eq!(s.writes, 1);
        s.execute(&encode_request(1, 8, 24), true, &mut arena);
        assert_eq!(s.writes, 1, "read-only not counted as write");
    }

    #[test]
    fn snapshot_carries_writes_and_hash_but_not_ops() {
        let mut arena = ByteArena::new();
        let mut a = SynthService::default();
        a.execute(&encode_request(1, 8, 24), false, &mut arena);
        a.execute(&encode_request(2, 8, 24), false, &mut arena);
        a.execute(&encode_request(3, 8, 24), true, &mut arena); // RO: no state change
        let mut b = SynthService::default();
        b.restore(&a.snapshot());
        assert_eq!(b.writes, 2);
        assert_eq!(b.state_hash, a.state_hash);
        assert_eq!(b.ops, 0, "ops is per-node, not replicated state");
        // Divergent mutation order ⇒ different hash (order-sensitive fold).
        let mut c = SynthService::default();
        c.execute(&encode_request(2, 8, 24), false, &mut arena);
        c.execute(&encode_request(1, 8, 24), false, &mut arena);
        assert_ne!(c.state_hash, a.state_hash);
    }

    #[test]
    fn spec_samples_ro_fraction() {
        let spec = SynthSpec {
            dist: ServiceDist::Fixed { ns: 1_000 },
            req_size: 24,
            reply_size: 8,
            ro_fraction: 0.75,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let ro = (0..10_000).filter(|_| spec.sample(&mut rng).1).count();
        assert!((7_200..7_800).contains(&ro), "{ro} read-only of 10k");
    }

    #[test]
    fn baseline_matches_paper_parameters() {
        let b = SynthSpec::baseline();
        assert_eq!(b.req_size, 24);
        assert_eq!(b.reply_size, 8);
        assert_eq!(b.dist.mean_ns(), 1_000);
        assert_eq!(b.ro_fraction, 0.0);
    }
}
